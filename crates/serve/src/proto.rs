//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line, over a Unix domain
//! socket. Requests carry a client-chosen `id` that the matching response
//! echoes, so a pipelining client can correlate out-of-order completions
//! (the bundled [`crate::client::Client`] is strictly sequential and does
//! not need to).
//!
//! ```text
//! → {"op":"run","id":1,"source":"program p\n...","target":"omp:4","arrays":["u"]}
//! ← {"id":1,"ok":true,"artifact":"fresh","rung":"full stencil pipeline",...}
//! → {"op":"stats","id":2}
//! ← {"id":2,"ok":true,"stats":{...}}
//! ```
//!
//! Malformed requests get an `ok:false` response carrying the stable
//! `E0802` protocol code; a server at capacity answers `E0801` instead of
//! queueing (see [`crate::server`] for the admission-control contract).
//! Both are *responses*, never closed connections — a client can always
//! tell rejection from a crash.

use fsc_core::{CompileOptions, Target};
use fsc_ir::diag::codes;
use fsc_ir::json::{Json, ObjBuilder};

/// What a request asks the server to do with a program.
#[derive(Debug, Clone)]
pub struct CompileSpec {
    /// Fortran source text.
    pub source: String,
    /// Execution target.
    pub target: Target,
    /// Autotune execution plans against the server's shared plan cache.
    pub autotune: bool,
    /// Optional compile/run budget in milliseconds. The clock starts at
    /// admission; a request still unanswered when it runs out is answered
    /// `E0803` by the watchdog and its singleflight slot is reclaimed.
    /// Absent means the server default applies. The budget does **not**
    /// enter the request fingerprint — two requests differing only in
    /// budget still dedupe onto one compile.
    pub deadline_ms: Option<u64>,
}

impl CompileSpec {
    /// Compile options equivalent to this spec (the server fills in its
    /// plan-cache path when `autotune` is set).
    pub fn options(&self) -> CompileOptions {
        CompileOptions::for_target(self.target.clone())
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub enum Op {
    /// Liveness probe.
    Ping,
    /// Server + service metrics snapshot.
    Stats,
    /// Stop accepting, drain the queue, exit.
    Shutdown,
    /// Compile only (warms caches; returns the compile attestation).
    Compile(CompileSpec),
    /// Compile and run; optionally return named arrays' final contents.
    Run(CompileSpec, Vec<String>),
}

/// A request line: the echoed id plus the operation.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id (echoed in the response).
    pub id: i64,
    /// The operation.
    pub op: Op,
}

/// Parse a target spec string.
///
/// Accepted forms: `flang` (FIR interpretation), `unopt` (unoptimised
/// CPU), `cpu` (serial stencil), `omp` / `omp:N` (OpenMP, N threads,
/// 0 = all cores), `dist:AxB...` (distributed over a process grid),
/// `gpu` (modeled V100, explicit data movement).
pub fn parse_target(s: &str) -> Result<Target, String> {
    match s {
        "flang" => return Ok(Target::FlangOnly),
        "unopt" => return Ok(Target::UnoptimizedCpu),
        "cpu" | "" => return Ok(Target::StencilCpu),
        "omp" => return Ok(Target::StencilOpenMp { threads: 0 }),
        "gpu" => {
            return Ok(Target::StencilGpu {
                explicit_data: true,
                tile: [32, 32, 1],
            })
        }
        _ => {}
    }
    if let Some(n) = s.strip_prefix("omp:") {
        let threads = n
            .parse::<u32>()
            .map_err(|_| format!("bad thread count '{n}'"))?;
        return Ok(Target::StencilOpenMp { threads });
    }
    if let Some(g) = s.strip_prefix("dist:") {
        let grid = g
            .split('x')
            .map(|d| d.parse::<i64>().map_err(|_| format!("bad grid dim '{d}'")))
            .collect::<Result<Vec<_>, _>>()?;
        if grid.is_empty() || grid.iter().any(|&d| d < 1) {
            return Err(format!("bad process grid '{g}'"));
        }
        return Ok(Target::StencilDistributed { grid });
    }
    Err(format!(
        "unknown target '{s}' (expected flang|unopt|cpu|omp[:N]|dist:AxB|gpu)"
    ))
}

impl Request {
    /// Parse one request line. Errors are protocol errors: the caller
    /// should answer with [`error_response`] under [`codes::SERVER_PROTOCOL`],
    /// using the id recovered by [`recover_id`] when possible.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line)?;
        let id = v.get("id").and_then(Json::as_i64).unwrap_or(0);
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing 'op' field")?;
        let spec = |v: &Json| -> Result<CompileSpec, String> {
            let source = v
                .get("source")
                .and_then(Json::as_str)
                .ok_or("missing 'source' field")?
                .to_string();
            let target = parse_target(v.get("target").and_then(Json::as_str).unwrap_or("cpu"))?;
            let autotune = v.get("autotune").and_then(Json::as_bool).unwrap_or(false);
            let deadline_ms = v
                .get("deadline_ms")
                .and_then(Json::as_i64)
                .and_then(|d| u64::try_from(d).ok());
            Ok(CompileSpec {
                source,
                target,
                autotune,
                deadline_ms,
            })
        };
        let op = match op {
            "ping" => Op::Ping,
            "stats" => Op::Stats,
            "shutdown" => Op::Shutdown,
            "compile" => Op::Compile(spec(&v)?),
            "run" => {
                let arrays = v
                    .get("arrays")
                    .and_then(Json::as_array)
                    .map(|a| {
                        a.iter()
                            .filter_map(Json::as_str)
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default();
                Op::Run(spec(&v)?, arrays)
            }
            other => return Err(format!("unknown op '{other}'")),
        };
        Ok(Request { id, op })
    }

    /// Best-effort id extraction from a line that failed to parse as a
    /// request, so even a malformed request's error response correlates.
    pub fn recover_id(line: &str) -> i64 {
        Json::parse(line)
            .ok()
            .and_then(|v| v.get("id").and_then(Json::as_i64))
            .unwrap_or(0)
    }
}

/// Render an `ok:false` response line (no trailing newline).
pub fn error_response(id: i64, code: &str, message: &str) -> String {
    ObjBuilder::new()
        .num("id", id as f64)
        .bool("ok", false)
        .str("code", code)
        .str("error", message)
        .build()
        .render()
}

/// The stable busy rejection for a request that failed admission control.
pub fn busy_response(id: i64, queue_depth: usize) -> String {
    error_response(
        id,
        codes::SERVER_BUSY,
        &format!("server at capacity (queue depth {queue_depth}); retry with backoff"),
    )
}

/// The stable deadline-exceeded answer the watchdog writes when a
/// request's compile/run budget runs out.
pub fn deadline_response(id: i64, budget_ms: u64) -> String {
    error_response(
        id,
        codes::SERVER_DEADLINE,
        &format!("deadline exceeded ({budget_ms} ms budget); slot reclaimed, safe to retry"),
    )
}

/// The stable worker-crash answer the supervisor writes when the worker
/// holding a request dies.
pub fn crash_response(id: i64) -> String {
    error_response(
        id,
        codes::SERVER_WORKER_CRASH,
        "worker crashed while processing this request; worker respawned, safe to retry",
    )
}

/// The stable memory-admission rejection: the request's attested memory
/// estimate cannot be reserved against the server budget even after the
/// squeeze rung and a bounded park. **Not** retryable on this server — a
/// request this size will keep failing until the budget is raised.
pub fn mem_reject_response(id: i64, est_bytes: u64, budget_bytes: Option<u64>) -> String {
    let budget = budget_bytes
        .map(|b| format!("{b} byte server budget"))
        .unwrap_or_else(|| "unbounded server budget".to_string());
    error_response(
        id,
        codes::SERVER_MEM_REJECT,
        &format!(
            "memory reservation unavailable ({est_bytes} bytes estimated, {budget}); \
             not retryable here — raise --mem-budget or shrink the program"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_run_requests() {
        let r = Request::parse(
            r#"{"op":"run","id":7,"source":"program p\nend program p","target":"omp:4","arrays":["u","v"]}"#,
        )
        .unwrap();
        assert_eq!(r.id, 7);
        match r.op {
            Op::Run(spec, arrays) => {
                assert_eq!(spec.target, Target::StencilOpenMp { threads: 4 });
                assert!(!spec.autotune);
                assert_eq!(arrays, vec!["u", "v"]);
                assert!(spec.source.starts_with("program p"));
            }
            other => panic!("wrong op: {other:?}"),
        }
    }

    #[test]
    fn target_grammar_round_trips() {
        assert_eq!(parse_target("cpu").unwrap(), Target::StencilCpu);
        assert_eq!(parse_target("flang").unwrap(), Target::FlangOnly);
        assert_eq!(
            parse_target("dist:2x3").unwrap(),
            Target::StencilDistributed { grid: vec![2, 3] }
        );
        assert!(parse_target("dist:0x2").is_err());
        assert!(parse_target("omp:x").is_err());
        assert!(parse_target("warp9").is_err());
    }

    #[test]
    fn malformed_lines_recover_ids_when_present() {
        assert!(Request::parse("{\"op\":\"warp\",\"id\":3}").is_err());
        assert_eq!(Request::recover_id("{\"op\":\"warp\",\"id\":3}"), 3);
        assert_eq!(Request::recover_id("not json at all"), 0);
    }

    #[test]
    fn error_responses_carry_stable_codes() {
        let line = busy_response(9, 64);
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("E0801"));
        assert_eq!(v.get("id").and_then(Json::as_i64), Some(9));
    }
}
