//! End-to-end tests of the compile server's failure model (DESIGN.md
//! §11): deadlines, crash-only worker recovery, brownout degradation,
//! bounded frames, cache degradation, and graceful shutdown — each
//! exercised through the real Unix socket with a real client, asserting
//! the *coded response* contract: every admitted request is answered
//! exactly once, success or stable error code, and degraded service is
//! attested, never silent.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use fsc_core::{CompileOptions, Compiler, Target};
use fsc_ir::json::Json;
use fsc_serve::{checksum_arrays, ChaosPlan, Client, Server, ServerConfig};

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("fsc-failmodel-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }

    fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn source() -> String {
    fsc_workloads::gauss_seidel::fortran_source(4, 1)
}

fn config(plan_cache: PathBuf) -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_depth: 16,
        plan_cache: Some(plan_cache),
        ..ServerConfig::default()
    }
}

fn ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool) == Some(true)
}

fn code(v: &Json) -> Option<&str> {
    v.get("code").and_then(Json::as_str)
}

fn stat(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN)
}

/// A compile stuck past its budget is answered `E0803` by the watchdog,
/// and the singleflight slot is released: the same shape succeeds
/// immediately once the chaos is disarmed, without waiting for the stuck
/// leader to finish its injected 1.5 s nap.
#[test]
fn deadline_overrun_answers_e0803_and_releases_the_slot() {
    let scratch = Scratch::new("deadline");
    let mut cfg = config(scratch.join("plans.json"));
    cfg.chaos = Some(ChaosPlan {
        slow_compile_prob: 1.0,
        slow_compile_ms: 1500,
        ..ChaosPlan::none(11)
    });
    let mut server = Server::start(&scratch.join("serve.sock"), cfg).unwrap();

    let mut client = Client::connect(server.socket_path()).unwrap();
    let t0 = Instant::now();
    let v = client
        .call(
            fsc_ir::json::ObjBuilder::new()
                .str("op", "run")
                .str("source", &source())
                .str("target", "cpu")
                .bool("autotune", false)
                .num("deadline_ms", 150.0),
        )
        .unwrap();
    assert!(!ok(&v), "budget overrun must not succeed: {}", v.render());
    assert_eq!(code(&v), Some("E0803"), "got: {}", v.render());
    assert!(
        t0.elapsed() < Duration::from_millis(1200),
        "the E0803 answer must not wait out the stuck compile"
    );

    server.chaos().unwrap().disarm();
    let t1 = Instant::now();
    let v = client.run(&source(), "cpu", false, &[]).unwrap();
    assert!(ok(&v), "post-disarm retry must succeed: {}", v.render());
    assert!(
        t1.elapsed() < Duration::from_millis(1500),
        "the retry must ride a fresh slot, not the abandoned leader"
    );

    let stats = client.stats().unwrap();
    assert!(stat(&stats, "deadline_kills") >= 1.0);
    assert!(stat(&stats, "abandoned_slots") >= 1.0);
    server.stop();
}

/// A worker that dies by panic is detected by the supervisor: the
/// in-flight request is answered `E0804` and the worker respawned — with
/// a single-worker pool, the follow-up request succeeding proves the
/// respawn actually happened.
#[test]
fn worker_crash_answers_e0804_and_respawns() {
    let scratch = Scratch::new("crash");
    let mut cfg = config(scratch.join("plans.json"));
    cfg.workers = 1;
    cfg.chaos = Some(ChaosPlan {
        worker_panic_prob: 1.0,
        ..ChaosPlan::none(13)
    });
    let mut server = Server::start(&scratch.join("serve.sock"), cfg).unwrap();

    let mut client = Client::connect(server.socket_path()).unwrap();
    let v = client.run(&source(), "cpu", false, &[]).unwrap();
    assert_eq!(code(&v), Some("E0804"), "got: {}", v.render());

    server.chaos().unwrap().disarm();
    let v = client.run(&source(), "cpu", false, &[]).unwrap();
    assert!(ok(&v), "the respawned worker must serve: {}", v.render());

    let stats = client.stats().unwrap();
    assert!(stat(&stats, "worker_crashes") >= 1.0);
    assert_eq!(stat(&stats, "completed"), 1.0);
    server.stop();
}

/// Graceful shutdown: in-flight and queued requests complete (slowly —
/// every compile carries an injected 300 ms nap), nothing is dropped, and
/// `stop()` joins well within its hard timeout.
#[test]
fn graceful_drain_completes_inflight_and_queued_work() {
    let scratch = Scratch::new("drain");
    let mut cfg = config(scratch.join("plans.json"));
    cfg.workers = 1;
    cfg.chaos = Some(ChaosPlan {
        slow_compile_prob: 1.0,
        slow_compile_ms: 300,
        ..ChaosPlan::none(17)
    });
    let socket = scratch.join("serve.sock");
    let mut server = Server::start(&socket, cfg).unwrap();

    // Three distinct shapes: one in flight, two queued behind it.
    let shapes: Vec<String> = (4..7)
        .map(|n| fsc_workloads::gauss_seidel::fortran_source(n, 1))
        .collect();
    let clients: Vec<_> = shapes
        .into_iter()
        .map(|src| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&socket).unwrap();
                c.run(&src, "cpu", false, &[]).unwrap()
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100)); // let them enqueue

    let t0 = Instant::now();
    server.stop();
    let stop_wall = t0.elapsed();
    assert!(
        stop_wall < Duration::from_secs(5),
        "stop took {stop_wall:?}, beyond any reasonable drain"
    );

    for handle in clients {
        let v = handle.join().expect("client thread");
        assert!(ok(&v), "queued work must drain, not drop: {}", v.render());
    }
}

/// `stop()` must honor its hard timeout even when a worker is wedged in a
/// compile far longer than the budget: the worker is detached (the
/// process is not held hostage) and the client still gets its answer from
/// the detached thread when the compile eventually finishes.
#[test]
fn stop_detaches_a_wedged_worker_within_its_hard_bound() {
    let scratch = Scratch::new("wedge");
    let mut cfg = config(scratch.join("plans.json"));
    cfg.workers = 1;
    cfg.stop_timeout = Duration::from_millis(300);
    cfg.chaos = Some(ChaosPlan {
        slow_compile_prob: 1.0,
        slow_compile_ms: 2500,
        ..ChaosPlan::none(19)
    });
    let socket = scratch.join("serve.sock");
    let mut server = Server::start(&socket, cfg).unwrap();

    let client = {
        let socket = socket.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&socket).unwrap();
            c.run(&source(), "cpu", false, &[]).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(200)); // compile is in flight

    let t0 = Instant::now();
    server.stop();
    let stop_wall = t0.elapsed();
    assert!(
        stop_wall < Duration::from_secs(2),
        "stop must detach the wedged worker, took {stop_wall:?}"
    );

    let v = client.join().expect("client thread");
    assert!(
        ok(&v),
        "the detached worker still answers its client: {}",
        v.render()
    );
}

/// An unusable plan-cache path (its parent is a regular file, so even
/// root cannot create it) degrades to in-memory plans with a coded
/// `E0702` warning attested in the response — never a failed request.
#[test]
fn unusable_plan_cache_degrades_with_a_coded_warning() {
    let scratch = Scratch::new("rocache");
    // `chmod`-based read-only paths do not block root; a path whose
    // parent is a *file* fails with NotADirectory for every uid.
    std::fs::write(scratch.join("blocker"), b"i am not a directory").unwrap();
    let cache = scratch.join("blocker").join("plans.json");
    let mut server = Server::start(&scratch.join("serve.sock"), config(cache)).unwrap();

    let mut client = Client::connect(server.socket_path()).unwrap();
    let v = client.run(&source(), "cpu", true, &["u"]).unwrap();
    assert!(
        ok(&v),
        "cache trouble must never fail a request: {}",
        v.render()
    );
    let warnings: Vec<&str> = v
        .get("warnings")
        .and_then(Json::as_array)
        .map(|w| w.iter().filter_map(Json::as_str).collect())
        .unwrap_or_default();
    assert!(
        warnings.contains(&"E0702"),
        "degradation must be attested (warnings {warnings:?}): {}",
        v.render()
    );
    // And the tuned result is still bit-identical to the library run.
    let exec = Compiler::run(&source(), &CompileOptions::for_target(Target::StencilCpu)).unwrap();
    assert_eq!(
        v.get("checksum").and_then(Json::as_str).unwrap(),
        format!("{:016x}", checksum_arrays(&exec, &["u".to_string()])),
    );
    server.stop();
}

/// An oversized request line is answered `E0802` inline and the reader
/// resyncs at the next newline: the same connection then serves a normal
/// request.
#[test]
fn oversized_frame_answers_e0802_and_the_connection_survives() {
    let scratch = Scratch::new("frames");
    let mut cfg = config(scratch.join("plans.json"));
    cfg.max_frame_bytes = 1024;
    let mut server = Server::start(&scratch.join("serve.sock"), cfg).unwrap();

    let mut raw = UnixStream::connect(server.socket_path()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let oversized = vec![b'x'; 64 * 1024];
    raw.write_all(&oversized).unwrap();
    raw.write_all(b"\n").unwrap();
    raw.write_all(b"{\"op\":\"ping\",\"id\":42}\n").unwrap();

    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
    let v = Json::parse(line.trim()).unwrap();
    assert_eq!(code(&v), Some("E0802"), "got: {}", v.render());

    line.clear();
    std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
    let v = Json::parse(line.trim()).unwrap();
    assert!(
        v.get("pong").and_then(Json::as_bool) == Some(true),
        "the connection must survive the oversized frame: {}",
        v.render()
    );

    let mut client = Client::connect(server.socket_path()).unwrap();
    let stats = client.stats().unwrap();
    assert!(stat(&stats, "oversized_frames") >= 1.0);
    server.stop();
}

/// A connection dribbling a partial frame past the idle deadline is
/// closed (slow-loris containment) — the client reads EOF, and the
/// server counts the eviction.
#[test]
fn slow_loris_partial_frame_is_evicted() {
    let scratch = Scratch::new("loris");
    let mut cfg = config(scratch.join("plans.json"));
    cfg.idle_timeout = Duration::from_millis(300);
    let mut server = Server::start(&scratch.join("serve.sock"), cfg).unwrap();

    let mut raw = UnixStream::connect(server.socket_path()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(b"{\"op\":\"ping\"").unwrap(); // never finishes the line

    let mut buf = [0u8; 64];
    let t0 = Instant::now();
    let n = raw.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "the server must close the dribbling connection");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "eviction must come from the idle deadline, not a hang"
    );

    let mut client = Client::connect(server.socket_path()).unwrap();
    let stats = client.stats().unwrap();
    assert!(stat(&stats, "idle_closes") >= 1.0);
    server.stop();
}

/// Brownout level 2 (thresholds at zero: every request is "pressured"):
/// autotune is shed *and* the cheap scf rung is forced — attested in the
/// response, with the checksum still bit-identical to the full-pipeline
/// library run.
#[test]
fn brownout_level_two_forces_the_scf_rung_bit_identically() {
    let scratch = Scratch::new("brownout2");
    let mut cfg = config(scratch.join("plans.json"));
    cfg.brownout_l1 = 0.0;
    cfg.brownout_l2 = 0.0;
    let mut server = Server::start(&scratch.join("serve.sock"), cfg).unwrap();

    let mut client = Client::connect(server.socket_path()).unwrap();
    let v = client.run(&source(), "cpu", true, &["u"]).unwrap();
    assert!(ok(&v), "brownout sheds cost, not requests: {}", v.render());
    assert_eq!(
        v.get("brownout").and_then(Json::as_str),
        Some("reduced-rung"),
        "got: {}",
        v.render()
    );
    assert_eq!(
        v.get("rung_ran").and_then(Json::as_str),
        Some("sequential scf fallback")
    );
    assert_eq!(stat(&v, "tuned_kernels"), 0.0, "autotune must be shed");

    // The ladder guarantee: the cheap rung is bit-identical to the full
    // stencil pipeline.
    let exec = Compiler::run(&source(), &CompileOptions::for_target(Target::StencilCpu)).unwrap();
    assert_eq!(
        v.get("checksum").and_then(Json::as_str).unwrap(),
        format!("{:016x}", checksum_arrays(&exec, &["u".to_string()])),
    );

    let stats = client.stats().unwrap();
    assert!(stat(&stats, "brownout_reduced_rung") >= 1.0);
    server.stop();
}

/// Brownout level 1 (l2 unreachable): the autotune sweep is shed but the
/// full pipeline still runs, and the shed level is attested.
#[test]
fn brownout_level_one_sheds_autotune_only() {
    let scratch = Scratch::new("brownout1");
    let mut cfg = config(scratch.join("plans.json"));
    cfg.brownout_l1 = 0.0;
    cfg.brownout_l2 = 2.0; // unreachable
    let mut server = Server::start(&scratch.join("serve.sock"), cfg).unwrap();

    let mut client = Client::connect(server.socket_path()).unwrap();
    let v = client.run(&source(), "cpu", true, &["u"]).unwrap();
    assert!(ok(&v), "got: {}", v.render());
    assert_eq!(
        v.get("brownout").and_then(Json::as_str),
        Some("no-autotune")
    );
    assert_eq!(
        v.get("rung_ran").and_then(Json::as_str),
        Some("full stencil pipeline"),
        "level 1 must not touch the rung: {}",
        v.render()
    );
    assert_eq!(
        stat(&v, "tuned_kernels"),
        0.0,
        "the sweep must be shed: {}",
        v.render()
    );

    let stats = client.stats().unwrap();
    assert!(stat(&stats, "brownout_no_autotune") >= 1.0);
    assert_eq!(stat(&stats, "brownout_reduced_rung"), 0.0);
    server.stop();
}
