//! End-to-end compile-server suite (ISSUE 6 satellite 4).
//!
//! The flagship test fires 64 concurrent requests — duplicates across a
//! handful of programs/targets plus one invalid program — at a live
//! server over its real Unix socket and asserts:
//!
//! * every valid request succeeds, and its result is **bit-identical** to
//!   a direct in-process library compile+run (compared via an FNV
//!   checksum over the arrays' `f64` bit patterns);
//! * **singleflight holds**: the server ran exactly one compile per
//!   unique (source, options) fingerprint, plus one for the invalid
//!   program;
//! * the invalid program gets a **coded diagnostic response** — not a
//!   hang, not a dropped connection.
//!
//! A second test pins the admission-control contract deterministically:
//! with zero workers and a queue bound of one, the second job is rejected
//! `E0801` while the first sits queued.

use std::collections::HashSet;
use std::sync::{Arc, Barrier};

use fsc_core::{CompileOptions, Compiler, Target};
use fsc_ir::json::Json;
use fsc_serve::{checksum_arrays, Client, Server, ServerConfig};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fsc-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The request mix: (label, source, target string, library target).
fn mix() -> Vec<(&'static str, String, &'static str, Target)> {
    vec![
        (
            "gs4/cpu",
            fsc_workloads::gauss_seidel::fortran_source(4, 2),
            "cpu",
            Target::StencilCpu,
        ),
        (
            "gs6/cpu",
            fsc_workloads::gauss_seidel::fortran_source(6, 2),
            "cpu",
            Target::StencilCpu,
        ),
        (
            "gs8/cpu",
            fsc_workloads::gauss_seidel::fortran_source(8, 2),
            "cpu",
            Target::StencilCpu,
        ),
        (
            "gs6/omp2",
            fsc_workloads::gauss_seidel::fortran_source(6, 2),
            "omp:2",
            Target::StencilOpenMp { threads: 2 },
        ),
    ]
}

const INVALID_SOURCE: &str = "program broken\n  this is not fortran at all\nend program broken";
const INVALID_SLOT: usize = 37;

#[test]
fn sixty_four_concurrent_mixed_requests() {
    let dir = scratch_dir("storm");
    let config = ServerConfig {
        workers: 4,
        queue_depth: 128, // >= request count: nothing may be rejected here
        plan_cache: Some(dir.join("plans.json")),
        ..ServerConfig::default()
    };
    let server = Server::start(&dir.join("serve.sock"), config).unwrap();
    let socket = server.socket_path().to_path_buf();
    let mix = Arc::new(mix());

    // Reference results straight from the library, bypassing the server.
    let reference: Vec<u64> = mix
        .iter()
        .map(|(_, source, _, target)| {
            let exec = Compiler::run(source, &CompileOptions::for_target(target.clone())).unwrap();
            checksum_arrays(&exec, &["u".to_string()])
        })
        .collect();

    let n = 64;
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let (mix, barrier, socket) = (mix.clone(), barrier.clone(), socket.clone());
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket).unwrap();
                barrier.wait();
                if i == INVALID_SLOT {
                    return (i, client.run(INVALID_SOURCE, "cpu", false, &["u"]));
                }
                let (_, source, target, _) = &mix[i % mix.len()];
                (i, client.run(source, target, false, &["u"]))
            })
        })
        .collect();

    let mut checksums_seen = vec![HashSet::new(); mix.len()];
    for h in handles {
        let (i, response) = h.join().unwrap();
        let v = response.unwrap_or_else(|e| panic!("request {i} transport error: {e}"));
        if i == INVALID_SLOT {
            // The invalid program fails *with a coded diagnostic*.
            assert_eq!(
                v.get("ok").and_then(Json::as_bool),
                Some(false),
                "{}",
                v.render()
            );
            let code = v.get("code").and_then(Json::as_str).unwrap();
            assert!(
                code.starts_with('E') && code != "E0801" && code != "E0802",
                "expected a compiler diagnostic code, got {code}"
            );
            continue;
        }
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {i} failed: {}",
            v.render()
        );
        // Bit-identity vs the direct library run.
        let slot = i % mix.len();
        let checksum = v
            .get("checksum")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        assert_eq!(
            checksum,
            format!("{:016x}", reference[slot]),
            "request {i} ({}) differs from the direct library result",
            mix[slot].0
        );
        checksums_seen[slot].insert(checksum);
        // The attestation names how the artifact was obtained and what ran.
        let artifact = v.get("artifact").and_then(Json::as_str).unwrap();
        assert!(matches!(artifact, "fresh" | "deduped" | "cached"));
        assert_eq!(
            v.get("rung").and_then(Json::as_str),
            Some("full stencil pipeline")
        );
    }
    // Every duplicate of a shape produced the same bits.
    for (slot, seen) in checksums_seen.iter().enumerate() {
        assert_eq!(
            seen.len(),
            1,
            "shape {} produced divergent results",
            mix[slot].0
        );
    }

    // Singleflight: exactly one compile per unique fingerprint. The mix
    // has 4 unique shapes plus the invalid program's one (failed) compile.
    let m = server.service().metrics();
    assert_eq!(
        m.compiles,
        mix.len() as u64 + 1,
        "expected one compile per unique request shape (+1 invalid): {m:?}"
    );
    assert_eq!(m.errors, 1);
    assert_eq!(
        m.compiles + m.dedup_waits + m.artifact_hits,
        n as u64,
        "every request must be accounted for: {m:?}"
    );

    // The server-side stats endpoint agrees.
    let mut client = Client::connect(&socket).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("compiles").and_then(Json::as_i64), Some(5));
    assert_eq!(stats.get("completed").and_then(Json::as_i64), Some(63));
    assert_eq!(stats.get("failed").and_then(Json::as_i64), Some(1));
    assert_eq!(stats.get("rejected").and_then(Json::as_i64), Some(0));
    // Per-tier gauges: every valid run's GS nests attest the specialized
    // tier, and the jit artifact-cache section is present.
    assert_eq!(
        stats.get("exec_specialized").and_then(Json::as_i64),
        Some(63)
    );
    assert!(stats.get("jit_entries").and_then(Json::as_i64).is_some());

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Admission control, deterministically: no workers ever drain the
/// queue, so with a bound of one the first job is admitted and the
/// second is rejected with the stable `E0801` code — immediately, by the
/// connection thread, while the first job still sits queued.
#[test]
fn admission_control_rejects_beyond_queue_depth() {
    let dir = scratch_dir("admission");
    let config = ServerConfig {
        workers: 0,
        queue_depth: 1,
        plan_cache: Some(dir.join("plans.json")),
        ..ServerConfig::default()
    };
    let server = Server::start(&dir.join("serve.sock"), config).unwrap();
    let source = fsc_workloads::gauss_seidel::fortran_source(4, 1);

    // Fill the queue. The compile response will never come (no workers),
    // so fire-and-forget on a dedicated connection; the inline stats
    // round-trip afterwards proves the job was admitted first.
    let mut filler = Client::connect(server.socket_path()).unwrap();
    {
        use std::io::Write;
        let raw = std::os::unix::net::UnixStream::connect(server.socket_path()).unwrap();
        let mut w = &raw;
        let line = format!(
            "{{\"op\":\"compile\",\"id\":1,\"source\":{},\"target\":\"cpu\"}}\n",
            fsc_ir::json::escape_string(&source)
        );
        w.write_all(line.as_bytes()).unwrap();
        w.flush().unwrap();
        // Same connection: requests are handled in order, so once stats
        // answers, the compile job is in the queue.
        let stats = loop {
            let s = filler.stats().unwrap();
            if s.get("accepted").and_then(Json::as_i64) == Some(1) {
                break s;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        assert_eq!(stats.get("queue_depth").and_then(Json::as_i64), Some(1));
        // Keep `raw` alive until after the rejection below.
        let mut rejected_client = Client::connect(server.socket_path()).unwrap();
        let v = rejected_client.compile(&source, "cpu", false).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("E0801"));
        assert!(v
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("capacity"));
    }
    let stats = filler.stats().unwrap();
    assert_eq!(stats.get("rejected").and_then(Json::as_i64), Some(1));

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Protocol errors answer `E0802` with the recovered id — malformed input
/// never kills the connection.
#[test]
fn malformed_requests_get_coded_protocol_errors() {
    let dir = scratch_dir("proto");
    let server = Server::start(
        &dir.join("serve.sock"),
        ServerConfig {
            workers: 1,
            plan_cache: Some(dir.join("plans.json")),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    use std::io::{BufRead, BufReader, Write};
    let stream = std::os::unix::net::UnixStream::connect(server.socket_path()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut w = &stream;
    for (line, expect_id) in [
        ("{\"op\":\"warp\",\"id\":42}\n", 42),
        ("not json\n", 0),
        ("{\"op\":\"run\",\"id\":43}\n", 43), // missing source
    ] {
        w.write_all(line.as_bytes()).unwrap();
        w.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        let v = Json::parse(response.trim()).unwrap();
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(false),
            "{response}"
        );
        assert_eq!(v.get("code").and_then(Json::as_str), Some("E0802"));
        assert_eq!(v.get("id").and_then(Json::as_i64), Some(expect_id));
    }
    // The connection still works after three protocol errors.
    let mut client = Client::connect(server.socket_path()).unwrap();
    assert_eq!(
        client.ping().unwrap().get("pong").and_then(Json::as_bool),
        Some(true)
    );

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The jit tier attests its artifact provenance end-to-end (ISSUE 10
/// satellite 6): a non-template kernel's first compile stitches a fresh
/// jit artifact; a *textually different* program with identical bytecode
/// (same body, renamed program — the session fingerprint differs but the
/// content key matches) hits the shared artifact cache and attests
/// `cached`. The stats endpoint surfaces the per-tier run counts and the
/// jit cache counters.
#[test]
fn jit_tier_attests_cached_artifacts_on_warm_server() {
    let dir = scratch_dir("jitwarm");
    let server = Server::start(
        &dir.join("serve.sock"),
        ServerConfig {
            workers: 1,
            plan_cache: Some(dir.join("plans.json")),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // n=5 is unique to this test so no other in-process user of the
    // shared jit cache has stitched this compute sweep's content key.
    // The direct-library reference run happens *after* the server
    // requests: it shares the process-global artifact cache and would
    // otherwise pre-stitch the kernel, turning the server's first
    // compile from `fresh` into `cached`.
    let source = fsc_workloads::jit_kernels::sqrt_source(5, 1);

    let contains = |v: &Json, field: &str, s: &str| -> bool {
        v.get(field)
            .and_then(Json::as_array)
            .map(|a| a.iter().any(|x| x.as_str() == Some(s)))
            .unwrap_or(false)
    };

    let mut client = Client::connect(server.socket_path()).unwrap();
    let v = client.run(&source, "cpu", false, &["u"]).unwrap();
    assert_eq!(
        v.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        v.render()
    );
    // Mixed ladder: the sqrt sweep runs on the jit, the copy sweep on the
    // specialized template — and the jit artifact was stitched fresh.
    assert!(contains(&v, "exec_tiers", "jit"), "{}", v.render());
    assert!(contains(&v, "exec_tiers", "specialized"), "{}", v.render());
    assert!(contains(&v, "jit_artifacts", "fresh"), "{}", v.render());

    // Recompile under a different session fingerprint but identical
    // bytecode: rename the program (same n — jit offsets bake strides, so
    // the extents must match for the content key to match).
    let renamed = source.replace("program jit_sqrt", "program jit_sqrt_b");
    let v2 = client.run(&renamed, "cpu", false, &["u"]).unwrap();
    assert_eq!(
        v2.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        v2.render()
    );
    assert!(
        contains(&v2, "jit_artifacts", "cached"),
        "warm-server recompile must hit the shared jit artifact cache: {}",
        v2.render()
    );
    assert!(
        !contains(&v2, "jit_artifacts", "fresh"),
        "identical bytecode must not be stitched twice: {}",
        v2.render()
    );

    // Both server runs are bit-identical to the direct library run.
    let serial = Compiler::run(&source, &CompileOptions::for_target(Target::StencilCpu)).unwrap();
    let want = format!("{:016x}", checksum_arrays(&serial, &["u".to_string()]));
    assert_eq!(
        v.get("checksum").and_then(Json::as_str),
        Some(want.as_str())
    );
    assert_eq!(
        v2.get("checksum").and_then(Json::as_str),
        Some(want.as_str())
    );

    // Stats: both runs ticked the jit and specialized tier gauges, and
    // the artifact-cache counters saw at least one build and one hit.
    let stats = client.stats().unwrap();
    assert!(stats.get("exec_jit").and_then(Json::as_i64).unwrap() >= 2);
    assert!(
        stats
            .get("exec_specialized")
            .and_then(Json::as_i64)
            .unwrap()
            >= 2
    );
    assert!(stats.get("jit_builds").and_then(Json::as_i64).unwrap() >= 1);
    assert!(stats.get("jit_hits").and_then(Json::as_i64).unwrap() >= 1);
    assert!(
        stats
            .get("jit_codegen_count")
            .and_then(Json::as_i64)
            .unwrap()
            >= 1,
        "codegen latency histogram must record stitches: {}",
        stats.render()
    );

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A distributed request surfaces the rank-scheduler gauges in the stats
/// endpoint: which substrate ran, how many parks/steals the cooperative
/// scheduler took, the halo depth carried, and the node-aggregation
/// ratio — while the result stays bit-identical to the direct serial run.
#[test]
fn distributed_runs_surface_scheduler_gauges() {
    let dir = scratch_dir("distgauges");
    let server = Server::start(
        &dir.join("serve.sock"),
        ServerConfig {
            workers: 1,
            plan_cache: Some(dir.join("plans.json")),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let source = fsc_workloads::gauss_seidel::fortran_source(8, 2);
    let serial = Compiler::run(&source, &CompileOptions::for_target(Target::StencilCpu)).unwrap();
    let want = format!("{:016x}", checksum_arrays(&serial, &["u".to_string()]));

    let mut client = Client::connect(server.socket_path()).unwrap();
    let v = client.run(&source, "dist:2x2", false, &["u"]).unwrap();
    assert_eq!(
        v.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        v.render()
    );
    assert_eq!(
        v.get("checksum").and_then(Json::as_str),
        Some(want.as_str()),
        "distributed result differs from the direct serial run"
    );

    let stats = client.stats().unwrap();
    assert_eq!(stats.get("dist_runs").and_then(Json::as_i64), Some(1));
    assert_eq!(
        stats.get("dist_scheduler").and_then(Json::as_str),
        Some("coop"),
        "the cooperative scheduler is the default substrate"
    );
    assert!(
        stats.get("dist_parks").and_then(Json::as_i64).unwrap() > 0,
        "rank bodies must park on blocking halo recvs: {}",
        stats.render()
    );
    assert!(stats.get("dist_halo_depth").and_then(Json::as_i64).unwrap() >= 1);
    assert!(
        stats
            .get("dist_aggregation_ratio")
            .and_then(Json::as_f64)
            .unwrap()
            >= 1.0
    );

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
