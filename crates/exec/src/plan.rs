//! Execution plans: *how* a compiled nest is swept, as opposed to *what*
//! it computes.
//!
//! A [`ExecPlan`] bundles the three knobs the executor honours —
//! cache-block tile extents per dimension, the inner-loop unroll factor of
//! the specialized fast paths, and the parallel slab budget — together
//! with a provenance tag saying where the plan came from (hardcoded
//! default, a fresh autotune calibration, or the persistent plan cache).
//! The provenance rides through `KernelStats` into `RunReport`, so every
//! run attests which plan actually executed.
//!
//! Plans never change *what* is computed: every candidate visits every
//! cell exactly once with the unchanged per-cell arithmetic, so all plans
//! are bit-identical by construction (and by proptest).

use std::fmt;

/// Where an [`ExecPlan`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PlanProvenance {
    /// The built-in default (possibly seeded from IR tile attributes).
    #[default]
    Default,
    /// Chosen by a fresh autotune calibration sweep this process.
    Tuned,
    /// Loaded from the persistent plan cache.
    Cached,
}

impl PlanProvenance {
    /// Stable lowercase name (used in reports and the cache format).
    pub fn describe(self) -> &'static str {
        match self {
            PlanProvenance::Default => "default",
            PlanProvenance::Tuned => "tuned",
            PlanProvenance::Cached => "cached",
        }
    }
}

impl fmt::Display for PlanProvenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.describe())
    }
}

/// How a nest is executed: tiling, unrolling and work-sharing choices.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExecPlan {
    /// Cache-block extent per dimension (dimension 0 is fastest-varying).
    /// `0` (or a missing entry) means the dimension is not blocked; values
    /// larger than the extent behave like `0`.
    pub tiles: Vec<i64>,
    /// Inner-loop unroll factor on the specialized fast paths (1 or 4).
    /// Other execution tiers ignore it.
    pub unroll: u8,
    /// Parallel slab budget: at most this many work-shared tasks per nest
    /// (`0` = one per pool thread).
    pub slabs: u32,
    /// Where this plan came from.
    pub provenance: PlanProvenance,
}

impl Default for ExecPlan {
    fn default() -> Self {
        Self {
            tiles: Vec::new(),
            unroll: 1,
            slabs: 0,
            provenance: PlanProvenance::Default,
        }
    }
}

impl ExecPlan {
    /// The default plan seeded with tile sizes carried by the lowered IR
    /// (the `"tiled"` attribute of a tiled parallel loop).
    pub fn from_ir_tiles(tiles: Vec<i64>) -> Self {
        Self {
            tiles,
            ..Self::default()
        }
    }

    /// Tile extent for dimension `d`; `None` when the dimension is
    /// unblocked (no entry, `0`, or a degenerate value).
    pub fn tile_for(&self, d: usize) -> Option<i64> {
        match self.tiles.get(d).copied() {
            Some(t) if t > 0 => Some(t),
            _ => None,
        }
    }

    /// True when any dimension is blocked.
    pub fn is_tiled(&self) -> bool {
        (0..self.tiles.len()).any(|d| self.tile_for(d).is_some())
    }

    /// The same plan with a different provenance tag.
    pub fn with_provenance(mut self, p: PlanProvenance) -> Self {
        self.provenance = p;
        self
    }

    /// One-line stable description, e.g. `tiles=[0,16] unroll=4 slabs=auto
    /// (tuned)`.
    pub fn describe(&self) -> String {
        let tiles = if self.tiles.is_empty() {
            "-".to_string()
        } else {
            format!(
                "[{}]",
                self.tiles
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            )
        };
        let slabs = if self.slabs == 0 {
            "auto".to_string()
        } else {
            self.slabs.to_string()
        };
        format!(
            "tiles={tiles} unroll={} slabs={slabs} ({})",
            self.unroll, self.provenance
        )
    }
}

impl fmt::Display for ExecPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_untiled_unrolled_once() {
        let p = ExecPlan::default();
        assert!(!p.is_tiled());
        assert_eq!(p.unroll, 1);
        assert_eq!(p.slabs, 0);
        assert_eq!(p.provenance, PlanProvenance::Default);
        assert_eq!(p.tile_for(0), None);
    }

    #[test]
    fn tile_for_ignores_degenerate_entries() {
        let p = ExecPlan::from_ir_tiles(vec![0, 16, -3]);
        assert_eq!(p.tile_for(0), None);
        assert_eq!(p.tile_for(1), Some(16));
        assert_eq!(p.tile_for(2), None);
        assert_eq!(p.tile_for(9), None);
        assert!(p.is_tiled());
    }

    #[test]
    fn describe_is_stable() {
        let p = ExecPlan {
            tiles: vec![0, 16],
            unroll: 4,
            slabs: 0,
            provenance: PlanProvenance::Tuned,
        };
        assert_eq!(p.describe(), "tiles=[0,16] unroll=4 slabs=auto (tuned)");
        assert_eq!(
            ExecPlan::default().describe(),
            "tiles=- unroll=1 slabs=auto (default)"
        );
    }
}
