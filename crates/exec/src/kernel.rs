//! The stencil kernel compiler and runners — the optimised execution tier.
//!
//! [`compile_kernel`] pattern-matches the loop shapes the lowering passes
//! generate (CPU `scf.parallel`+`scf.for`, tiled nests, `omp` nests, GPU
//! launches) and compiles each loop nest of a region function to
//! [`BodyProgram`] bytecode with per-view strides and relative offsets
//! resolved at compile time. A region may hold *several* nests (e.g. the
//! Gauss–Seidel compute sweep followed by the copy sweep, sharing field
//! views) — they execute in order.
//!
//! Runners ([`run_kernel`]):
//! * single thread — innermost (unit-stride) dimension as the contiguous
//!   hot loop;
//! * work-shared over a rayon pool by slicing the slowest dimension into
//!   contiguous output slabs (`omp.wsloop`);
//! * GPU plans execute on the CPU for correctness while the driver charges
//!   modeled time (see `fsc-gpusim`).

use std::collections::HashMap;
use std::sync::Arc;

use fsc_dialects::arith::CmpPredicate;
use fsc_dialects::{fir, func, gpu, memref, mpi, omp, scf};
use fsc_ir::diag::{codes, Diagnostic};
use fsc_ir::{Attribute, BlockId, IrError, Module, OpId, Result, Type, ValueId};

use crate::bytecode::{BinKind, BodyProgram, CmpKind, Instr, UnKind};
use crate::jit::{self, JitArtifact, JitProgram};
use crate::plan::ExecPlan;
use crate::specialize::{self, ExecPath, SpecProgram};
use crate::value::{column_major_strides, BufId, Memory};

fn err(msg: impl std::fmt::Display) -> IrError {
    IrError::new(format!("kernel compiler: {msg}"))
}

/// Kind of kernel argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgKind {
    /// Pointer to an array buffer.
    Ptr,
    /// Scalar passed by value.
    Scalar,
}

/// A runtime kernel argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelArg {
    /// Array buffer.
    Buf(BufId),
    /// Scalar value.
    Scalar(f64),
}

/// Where a view's storage comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewSource {
    /// The pointer argument with this function-argument index.
    Arg(usize),
    /// A value-semantics snapshot of another view (in-place stencils);
    /// refreshed before each nest that lists it in [`Nest::snapshots`].
    SnapshotOf(usize),
}

/// A lowered memref view.
#[derive(Debug, Clone)]
pub struct ViewSpec {
    /// Storage origin.
    pub source: ViewSource,
    /// Per-dimension extents (dimension 0 fastest).
    pub extents: Vec<i64>,
    /// Column-major strides.
    pub strides: Vec<i64>,
}

impl ViewSpec {
    /// Total element count.
    pub fn len(&self) -> usize {
        self.extents.iter().product::<i64>().max(0) as usize
    }

    /// Overflow-checked element count (coded `E0807` near `usize::MAX`).
    pub fn checked_len(&self) -> fsc_ir::Result<usize> {
        crate::budget::checked_elems(&self.extents)
    }

    /// True when the view holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Halo schedule the `mpi-overlap-halos` pass proved legal for a nest.
///
/// Present only when every access is a "star" stencil with respect to the
/// decomposition (nonzero offsets in at most one decomposed dimension), so
/// face messages carry all remote dependencies and the iteration space
/// splits exactly into a halo-independent interior plus boundary shells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaloSchedule {
    /// Receive every face, then compute the whole owned block.
    Blocking,
    /// Compute the interior while messages are in flight; finish the
    /// boundary shells after `waitall`.
    Overlap,
}

/// One halo exchange required before a nest executes (distributed plans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpiExchange {
    /// View being exchanged.
    pub view: usize,
    /// Data dimension crossed.
    pub dim: usize,
    /// +1 towards upper neighbour, -1 towards lower.
    pub direction: i64,
    /// Halo width in cells.
    pub width: i64,
    /// Message tag.
    pub tag: i64,
}

/// One compiled loop nest of a region.
#[derive(Debug, Clone)]
pub struct Nest {
    /// Half-open iteration bounds per dimension, in global coordinates.
    pub bounds: Vec<(i64, i64)>,
    /// Indices (into the kernel's views) that this nest writes.
    pub out_views: Vec<usize>,
    /// The body bytecode (generic form — the accounting source of truth).
    pub program: BodyProgram,
    /// Superinstruction-fused variant of `program` (the FusedVm path).
    /// Same op counts, fewer dispatches; see `specialize::fuse_program`.
    pub fused: BodyProgram,
    /// Native specialized realisation when the body matches a template
    /// (the Specialized path); see `specialize::specialize_program`.
    pub specialized: Option<SpecProgram>,
    /// Stitched dispatch-free realisation of `fused` (the Jit path),
    /// acquired from the shared content-addressed artifact cache. `None`
    /// when stitching was skipped (see [`crate::jit::JitSkip`]); the skip
    /// is reported as an `E0705` warning on the kernel, never an error.
    pub jit: Option<Arc<JitProgram>>,
    /// Where the jit object came from — `fresh` codegen, `deduped` behind
    /// a concurrent build of the same content hash, or `cached` artifact
    /// reuse. Attested per nest in run reports.
    pub jit_source: Option<JitArtifact>,
    /// Execution path this nest runs through. Defaults to the fastest
    /// available tier; tests override via
    /// [`CompiledKernel::force_exec_path`].
    pub path: ExecPath,
    /// Halo exchanges preceding this nest (distributed plans).
    pub exchanges: Vec<MpiExchange>,
    /// Halo schedule proved legal by `mpi-overlap-halos` (carried on the
    /// loop root as the `"halo_schedule"` attribute); `None` means the
    /// interior/boundary split was not proved and the distributed executor
    /// must not run this nest rank-parallel.
    pub halo_schedule: Option<HaloSchedule>,
    /// Snapshot views to refresh (copy from source) before this nest.
    pub snapshots: Vec<usize>,
    /// How this nest is swept: cache-block tiles, unroll factor, slab
    /// budget and provenance. Defaults to an untiled plan (seeded from the
    /// IR's `"tiled"` attribute when the pipeline carried tile sizes);
    /// replaced by the autotuner / plan cache via
    /// [`CompiledKernel::force_plan`].
    pub plan: ExecPlan,
}

impl Nest {
    /// Number of grid cells in this nest's iteration domain.
    pub fn domain_cells(&self) -> u64 {
        self.bounds
            .iter()
            .map(|&(lb, ub)| (ub - lb).max(0) as u64)
            .product()
    }
}

/// GPU data-movement strategy (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuStrategy {
    /// `gpu.host_register`: demand paging on every launch.
    HostRegister,
    /// Explicit ensure-valid copies with device residency.
    Explicit,
}

/// How the kernel is meant to execute.
#[derive(Debug, Clone)]
pub enum PlanKind {
    /// Single-threaded CPU loops.
    Cpu,
    /// Work-shared CPU loops.
    Omp {
        /// Requested team size (0 = runtime default).
        num_threads: usize,
    },
    /// GPU launch (executed on CPU, timed by the V100 model).
    Gpu {
        /// Grid dimensions.
        grid: [i64; 3],
        /// Thread-block dimensions.
        block: [i64; 3],
        /// Data strategy.
        strategy: GpuStrategy,
        /// Function-argument indices read by the kernel.
        read_args: Vec<usize>,
        /// Function-argument indices written by the kernel.
        written_args: Vec<usize>,
    },
}

/// Work metrics of one kernel invocation (drives the GPU/network models).
#[derive(Debug, Clone, Default)]
pub struct KernelStats {
    /// Grid cells processed (sum over nests).
    pub cells: u64,
    /// Floating point operations.
    pub flops: u64,
    /// Bytes loaded from arrays.
    pub bytes_read: u64,
    /// Bytes stored to arrays.
    pub bytes_written: u64,
    /// Execution path of each nest, in nest order.
    pub paths: Vec<ExecPath>,
    /// Execution plan of each nest, in nest order.
    pub plans: Vec<ExecPlan>,
    /// Jit artifact provenance of each nest, in nest order (`None` when
    /// stitching was skipped for that nest).
    pub jit_artifacts: Vec<Option<JitArtifact>>,
}

/// A fully compiled region, callable through [`run_kernel`].
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Function symbol name (`stencil_region_N`).
    pub name: String,
    /// Argument kinds, in signature order.
    pub args: Vec<ArgKind>,
    /// Views shared by all nests.
    pub views: Vec<ViewSpec>,
    /// Loop nests in execution order.
    pub nests: Vec<Nest>,
    /// Execution flavour.
    pub kind: PlanKind,
    /// Process-grid decomposition (distributed plans; empty otherwise).
    pub decomposition: Vec<i64>,
    /// Ghost-layer depth `k` stamped by the deep-halo pass: swap widths in
    /// the exchange attrs are already multiplied by `k`, and the executor
    /// may amortise one exchange over `k` dispatches. `1` = classic halos.
    pub halo_depth: u32,
    /// Coded warnings raised while acquiring jit artifacts (`E0704` for
    /// integrity rebuilds, `E0705` for stitching skips). Never fatal —
    /// surfaced through run reports so callers can attest degradation.
    pub jit_warnings: Vec<Diagnostic>,
}

impl CompiledKernel {
    /// Work metrics for one invocation (summed over nests).
    pub fn stats(&self) -> KernelStats {
        let mut s = KernelStats::default();
        for nest in &self.nests {
            let cells = nest.domain_cells();
            s.cells += cells;
            // Always account against the generic program: specialization
            // and fusion preserve op counts by construction, and using one
            // source of truth keeps the models immune to path overrides.
            s.flops += cells * nest.program.flops_per_cell;
            s.bytes_read += cells * nest.program.loads_per_cell * 8;
            s.bytes_written += cells * nest.program.stores_per_cell * 8;
            s.paths.push(nest.path);
            s.plans.push(nest.plan.clone());
            s.jit_artifacts.push(nest.jit_source);
        }
        s
    }

    /// True when any nest carries halo exchanges (distributed plan).
    pub fn is_distributed(&self) -> bool {
        self.nests.iter().any(|n| !n.exchanges.is_empty())
    }

    /// Force every nest onto `path` where that tier is available; nests
    /// without a specialized (or stitched) form keep their current path
    /// when `Specialized` (or `Jit`) is requested. Returns how many nests
    /// were switched. Intended for differential tests (`tests/property.rs`)
    /// and the tier benches.
    pub fn force_exec_path(&mut self, path: ExecPath) -> usize {
        let mut switched = 0;
        for nest in &mut self.nests {
            if path == ExecPath::Specialized && nest.specialized.is_none() {
                continue;
            }
            if path == ExecPath::Jit && nest.jit.is_none() {
                continue;
            }
            if nest.path != path {
                switched += 1;
            }
            nest.path = path;
        }
        switched
    }

    /// Set every nest's execution plan. Used by the autotuner when the
    /// calibration winner (or a cache hit) replaces the default, and by
    /// benches/tests to force specific tile/unroll/slab shapes.
    ///
    /// Jit artifacts are content-addressed by `(bytecode, plan, version)`,
    /// so a plan change re-acquires each nest's stitched object under the
    /// new key (warm plans hit the shared cache). A nest whose stitching
    /// is skipped under the new plan degrades to the fused VM.
    pub fn force_plan(&mut self, plan: &ExecPlan) {
        for nest in &mut self.nests {
            nest.plan = plan.clone();
            if nest.jit.is_some() || nest.path == ExecPath::Jit {
                let acq = jit::shared_cache().acquire(&nest.fused, plan);
                self.jit_warnings.extend(acq.warnings);
                match acq.outcome {
                    Ok(p) => {
                        nest.jit = Some(p);
                        nest.jit_source = Some(acq.source);
                    }
                    Err(_) => {
                        nest.jit = None;
                        nest.jit_source = None;
                        if nest.path == ExecPath::Jit {
                            nest.path = ExecPath::FusedVm;
                        }
                    }
                }
            }
        }
    }
}

// --------------------------------------------------------------------------
// Compilation
// --------------------------------------------------------------------------

/// Compile the function named `func_name` of a fully lowered stencil module.
pub fn compile_kernel(module: &Module, func_name: &str) -> Result<CompiledKernel> {
    let f = func::find_func(module, func_name)
        .ok_or_else(|| err(format!("no function '{func_name}'")))?;
    let entry = f
        .entry_block(module)
        .ok_or_else(|| err(format!("'{func_name}' has no body")))?;
    let (ins, _) = f.signature(module);
    let args: Vec<ArgKind> = ins
        .iter()
        .map(|t| match t {
            Type::LlvmPtr(_) | Type::FirLlvmPtr(_) => ArgKind::Ptr,
            _ => ArgKind::Scalar,
        })
        .collect();
    let decomposition = module
        .op(f.0)
        .attr("dmp_decomposition")
        .and_then(Attribute::as_index_list)
        .map(<[i64]>::to_vec)
        .unwrap_or_default();
    let halo_depth = module
        .op(f.0)
        .attr("dmp_halo_depth")
        .and_then(Attribute::as_int)
        .map_or(1, |d| d.clamp(1, 64) as u32);

    // GPU plan: the host body is a launch; the nests live in the gpu.module.
    if let Some(launch) = module
        .block_ops(entry)
        .into_iter()
        .find(|&o| module.op(o).name.full() == gpu::LAUNCH_FUNC)
    {
        let kernel_sym = module
            .op(launch)
            .attr("kernel")
            .and_then(Attribute::as_symbol)
            .ok_or_else(|| err("launch without kernel symbol"))?
            .to_string();
        let (grid, block) =
            gpu::launch_dims(module, launch).ok_or_else(|| err("launch without dims"))?;
        let strategy = match module
            .op(launch)
            .attr("data_strategy")
            .and_then(Attribute::as_str)
        {
            Some("explicit") => GpuStrategy::Explicit,
            _ => GpuStrategy::HostRegister,
        };
        let read_args = attr_indices(module, launch, "read_args");
        let written_args = attr_indices(module, launch, "written_args");
        let kentry = find_gpu_kernel_block(module, &kernel_sym)?;
        let kargs = module.block_args(kentry).to_vec();
        let (views, nests, jit_warnings) = compile_nests(module, kentry, &kargs, &args)?;
        return Ok(CompiledKernel {
            name: func_name.to_string(),
            args,
            views,
            nests,
            kind: PlanKind::Gpu {
                grid,
                block,
                strategy,
                read_args,
                written_args,
            },
            decomposition,
            halo_depth,
            jit_warnings,
        });
    }

    let arg_values = f.arguments(module);
    let (views, nests, jit_warnings) = compile_nests(module, entry, &arg_values, &args)?;
    let kind = match module
        .block_ops(entry)
        .into_iter()
        .find(|&o| module.op(o).name.full() == omp::PARALLEL)
    {
        Some(par) => PlanKind::Omp {
            num_threads: omp::parallel_num_threads(module, par) as usize,
        },
        None => PlanKind::Cpu,
    };
    Ok(CompiledKernel {
        name: func_name.to_string(),
        args,
        views,
        nests,
        kind,
        decomposition,
        halo_depth,
        jit_warnings,
    })
}

fn attr_indices(module: &Module, op: OpId, key: &str) -> Vec<usize> {
    module
        .op(op)
        .attr(key)
        .and_then(Attribute::as_index_list)
        .map(|l| l.iter().map(|&i| i as usize).collect())
        .unwrap_or_default()
}

fn find_gpu_kernel_block(module: &Module, sym: &str) -> Result<BlockId> {
    for gm in module.top_level_ops_named(gpu::MODULE) {
        let region = module.op(gm).regions[0];
        for block in module.region_blocks(region) {
            for op in module.block_ops(block) {
                if module.op(op).name.full() == gpu::FUNC
                    && module.op(op).attr("sym_name").and_then(Attribute::as_str) == Some(sym)
                {
                    let kregion = module.op(op).regions[0];
                    return Ok(module.region_blocks(kregion)[0]);
                }
            }
        }
    }
    Err(err(format!("gpu kernel '{sym}' not found")))
}

/// Compile every loop nest in `block` in program order, accumulating the
/// shared view list.
fn compile_nests(
    module: &Module,
    block: BlockId,
    arg_values: &[ValueId],
    arg_kinds: &[ArgKind],
) -> Result<(Vec<ViewSpec>, Vec<Nest>, Vec<Diagnostic>)> {
    let mut views: Vec<ViewSpec> = Vec::new();
    let mut view_of_value: HashMap<ValueId, usize> = HashMap::new();
    let mut nests: Vec<Nest> = Vec::new();
    let mut jit_warnings: Vec<Diagnostic> = Vec::new();
    let mut pending_exchanges: Vec<MpiExchange> = Vec::new();
    let mut pending_snapshots: Vec<usize> = Vec::new();
    // Staging buffers (`mpi.pack` / `mpi.halo_buffer` results) → the field
    // view they stage a face of.
    let mut staging_field: HashMap<ValueId, usize> = HashMap::new();

    // Function-arg index lookup.
    let arg_index: HashMap<ValueId, usize> = arg_values
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();
    // Scalar-arg slot numbering (bytecode Arg indices count scalars only).
    let mut scalar_slot: HashMap<ValueId, u16> = HashMap::new();
    {
        let mut slot = 0u16;
        for (i, &kind) in arg_kinds.iter().enumerate() {
            if kind == ArgKind::Scalar {
                if let Some(&v) = arg_values.get(i) {
                    scalar_slot.insert(v, slot);
                }
                slot += 1;
            }
        }
    }

    for op in module.block_ops(block) {
        let data = module.op(op);
        match data.name.full() {
            memref::FROM_PTR => {
                let src = data.operands[0];
                let idx = *arg_index
                    .get(&src)
                    .ok_or_else(|| err("from_ptr source is not a kernel argument"))?;
                let Type::MemRef { shape, .. } = module.value_type(module.result(op)) else {
                    return Err(err("from_ptr of non-memref"));
                };
                view_of_value.insert(module.result(op), views.len());
                views.push(ViewSpec {
                    source: ViewSource::Arg(idx),
                    strides: column_major_strides(shape),
                    extents: shape.clone(),
                });
            }
            memref::ALLOC => {
                let Type::MemRef { shape, .. } = module.value_type(module.result(op)) else {
                    return Err(err("alloc of non-memref"));
                };
                view_of_value.insert(module.result(op), views.len());
                views.push(ViewSpec {
                    source: ViewSource::SnapshotOf(usize::MAX),
                    strides: column_major_strides(shape),
                    extents: shape.clone(),
                });
            }
            memref::COPY => {
                let src = *view_of_value
                    .get(&data.operands[0])
                    .ok_or_else(|| err("copy of unknown view"))?;
                let dst = *view_of_value
                    .get(&data.operands[1])
                    .ok_or_else(|| err("copy to unknown view"))?;
                views[dst].source = ViewSource::SnapshotOf(src);
                pending_snapshots.push(dst);
            }
            mpi::PACK | mpi::HALO_BUFFER => {
                let view = *view_of_value
                    .get(&data.operands[0])
                    .ok_or_else(|| err("halo staging of unknown view"))?;
                staging_field.insert(module.result(op), view);
            }
            mpi::ISEND => {
                let spec =
                    mpi::halo_spec(module, op).ok_or_else(|| err("isend without halo spec"))?;
                // The send goes through a pack staging buffer; resolve it
                // back to the field view it stages (direct field sends are
                // kept for hand-written IR).
                let view = *staging_field
                    .get(&data.operands[0])
                    .or_else(|| view_of_value.get(&data.operands[0]))
                    .ok_or_else(|| err("isend of unknown view"))?;
                pending_exchanges.push(MpiExchange {
                    view,
                    dim: spec.dim as usize,
                    direction: spec.direction,
                    width: spec.width,
                    tag: spec.tag,
                });
            }
            mpi::IRECV
            | mpi::UNPACK
            | mpi::WAITALL
            | mpi::BARRIER
            | mpi::INIT
            | mpi::FINALIZE
            | mpi::COMM_RANK
            | mpi::COMM_SIZE => {}
            "arith.constant" | gpu::HOST_REGISTER | gpu::MEMCPY | gpu::ALLOC | gpu::DEALLOC => {}
            scf::PARALLEL | omp::PARALLEL => {
                let nest = compile_one_nest(
                    module,
                    op,
                    &views,
                    &view_of_value,
                    &scalar_slot,
                    std::mem::take(&mut pending_exchanges),
                    std::mem::take(&mut pending_snapshots),
                    &mut jit_warnings,
                )?;
                nests.push(nest);
            }
            func::RETURN | gpu::RETURN => {}
            other => return Err(err(format!("unexpected op '{other}' in region body"))),
        }
    }
    if nests.is_empty() {
        return Err(err("no loop nest found in region"));
    }
    Ok((views, nests, jit_warnings))
}

#[allow(clippy::too_many_arguments)]
fn compile_one_nest(
    module: &Module,
    loop_root: OpId,
    views: &[ViewSpec],
    view_of_value: &HashMap<ValueId, usize>,
    scalar_slot: &HashMap<ValueId, u16>,
    exchanges: Vec<MpiExchange>,
    snapshots: Vec<usize>,
    jit_warnings: &mut Vec<Diagnostic>,
) -> Result<Nest> {
    let mut iv_bounds: HashMap<ValueId, (i64, i64)> = HashMap::new();
    let mut tile_of_iv: HashMap<ValueId, i64> = HashMap::new();
    let innermost = collect_loops(module, loop_root, &mut iv_bounds, &mut tile_of_iv)?;

    let mut compiler = BodyCompiler {
        module,
        view_of_value,
        views,
        iv_bounds: &iv_bounds,
        scalar_slot,
        regs: 0,
        memo: HashMap::new(),
        program: BodyProgram::default(),
        dim_of_iv: HashMap::new(),
        out_views: Vec::new(),
    };
    // First pass: decode every access so ivs are bound to dimensions before
    // any `stencil.index`-as-data use needs the mapping.
    for op in module.block_ops(innermost) {
        match module.op(op).name.full() {
            memref::LOAD => {
                compiler.access_of(op, 0)?;
            }
            memref::STORE => {
                compiler.access_of(op, 1)?;
            }
            _ => {}
        }
    }
    for op in module.block_ops(innermost) {
        compiler.compile_op(op)?;
    }
    let BodyCompiler {
        regs,
        mut program,
        dim_of_iv,
        out_views,
        ..
    } = compiler;
    program.num_regs = regs;
    program.finalize_stats();
    program.hoist_invariants();
    // Specialization ladder inputs: the superinstruction-fused VM program
    // (also the jit stitcher's source) and the native template match.
    let fused = specialize::fuse_program(&program);
    let specialized = specialize::specialize_program(&program);

    let rank = views
        .first()
        .map(|v| v.extents.len())
        .ok_or_else(|| err("kernel touches no views"))?;
    let mut bounds = vec![(0i64, 0i64); rank];
    let mut assigned = vec![false; rank];
    // Default plan: tile sizes the pipeline recorded on the tiled loop
    // (the `"tiled"` attribute), mapped from loop order to array dims.
    let mut plan_tiles = vec![0i64; rank];
    for (iv, dim) in &dim_of_iv {
        let b = iv_bounds.get(iv).ok_or_else(|| err("iv without bounds"))?;
        bounds[*dim] = *b;
        assigned[*dim] = true;
        if let Some(&t) = tile_of_iv.get(iv) {
            plan_tiles[*dim] = t;
        }
    }
    if !assigned.iter().all(|&a| a) {
        return Err(err("not every dimension indexed by a loop"));
    }
    let mut plan = if plan_tiles.iter().any(|&t| t > 0) {
        ExecPlan::from_ir_tiles(plan_tiles)
    } else {
        ExecPlan::default()
    };
    // Tier-selection attr: the tiling pass records its unroll hint on the
    // loop root; it seeds the default plan (autotuner may replace it).
    if let Some(u) = module
        .op(loop_root)
        .attr("unroll")
        .and_then(Attribute::as_int)
    {
        plan.unroll = u.clamp(1, 8) as u8;
    }

    // Stitch the jit realisation now that the plan (the second half of the
    // artifact key) is known. Skips degrade to the fused VM with a coded
    // warning — never an error.
    let acq = jit::shared_cache().acquire(&fused, &plan);
    jit_warnings.extend(acq.warnings);
    let (jit, jit_source) = match acq.outcome {
        Ok(p) => (Some(p), Some(acq.source)),
        Err(skip) => {
            jit_warnings.push(Diagnostic::warning(
                codes::JIT_FALLBACK,
                format!(
                    "jit stitching skipped ({}); nest runs on the fused VM",
                    skip.describe()
                ),
            ));
            (None, None)
        }
    };
    // Path ladder: Specialized > Jit > FusedVm (GenericVm is override-only).
    let path = if specialized.is_some() {
        ExecPath::Specialized
    } else if jit.is_some() {
        ExecPath::Jit
    } else {
        ExecPath::FusedVm
    };
    let halo_schedule = match module
        .op(loop_root)
        .attr("halo_schedule")
        .and_then(Attribute::as_str)
    {
        Some("overlap") => Some(HaloSchedule::Overlap),
        Some("blocking") => Some(HaloSchedule::Blocking),
        _ => None,
    };
    Ok(Nest {
        bounds,
        out_views,
        program,
        fused,
        specialized,
        jit,
        jit_source,
        path,
        exchanges,
        halo_schedule,
        snapshots,
        plan,
    })
}

/// Descend a loop structure (`scf.parallel` / `omp.parallel{wsloop}` with
/// nested `scf.for`s, possibly tiled) collecting each induction variable's
/// global bounds; returns the innermost block.
fn collect_loops(
    module: &Module,
    root: OpId,
    iv_bounds: &mut HashMap<ValueId, (i64, i64)>,
    tile_of_iv: &mut HashMap<ValueId, i64>,
) -> Result<BlockId> {
    let name = module.op(root).name.full();
    let (body, ivs, lbs, ubs): (BlockId, Vec<ValueId>, Vec<ValueId>, Vec<ValueId>) = match name {
        scf::PARALLEL => {
            let p = scf::ParallelOp(root);
            (p.body(module), p.ivs(module), p.lbs(module), p.ubs(module))
        }
        omp::PARALLEL => {
            let region = module.op(root).regions[0];
            let pblock = module.region_blocks(region)[0];
            let ws = module
                .block_ops(pblock)
                .into_iter()
                .find(|&o| module.op(o).name.full() == omp::WSLOOP)
                .ok_or_else(|| err("omp.parallel without wsloop"))?;
            let w = omp::WsLoopOp(ws);
            (w.body(module), w.ivs(module), w.lbs(module), w.ubs(module))
        }
        other => return Err(err(format!("unsupported loop root '{other}'"))),
    };
    // Tile sizes the tiling pass stamped on the loop, by loop dimension.
    let tile_sizes: Vec<i64> = module
        .op(root)
        .attr("tiled")
        .and_then(Attribute::as_index_list)
        .map(<[i64]>::to_vec)
        .unwrap_or_default();
    let mut loop_dim_of_iv: HashMap<ValueId, usize> = HashMap::new();
    for (d, ((iv, lb), ub)) in ivs.iter().zip(&lbs).zip(&ubs).enumerate() {
        let lb_c =
            trace_index_const(module, *lb).ok_or_else(|| err("non-constant loop lower bound"))?;
        let ub_c =
            trace_index_const(module, *ub).ok_or_else(|| err("non-constant loop upper bound"))?;
        iv_bounds.insert(*iv, (lb_c, ub_c));
        loop_dim_of_iv.insert(*iv, d);
    }
    // Descend through nested scf.for chains.
    let mut current = body;
    loop {
        let fors: Vec<OpId> = module
            .block_ops(current)
            .into_iter()
            .filter(|&o| module.op(o).name.full() == scf::FOR)
            .collect();
        match fors.len() {
            0 => return Ok(current),
            1 => {
                let f = scf::ForOp(fors[0]);
                let lb = f.lb(module);
                let iv = f.iv(module);
                // A for whose lower bound *is* an enclosing induction
                // variable is an intra-tile loop; a for with constant
                // bounds is an ordinary serial loop (CPU lowering nests
                // these inside the parallel dim, tiled or not).
                if iv_bounds.contains_key(&lb) {
                    // Tiled intra-tile loop: its true range is the parent
                    // parallel dimension's full range; the parent's tile
                    // size becomes the default plan tile of this iv's dim.
                    let parent = iv_bounds
                        .get(&lb)
                        .copied()
                        .ok_or_else(|| err("tiled loop without parallel parent bound"))?;
                    iv_bounds.insert(iv, parent);
                    if let Some(&t) = loop_dim_of_iv.get(&lb).and_then(|&d| tile_sizes.get(d)) {
                        tile_of_iv.insert(iv, t);
                    }
                } else {
                    let lb_c = trace_index_const(module, lb)
                        .ok_or_else(|| err("non-constant for lower bound"))?;
                    let ub_c = trace_index_const(module, f.ub(module))
                        .ok_or_else(|| err("non-constant for upper bound"))?;
                    iv_bounds.insert(iv, (lb_c, ub_c));
                }
                current = f.body(module);
            }
            _ => return Err(err("multiple sibling loops in nest body")),
        }
    }
}

/// A constant `index` value (bounds are constants after canonicalisation).
fn trace_index_const(module: &Module, v: ValueId) -> Option<i64> {
    let def = module.defining_op(v)?;
    if module.op(def).name.full() == "arith.constant" {
        return module.op(def).attr("value")?.as_int();
    }
    None
}

struct BodyCompiler<'a> {
    module: &'a Module,
    view_of_value: &'a HashMap<ValueId, usize>,
    views: &'a [ViewSpec],
    iv_bounds: &'a HashMap<ValueId, (i64, i64)>,
    scalar_slot: &'a HashMap<ValueId, u16>,
    regs: u16,
    memo: HashMap<ValueId, u16>,
    program: BodyProgram,
    dim_of_iv: HashMap<ValueId, usize>,
    out_views: Vec<usize>,
}

impl<'a> BodyCompiler<'a> {
    fn fresh(&mut self) -> u16 {
        self.regs += 1;
        self.regs - 1
    }

    fn compile_op(&mut self, op: OpId) -> Result<()> {
        let m = self.module;
        match m.op(op).name.full() {
            memref::STORE => {
                let value = m.op(op).operands[0];
                let src = self.reg_for(value)?;
                let (view, off) = self.access_of(op, 1)?;
                if !self.out_views.contains(&view) {
                    self.out_views.push(view);
                }
                self.program.instrs.push(Instr::Store {
                    view: view as u16,
                    off,
                    src,
                });
                Ok(())
            }
            scf::YIELD | omp::YIELD | omp::TERMINATOR | fir::RESULT => Ok(()),
            // Pure value ops (including address arithmetic) compile lazily,
            // on demand from the store chains.
            _ => Ok(()),
        }
    }

    /// Decode a memref access: `(view index, relative linear offset)` while
    /// assigning ivs to dimensions.
    fn access_of(&mut self, op: OpId, memref_pos: usize) -> Result<(usize, i64)> {
        let m = self.module;
        let data = m.op(op);
        let view = *self
            .view_of_value
            .get(&data.operands[memref_pos])
            .ok_or_else(|| err("access of unknown view"))?;
        let strides = self.views[view].strides.clone();
        let mut off = 0i64;
        for (k, &idx) in data.operands[memref_pos + 1..].iter().enumerate() {
            let (iv, c) = decode_index_expr(m, idx)
                .ok_or_else(|| err("unsupported index expression in kernel"))?;
            match self.dim_of_iv.get(&iv) {
                Some(&d) if d != k => {
                    return Err(err("inconsistent loop-to-dimension mapping"));
                }
                _ => {
                    self.dim_of_iv.insert(iv, k);
                }
            }
            off += c * strides[k];
        }
        Ok((view, off))
    }

    /// Register holding the value of `v`, compiling its defining op if
    /// needed.
    fn reg_for(&mut self, v: ValueId) -> Result<u16> {
        if let Some(&r) = self.memo.get(&v) {
            return Ok(r);
        }
        let m = self.module;
        // Loop induction variable used as data.
        if self.iv_bounds.contains_key(&v) {
            let dim = *self
                .dim_of_iv
                .get(&v)
                .ok_or_else(|| err("loop index used as data before any array access"))?;
            let dst = self.fresh();
            self.program.instrs.push(Instr::Coord {
                dst,
                dim: dim as u8,
            });
            self.memo.insert(v, dst);
            return Ok(dst);
        }
        // Scalar kernel argument.
        if let Some(&slot) = self.scalar_slot.get(&v) {
            let dst = self.fresh();
            self.program.instrs.push(Instr::Arg { dst, arg: slot });
            self.memo.insert(v, dst);
            return Ok(dst);
        }
        let def = m
            .defining_op(v)
            .ok_or_else(|| err("kernel body uses an unknown block argument"))?;
        let name = m.op(def).name.full().to_string();
        let operands = m.op(def).operands.clone();
        let dst = match name.as_str() {
            "arith.constant" => {
                let val = match m.op(def).attr("value") {
                    Some(Attribute::Float(f, _)) => *f,
                    Some(Attribute::Int(i, _)) => *i as f64,
                    _ => return Err(err("constant without numeric value")),
                };
                let dst = self.fresh();
                self.program.instrs.push(Instr::Const { dst, val });
                dst
            }
            memref::LOAD => {
                let (view, off) = self.access_of(def, 0)?;
                let dst = self.fresh();
                self.program.instrs.push(Instr::Load {
                    dst,
                    view: view as u16,
                    off,
                });
                dst
            }
            "arith.addf" | "arith.addi" => self.bin(BinKind::Add, &operands)?,
            "arith.subf" | "arith.subi" => self.bin(BinKind::Sub, &operands)?,
            "arith.mulf" | "arith.muli" => self.bin(BinKind::Mul, &operands)?,
            "arith.divf" => self.bin(BinKind::Div, &operands)?,
            "arith.divsi" => {
                let d = self.bin(BinKind::Div, &operands)?;
                let dst = self.fresh();
                self.program.instrs.push(Instr::Un {
                    dst,
                    kind: UnKind::Trunc,
                    a: d,
                });
                dst
            }
            "arith.remsi" => self.bin(BinKind::Rem, &operands)?,
            "arith.minf" | "arith.minsi" => self.bin(BinKind::Min, &operands)?,
            "arith.maxf" | "arith.maxsi" => self.bin(BinKind::Max, &operands)?,
            "arith.negf" => self.un(UnKind::Neg, operands[0])?,
            "arith.andi" => self.bin(BinKind::Mul, &operands)?,
            "arith.ori" => self.bin(BinKind::Max, &operands)?,
            "arith.xori" => {
                let a = self.reg_for(operands[0])?;
                let b = self.reg_for(operands[1])?;
                let dst = self.fresh();
                self.program.instrs.push(Instr::Cmp {
                    dst,
                    kind: CmpKind::Ne,
                    a,
                    b,
                });
                dst
            }
            "arith.cmpf" | "arith.cmpi" => {
                let pred = m
                    .op(def)
                    .attr("predicate")
                    .and_then(Attribute::as_str)
                    .and_then(CmpPredicate::parse)
                    .ok_or_else(|| err("cmp without predicate"))?;
                let kind = match pred {
                    CmpPredicate::Eq => CmpKind::Eq,
                    CmpPredicate::Ne => CmpKind::Ne,
                    CmpPredicate::Lt => CmpKind::Lt,
                    CmpPredicate::Le => CmpKind::Le,
                    CmpPredicate::Gt => CmpKind::Gt,
                    CmpPredicate::Ge => CmpKind::Ge,
                };
                let a = self.reg_for(operands[0])?;
                let b = self.reg_for(operands[1])?;
                let dst = self.fresh();
                self.program.instrs.push(Instr::Cmp { dst, kind, a, b });
                dst
            }
            "arith.select" => {
                let c = self.reg_for(operands[0])?;
                let a = self.reg_for(operands[1])?;
                let b = self.reg_for(operands[2])?;
                let dst = self.fresh();
                self.program.instrs.push(Instr::Select { dst, c, a, b });
                dst
            }
            "arith.index_cast" | "arith.extsi" | "arith.trunci" | "arith.sitofp" => {
                self.reg_for(operands[0])?
            }
            "arith.fptosi" => self.un(UnKind::Trunc, operands[0])?,
            "math.sqrt" => self.un(UnKind::Sqrt, operands[0])?,
            "math.absf" => self.un(UnKind::Abs, operands[0])?,
            "math.exp" => self.un(UnKind::Exp, operands[0])?,
            "math.log" => self.un(UnKind::Log, operands[0])?,
            "math.sin" => self.un(UnKind::Sin, operands[0])?,
            "math.cos" => self.un(UnKind::Cos, operands[0])?,
            "math.tanh" => self.un(UnKind::Tanh, operands[0])?,
            "math.powf" => self.bin(BinKind::Pow, &operands)?,
            "math.atan2" => self.bin(BinKind::Atan2, &operands)?,
            "math.copysign" => self.bin(BinKind::CopySign, &operands)?,
            other => return Err(err(format!("cannot compile op '{other}'"))),
        };
        self.memo.insert(v, dst);
        Ok(dst)
    }

    fn bin(&mut self, kind: BinKind, operands: &[ValueId]) -> Result<u16> {
        let a = self.reg_for(operands[0])?;
        let b = self.reg_for(operands[1])?;
        let dst = self.fresh();
        self.program.instrs.push(Instr::Bin { dst, kind, a, b });
        Ok(dst)
    }

    fn un(&mut self, kind: UnKind, operand: ValueId) -> Result<u16> {
        let a = self.reg_for(operand)?;
        let dst = self.fresh();
        self.program.instrs.push(Instr::Un { dst, kind, a });
        Ok(dst)
    }
}

/// Decode an index operand: the iv plus a constant, i.e. `iv`, `addi(iv,c)`,
/// `addi(c,iv)`, `subi(iv,c)`.
fn decode_index_expr(m: &Module, v: ValueId) -> Option<(ValueId, i64)> {
    match m.defining_op(v) {
        None => Some((v, 0)), // a block argument: the iv itself
        Some(def) => match m.op(def).name.full() {
            "arith.addi" => {
                let a = m.op(def).operands[0];
                let b = m.op(def).operands[1];
                if let Some(c) = trace_index_const(m, b) {
                    let (iv, c0) = decode_index_expr(m, a)?;
                    Some((iv, c0 + c))
                } else if let Some(c) = trace_index_const(m, a) {
                    let (iv, c0) = decode_index_expr(m, b)?;
                    Some((iv, c0 + c))
                } else {
                    None
                }
            }
            "arith.subi" => {
                let a = m.op(def).operands[0];
                let c = trace_index_const(m, m.op(def).operands[1])?;
                let (iv, c0) = decode_index_expr(m, a)?;
                Some((iv, c0 - c))
            }
            _ => None,
        },
    }
}

// --------------------------------------------------------------------------
// Execution
// --------------------------------------------------------------------------

/// Run a compiled kernel: resolve views, then execute every nest in order
/// (refreshing snapshots in between). `threads > 1` with a pool work-shares
/// each nest; otherwise nests run on the calling thread.
pub fn run_kernel(
    kernel: &CompiledKernel,
    memory: &mut Memory,
    args: &[KernelArg],
    threads: usize,
    pool: Option<&rayon::ThreadPool>,
) -> Result<()> {
    // Resolve all views to buffers (snapshots allocate backing storage).
    let mut bufs: Vec<BufId> = Vec::with_capacity(kernel.views.len());
    for view in &kernel.views {
        let buf = match view.source {
            ViewSource::Arg(i) => match args.get(i) {
                Some(KernelArg::Buf(b)) => *b,
                _ => return Err(err("pointer argument missing at call")),
            },
            ViewSource::SnapshotOf(src) => {
                if src == usize::MAX || src >= bufs.len() {
                    return Err(err("snapshot of unresolved view"));
                }
                memory.try_alloc_buffer(view.checked_len()?)?
            }
        };
        bufs.push(buf);
    }
    let scalars: Vec<f64> = args
        .iter()
        .filter_map(|a| match a {
            KernelArg::Scalar(s) => Some(*s),
            KernelArg::Buf(_) => None,
        })
        .collect();

    for nest in &kernel.nests {
        // Degenerate domains (n ≤ 2·halo leaves no interior) have nothing
        // to compute — skip before paying for snapshot refreshes.
        if nest.domain_cells() == 0 {
            continue;
        }
        // Refresh snapshot views.
        for &v in &nest.snapshots {
            let ViewSource::SnapshotOf(src) = kernel.views[v].source else {
                return Err(err("snapshot refresh of non-snapshot view"));
            };
            if bufs[src] != bufs[v] {
                let (s, d) = memory.buffer_pair_mut(bufs[src], bufs[v]);
                d.copy_from_slice(s);
            }
        }
        run_nest(nest, &kernel.views, &bufs, memory, &scalars, threads, pool)?;
    }
    // Scratch snapshot buffers are call-local: release them so time loops
    // reuse rather than grow memory.
    for (view, &buf) in kernel.views.iter().zip(&bufs) {
        if matches!(view.source, ViewSource::SnapshotOf(_)) {
            memory.release_buffer(buf);
        }
    }
    Ok(())
}

/// Run a compiled kernel the way Flang's direct FIR→LLVM flow executes the
/// same program: one cell at a time with the *full* column-major address
/// computed from scratch for every view at every cell (multiply chains per
/// access, as `fir.coordinate_of` lowers), bounds checks on every array
/// access, and no contiguous-run specialisation the vectoriser could
/// exploit. Numerically identical to [`run_kernel`]; only slower.
///
/// This is the figures' "Flang only" execution tier at compiled-code (not
/// interpreter) speed — see DESIGN.md for the substitution rationale.
pub fn run_kernel_naive(
    kernel: &CompiledKernel,
    memory: &mut Memory,
    args: &[KernelArg],
) -> Result<()> {
    let mut bufs: Vec<BufId> = Vec::with_capacity(kernel.views.len());
    for view in &kernel.views {
        let buf = match view.source {
            ViewSource::Arg(i) => match args.get(i) {
                Some(KernelArg::Buf(b)) => *b,
                _ => return Err(err("pointer argument missing at call")),
            },
            ViewSource::SnapshotOf(_) => memory.try_alloc_buffer(view.checked_len()?)?,
        };
        bufs.push(buf);
    }
    let scalars: Vec<f64> = args
        .iter()
        .filter_map(|a| match a {
            KernelArg::Scalar(s) => Some(*s),
            KernelArg::Buf(_) => None,
        })
        .collect();

    for nest in &kernel.nests {
        // Empty iteration domain: nothing to do, including snapshots.
        if nest.domain_cells() == 0 {
            continue;
        }
        for &v in &nest.snapshots {
            let ViewSource::SnapshotOf(src) = kernel.views[v].source else {
                return Err(err("snapshot refresh of non-snapshot view"));
            };
            if bufs[src] != bufs[v] {
                let (s, d) = memory.buffer_pair_mut(bufs[src], bufs[v]);
                d.copy_from_slice(s);
            }
        }
        let rank = nest.bounds.len();
        let views = &kernel.views;
        let mut out_view_map: Vec<Option<u16>> = vec![None; views.len()];
        let mut out_buf_ids: Vec<BufId> = Vec::new();
        for (slot, &v) in nest.out_views.iter().enumerate() {
            out_view_map[v] = Some(slot as u16);
            out_buf_ids.push(bufs[v]);
        }
        let mut taken: Vec<Vec<f64>> = out_buf_ids.iter().map(|&b| memory.take_buffer(b)).collect();
        {
            let inputs: Vec<&[f64]> = bufs
                .iter()
                .enumerate()
                .map(|(v, &b)| {
                    if out_view_map[v].is_some() {
                        &[][..]
                    } else {
                        memory.buffer(b)
                    }
                })
                .collect();
            let mut outputs: Vec<&mut [f64]> = taken.iter_mut().map(|v| v.as_mut_slice()).collect();
            let mut regs = vec![0.0f64; nest.program.num_regs.max(1) as usize];
            let mut coords: Vec<i64> = nest.bounds.iter().map(|&(lb, _)| lb).collect();
            'cells: loop {
                naive_cell(
                    &nest.program,
                    views,
                    &coords,
                    &mut regs,
                    &inputs,
                    &mut outputs,
                    &out_view_map,
                    &scalars,
                );
                let mut d = 0;
                loop {
                    coords[d] += 1;
                    if coords[d] < nest.bounds[d].1 {
                        break;
                    }
                    coords[d] = nest.bounds[d].0;
                    d += 1;
                    if d == rank {
                        break 'cells;
                    }
                }
            }
        }
        for (b, data) in out_buf_ids.iter().zip(taken) {
            memory.restore_buffer(*b, data);
        }
    }
    for (view, &buf) in kernel.views.iter().zip(&bufs) {
        if matches!(view.source, ViewSource::SnapshotOf(_)) {
            memory.release_buffer(buf);
        }
    }
    Ok(())
}

/// One naive-tier cell: every array access recomputes its full column-major
/// address from the coordinates (the multiply chain `fir.coordinate_of`
/// emits per access) and is bounds-checked; scalar instructions execute
/// per cell with nothing hoisted.
#[allow(clippy::too_many_arguments)]
fn naive_cell(
    program: &BodyProgram,
    views: &[ViewSpec],
    coords: &[i64],
    regs: &mut [f64],
    inputs: &[&[f64]],
    outputs: &mut [&mut [f64]],
    out_view_map: &[Option<u16>],
    scalars: &[f64],
) {
    use crate::bytecode::Instr;
    let address = |view: usize, off: i64| -> i64 {
        let spec = &views[view];
        let mut idx = off;
        for (d, &c) in coords.iter().enumerate() {
            idx += c * spec.strides[d];
        }
        idx
    };
    for instr in &program.instrs {
        match *instr {
            Instr::Load { dst, view, off } => {
                let idx = address(view as usize, off);
                let slice = inputs[view as usize];
                assert!(
                    idx >= 0 && (idx as usize) < slice.len(),
                    "load out of bounds: {idx} in view {view}"
                );
                regs[dst as usize] = slice[idx as usize];
            }
            Instr::Store { view, off, src } => {
                let slot = out_view_map[view as usize]
                    .expect("store to a view that is not an output")
                    as usize;
                let idx = address(view as usize, off);
                let slice = &mut outputs[slot];
                assert!(
                    idx >= 0 && (idx as usize) < slice.len(),
                    "store out of bounds: {idx} in view {view}"
                );
                slice[idx as usize] = regs[src as usize];
            }
            ref other => crate::bytecode::exec_scalar_instr(other, regs, coords, scalars),
        }
    }
}

fn run_nest(
    nest: &Nest,
    views: &[ViewSpec],
    bufs: &[BufId],
    memory: &mut Memory,
    scalars: &[f64],
    threads: usize,
    pool: Option<&rayon::ThreadPool>,
) -> Result<()> {
    if nest.domain_cells() == 0 {
        return Ok(());
    }

    // Output views: distinct buffers, moved out of the arena.
    let mut out_view_map: Vec<Option<u16>> = vec![None; views.len()];
    let mut out_buf_ids: Vec<BufId> = Vec::new();
    for (slot, &v) in nest.out_views.iter().enumerate() {
        out_view_map[v] = Some(slot as u16);
        out_buf_ids.push(bufs[v]);
    }
    // Input views of THIS nest must not alias its outputs (snapshot copies
    // guarantee this for in-place stencils).
    for instr in &nest.program.instrs {
        if let Instr::Load { view, .. } = instr {
            let v = *view as usize;
            if out_view_map[v].is_none() && out_buf_ids.contains(&bufs[v]) {
                return Err(err("output buffer aliases an input view"));
            }
        }
    }
    let mut taken: Vec<Vec<f64>> = out_buf_ids.iter().map(|&b| memory.take_buffer(b)).collect();

    {
        let inputs: Vec<&[f64]> = bufs
            .iter()
            .enumerate()
            .map(|(v, &b)| {
                if out_view_map[v].is_some() {
                    &[][..]
                } else {
                    memory.buffer(b)
                }
            })
            .collect();

        // Work-sharing budget: the pool width, capped by the plan's slab
        // knob. The task planner splits the slowest dimension first and
        // keeps factoring into the next-slower dimensions when the slowest
        // extent alone cannot feed the budget (e.g. a 4³ nest on 32
        // threads still produces 32 tasks).
        let effective_threads = threads.max(1);
        let budget = if nest.plan.slabs > 0 {
            effective_threads.min(nest.plan.slabs as usize)
        } else {
            effective_threads
        };
        let tasks = if budget > 1 && pool.is_some() {
            plan_tasks(&nest.bounds, budget)
        } else {
            Vec::new()
        };
        if tasks.len() > 1 {
            let tp = pool.expect("tasks imply a pool");
            let fine = run_sliced(
                nest,
                views,
                &inputs,
                &mut taken,
                &out_view_map,
                scalars,
                &tasks,
                tp,
            );
            if fine.is_err() {
                // Store offsets can make finely split slabs overlap; retry
                // with the coarser slowest-dimension-only split before
                // giving up on work-sharing for this kernel.
                let coarse = plan_tasks_outer_only(&nest.bounds, budget);
                if coarse.len() > 1 && coarse != tasks {
                    run_sliced(
                        nest,
                        views,
                        &inputs,
                        &mut taken,
                        &out_view_map,
                        scalars,
                        &coarse,
                        tp,
                    )?;
                } else {
                    fine?;
                }
            }
        } else {
            let mut outputs: Vec<&mut [f64]> = taken.iter_mut().map(|v| v.as_mut_slice()).collect();
            let slab_starts = vec![0i64; views.len()];
            run_box(
                nest,
                views,
                &inputs,
                &mut outputs,
                &slab_starts,
                &out_view_map,
                scalars,
                &nest.bounds,
            );
        }
    }

    for (b, data) in out_buf_ids.iter().zip(taken) {
        memory.restore_buffer(*b, data);
    }
    Ok(())
}

/// Serial variant of [`run_nest`] over an explicit sub-box of the nest's
/// iteration domain — the distributed executor's per-rank building block
/// (owned blocks, interiors, boundary shells). Same take/alias discipline
/// as `run_nest`, but always single-threaded: the rank bodies themselves
/// already run as scheduler tasks (or threads), one per rank.
///
/// Buffers may be *windowed*: `bases[v]` is the flat offset of view `v`'s
/// buffer origin within the full (global-coordinate) array, so a rank
/// holding only a slab of the domain can execute boxes expressed in global
/// coordinates against a buffer that stores just its window. The offset
/// rides the existing slab-start plumbing in [`run_range`]: every per-view
/// cursor subtracts it, on every execution tier. Pass all-zero `bases` for
/// full-size buffers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_nest_box_based(
    nest: &Nest,
    views: &[ViewSpec],
    bufs: &[BufId],
    memory: &mut Memory,
    scalars: &[f64],
    local: &[(i64, i64)],
    bases: &[i64],
) -> Result<()> {
    if local.iter().any(|&(lb, ub)| lb >= ub) {
        return Ok(());
    }
    let mut out_view_map: Vec<Option<u16>> = vec![None; views.len()];
    let mut out_buf_ids: Vec<BufId> = Vec::new();
    for (slot, &v) in nest.out_views.iter().enumerate() {
        out_view_map[v] = Some(slot as u16);
        out_buf_ids.push(bufs[v]);
    }
    for instr in &nest.program.instrs {
        if let Instr::Load { view, .. } = instr {
            let v = *view as usize;
            if out_view_map[v].is_none() && out_buf_ids.contains(&bufs[v]) {
                return Err(err("output buffer aliases an input view"));
            }
        }
    }
    let mut taken: Vec<Vec<f64>> = out_buf_ids.iter().map(|&b| memory.take_buffer(b)).collect();
    {
        let inputs: Vec<&[f64]> = bufs
            .iter()
            .enumerate()
            .map(|(v, &b)| {
                if out_view_map[v].is_some() {
                    &[][..]
                } else {
                    memory.buffer(b)
                }
            })
            .collect();
        let mut outputs: Vec<&mut [f64]> = taken.iter_mut().map(|v| v.as_mut_slice()).collect();
        run_box(
            nest,
            views,
            &inputs,
            &mut outputs,
            bases,
            &out_view_map,
            scalars,
            local,
        );
    }
    for (b, data) in out_buf_ids.iter().zip(taken) {
        memory.restore_buffer(*b, data);
    }
    Ok(())
}

/// Run a nest over `local` — an arbitrary sub-box of the iteration domain
/// (per-dimension half-open bounds) — honouring the nest's cache-block
/// plan: when the plan tiles a dimension, the box is decomposed into tile
/// boxes visited dimension-0-innermost, each swept by [`run_range`]. Tiling
/// is bit-exact: every cell computes exactly once with unchanged per-cell
/// arithmetic, and outputs never alias inputs.
#[allow(clippy::too_many_arguments)]
fn run_box(
    nest: &Nest,
    views: &[ViewSpec],
    inputs: &[&[f64]],
    outputs: &mut [&mut [f64]],
    out_slab_starts: &[i64],
    out_view_map: &[Option<u16>],
    scalars: &[f64],
    local: &[(i64, i64)],
) {
    let rank = local.len();
    if local.iter().any(|&(lb, ub)| lb >= ub) {
        return;
    }
    // Effective tile step per dimension: the plan's tile where it actually
    // subdivides the box, the full extent otherwise.
    let steps: Vec<i64> = (0..rank)
        .map(|d| {
            let ext = local[d].1 - local[d].0;
            match nest.plan.tile_for(d) {
                Some(t) if t < ext => t,
                _ => ext,
            }
        })
        .collect();
    if (0..rank).all(|d| steps[d] >= local[d].1 - local[d].0) {
        run_range(
            nest,
            views,
            inputs,
            outputs,
            out_slab_starts,
            out_view_map,
            scalars,
            local,
        );
        return;
    }
    let mut origin: Vec<i64> = local.iter().map(|b| b.0).collect();
    let mut tile = vec![(0i64, 0i64); rank];
    'tiles: loop {
        for d in 0..rank {
            tile[d] = (origin[d], (origin[d] + steps[d]).min(local[d].1));
        }
        run_range(
            nest,
            views,
            inputs,
            outputs,
            out_slab_starts,
            out_view_map,
            scalars,
            &tile,
        );
        let mut d = 0;
        loop {
            origin[d] += steps[d];
            if origin[d] < local[d].1 {
                break;
            }
            origin[d] = local[d].0;
            d += 1;
            if d == rank {
                break 'tiles;
            }
        }
    }
}

/// Run a nest serially over one box of the iteration domain (`bounds` are
/// per-dimension half-open local bounds — the full domain, a parallel
/// task's sub-box, or one cache-block tile).
///
/// When every view has unit innermost stride (always true for the shapes
/// our lowering produces), the innermost dimension executes in *strips*
/// through the vector VM — the realisation of the pipeline's
/// `scf-parallel-loop-specialization` vectorisation step. Otherwise a
/// scalar cell loop runs.
#[allow(clippy::too_many_arguments)]
fn run_range(
    nest: &Nest,
    views: &[ViewSpec],
    inputs: &[&[f64]],
    outputs: &mut [&mut [f64]],
    out_slab_starts: &[i64],
    out_view_map: &[Option<u16>],
    scalars: &[f64],
    bounds: &[(i64, i64)],
) {
    const STRIP: usize = 64;
    let rank = bounds.len();
    if bounds.iter().any(|&(lb, ub)| lb >= ub) {
        return;
    }
    let strip_ok = views.iter().all(|v| v.strides.first() == Some(&1));
    // Path selection. Native specialized loops assume unit innermost stride
    // exactly like the strip VM; without it, fall down the ladder. The
    // GenericVm override runs the unfused program; everything else runs the
    // fused one (identical values either way — fusion is bit-exact).
    let specialized: Option<&SpecProgram> = if nest.path == ExecPath::Specialized && strip_ok {
        nest.specialized.as_ref()
    } else {
        None
    };
    let jitted: Option<&JitProgram> = if nest.path == ExecPath::Jit && strip_ok {
        nest.jit.as_deref()
    } else {
        None
    };
    let program = if nest.path == ExecPath::GenericVm {
        &nest.program
    } else {
        &nest.fused
    };
    let num_regs = program.num_regs.max(1) as usize;
    let unroll = nest.plan.unroll;

    let mut coords: Vec<i64> = bounds.iter().map(|&(lb, _)| lb).collect();
    let mut cursors = vec![0i64; views.len()];

    // Scalar registers (fallback path).
    let mut regs = vec![0.0f64; num_regs];
    program.run_prelude(&mut regs, scalars);
    // Strip registers (vector path).
    let mut sregs = vec![0.0f64; num_regs * STRIP];
    let mut cur_w = STRIP;
    if strip_ok && specialized.is_none() && jitted.is_none() {
        program.run_prelude_strip(&mut sregs, STRIP, scalars);
    }
    // Jit state: prelude scalars evaluated once, broadcast into a full-row
    // register file from the thread-local scratch pool (row width is
    // constant within one box, so the fill happens once per call).
    let mut jrows: Vec<f64> = Vec::new();
    let mut jpre: Vec<f64> = Vec::new();
    if let Some(jp) = jitted {
        let w = (bounds[0].1 - bounds[0].0) as usize;
        jpre = jp.prelude_values(scalars);
        jrows = jit::take_scratch();
        jrows.clear();
        jrows.resize(jp.num_regs().max(1) as usize * w, 0.0);
        jp.fill_prelude_rows(&mut jrows, w, &jpre);
    }

    'rows: loop {
        for (v, spec) in views.iter().enumerate() {
            let mut c = 0i64;
            for (d, &coord) in coords.iter().enumerate().take(rank) {
                c += coord * spec.strides[d];
            }
            c -= out_slab_starts[v];
            cursors[v] = c;
        }
        let (lb0, ub0) = bounds[0];
        if let Some(spec) = specialized {
            // Native fast path: each store sweeps the whole unit-stride row
            // in one monomorphised loop — no bytecode dispatch at all.
            let w = (ub0 - lb0) as usize;
            for body in &spec.stores {
                specialize::run_spec_row(
                    body,
                    inputs,
                    outputs,
                    out_view_map,
                    &cursors,
                    scalars,
                    w,
                    unroll,
                );
            }
        } else if let Some(jp) = jitted {
            // Stitched fast path: the whole unit-stride row runs through
            // the pre-monomorphized fragment sequence — one indirect call
            // per fragment per row, zero bytecode dispatch.
            let w = (ub0 - lb0) as usize;
            jp.run_row(
                &mut jrows,
                w,
                inputs,
                outputs,
                out_view_map,
                &cursors,
                lb0,
                &coords,
                scalars,
                &jpre,
            );
        } else if strip_ok {
            let mut i = lb0;
            while i < ub0 {
                let w = ((ub0 - i) as usize).min(STRIP);
                if w != cur_w {
                    program.run_prelude_strip(&mut sregs, w, scalars);
                    cur_w = w;
                }
                program.run_strip(
                    &mut sregs,
                    w,
                    inputs,
                    outputs,
                    out_view_map,
                    &cursors,
                    i,
                    &coords,
                    scalars,
                );
                for cur in cursors.iter_mut() {
                    *cur += w as i64;
                }
                i += w as i64;
            }
        } else {
            let mut i = lb0;
            while i < ub0 {
                coords[0] = i;
                program.run_cell_body(
                    &mut regs,
                    inputs,
                    outputs,
                    out_view_map,
                    &cursors,
                    &coords,
                    scalars,
                );
                for (v, spec) in views.iter().enumerate() {
                    cursors[v] += spec.strides[0];
                }
                i += 1;
            }
        }
        coords[0] = bounds[0].0;
        let mut d = 1;
        loop {
            if d >= rank {
                break 'rows;
            }
            coords[d] += 1;
            if coords[d] < bounds[d].1 {
                break;
            }
            coords[d] = bounds[d].0;
            d += 1;
        }
    }
    if jitted.is_some() {
        jit::put_scratch(jrows);
    }
}

/// Split one dimension's half-open range into `n` near-even chunks.
fn split_dim((lo, hi): (i64, i64), n: usize) -> Vec<(i64, i64)> {
    let total = (hi - lo).max(0) as usize;
    let n = n.clamp(1, total.max(1));
    let chunk = total / n;
    let extra = total % n;
    let mut out = Vec::with_capacity(n);
    let mut start = lo;
    for t in 0..n {
        let len = chunk + usize::from(t < extra);
        out.push((start, start + len as i64));
        start += len as i64;
    }
    out
}

/// Decompose the iteration domain into up to `target` parallel task boxes.
///
/// Chunk counts are factored across dimensions slowest-first: the slowest
/// dimension takes `min(extent, target)` chunks, and any remaining budget
/// spills into the next-slower dimension — so a nest whose slowest extent
/// is smaller than the pool width (e.g. 4³ on 32 threads) still produces
/// a full task set instead of starving most of the pool. The construction
/// keeps an invariant the slab splitter relies on: whenever a dimension is
/// split into more than one multi-value chunk, every slower dimension is
/// fully split into single-value chunks, so tasks in emission order cover
/// ascending, non-interleaved memory regions (for zero store offsets).
fn plan_tasks(bounds: &[(i64, i64)], target: usize) -> Vec<Vec<(i64, i64)>> {
    let rank = bounds.len();
    let mut counts = vec![1usize; rank];
    let mut remaining = target.max(1);
    for d in (0..rank).rev() {
        if remaining <= 1 {
            break;
        }
        let ext = (bounds[d].1 - bounds[d].0).max(0) as usize;
        if ext == 0 {
            return vec![bounds.to_vec()];
        }
        let c = remaining.min(ext);
        counts[d] = c;
        remaining = remaining.div_ceil(c);
    }
    let chunks: Vec<Vec<(i64, i64)>> = (0..rank).map(|d| split_dim(bounds[d], counts[d])).collect();
    // Cartesian product, dimension 0 varying fastest: emission order is
    // ascending in memory for column-major strides.
    // Checked product: a degenerate chunk explosion must not wrap the
    // capacity hint (push still grows the vector correctly from zero).
    let cap = chunks
        .iter()
        .map(Vec::len)
        .try_fold(1usize, |a, b| a.checked_mul(b))
        .unwrap_or(0);
    let mut tasks = Vec::with_capacity(cap);
    let mut idx = vec![0usize; rank];
    loop {
        tasks.push((0..rank).map(|d| chunks[d][idx[d]]).collect());
        let mut d = 0;
        loop {
            idx[d] += 1;
            if idx[d] < chunks[d].len() {
                break;
            }
            idx[d] = 0;
            d += 1;
            if d == rank {
                return tasks;
            }
        }
    }
}

/// The pre-existing conservative decomposition: split only the slowest
/// dimension. Used as a fallback when store offsets make the finer split's
/// slabs overlap.
fn plan_tasks_outer_only(bounds: &[(i64, i64)], target: usize) -> Vec<Vec<(i64, i64)>> {
    let rank = bounds.len();
    let outer = rank - 1;
    split_dim(bounds[outer], target)
        .into_iter()
        .map(|r| {
            let mut b = bounds.to_vec();
            b[outer] = r;
            b
        })
        .collect()
}

/// Split outputs into contiguous per-task slabs and run under the pool.
///
/// `task_bounds` come from [`plan_tasks`] (or the coarser
/// [`plan_tasks_outer_only`] fallback): per-task sub-boxes of the domain in
/// ascending memory order. Each output buffer is carved into disjoint
/// `split_at_mut` slabs covering each task's store footprint; if footprints
/// overlap (wide store offsets), an error tells the caller to retry with a
/// coarser split.
#[allow(clippy::too_many_arguments)]
fn run_sliced(
    nest: &Nest,
    views: &[ViewSpec],
    inputs: &[&[f64]],
    taken: &mut [Vec<f64>],
    out_view_map: &[Option<u16>],
    scalars: &[f64],
    task_bounds: &[Vec<(i64, i64)>],
    pool: &rayon::ThreadPool,
) -> Result<()> {
    // Exact per-store offset extremes per out view.
    let mut out_offsets: Vec<(i64, i64)> = vec![(i64::MAX, i64::MIN); views.len()];
    for instr in &nest.program.instrs {
        if let Instr::Store { view, off, .. } = instr {
            let e = &mut out_offsets[*view as usize];
            e.0 = e.0.min(*off);
            e.1 = e.1.max(*off);
        }
    }
    let slab_bounds = |view: usize, tb: &[(i64, i64)]| -> (i64, i64) {
        let spec = &views[view];
        let (off_min, off_max) = out_offsets[view];
        let min_idx: i64 = tb
            .iter()
            .enumerate()
            .map(|(d, b)| b.0 * spec.strides[d])
            .sum::<i64>()
            + off_min;
        let max_idx: i64 = tb
            .iter()
            .enumerate()
            .map(|(d, b)| (b.1 - 1) * spec.strides[d])
            .sum::<i64>()
            + off_max;
        (min_idx, max_idx + 1)
    };

    struct Task<'t> {
        bounds: Vec<(i64, i64)>,
        outs: Vec<&'t mut [f64]>,
        slab_starts: Vec<i64>,
    }
    let mut tasks: Vec<Task> = task_bounds
        .iter()
        .map(|tb| Task {
            bounds: tb.clone(),
            outs: Vec::new(),
            slab_starts: vec![0; views.len()],
        })
        .collect();

    for (&view, buf) in nest.out_views.iter().zip(taken.iter_mut()) {
        let mut remaining: &mut [f64] = buf.as_mut_slice();
        let mut consumed = 0i64;
        for (t, tb) in task_bounds.iter().enumerate() {
            let (s, e) = slab_bounds(view, tb);
            if s < consumed {
                return Err(err("parallel slabs overlap; cannot work-share this kernel"));
            }
            let (_skip, rest) = remaining.split_at_mut((s - consumed) as usize);
            let (slab, rest) = rest.split_at_mut((e - s) as usize);
            tasks[t].outs.push(slab);
            tasks[t].slab_starts[view] = s;
            remaining = rest;
            consumed = e;
        }
    }

    pool.scope(|scope| {
        for task in tasks.into_iter() {
            let inputs_ref = inputs;
            scope.spawn(move |_| {
                let Task {
                    bounds,
                    mut outs,
                    slab_starts,
                } = task;
                run_box(
                    nest,
                    views,
                    inputs_ref,
                    &mut outs,
                    &slab_starts,
                    out_view_map,
                    scalars,
                    &bounds,
                );
            });
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_ir::Pass as _;
    use fsc_passes::discover::discover_stencils;
    use fsc_passes::extract::extract_stencils;
    use fsc_passes::merge::merge_adjacent_applies;
    use fsc_passes::stencil_to_scf::{lower_stencils, LoweringTarget};

    const LISTING1: &str = "
program average
  integer, parameter :: n = 16
  integer :: i, j
  real(kind=8) :: data(0:n+1, 0:n+1), res(0:n+1, 0:n+1)
  do i = 1, n
    do j = 1, n
      res(j, i) = 0.25 * (data(j, i-1) + data(j, i+1) + data(j-1, i) + data(j+1, i))
    end do
  end do
end program average
";

    fn compile(src: &str) -> CompiledKernel {
        let mut m = fsc_fortran::compile_to_fir(src).unwrap();
        discover_stencils(&mut m).unwrap();
        merge_adjacent_applies(&mut m).unwrap();
        let mut st = extract_stencils(&mut m).unwrap();
        lower_stencils(&mut st, LoweringTarget::Cpu).unwrap();
        fsc_passes::canonicalize::Canonicalize.run(&mut st).unwrap();
        compile_kernel(&st, "stencil_region_0").unwrap()
    }

    #[test]
    fn compiles_listing1_shape() {
        let k = compile(LISTING1);
        assert_eq!(k.nests.len(), 1);
        let nest = &k.nests[0];
        assert_eq!(nest.bounds, vec![(1, 17), (1, 17)]);
        assert_eq!(k.views.len(), 2);
        assert_eq!(nest.out_views.len(), 1);
        assert_eq!(nest.program.loads_per_cell, 4);
        assert_eq!(nest.program.stores_per_cell, 1);
        assert_eq!(nest.program.flops_per_cell, 4); // 3 add + 1 mul
        let stats = k.stats();
        assert_eq!(stats.cells, 256);
        assert_eq!(stats.flops, 1024);
    }

    #[test]
    fn serial_execution_matches_reference() {
        let k = compile(LISTING1);
        let mut memory = Memory::new();
        let n = 18usize;
        let data = memory.alloc_buffer(n * n);
        let res = memory.alloc_buffer(n * n);
        for i in 0..n {
            for j in 0..n {
                memory.buffer_mut(data)[j + n * i] = j as f64 + 10.0 * i as f64;
            }
        }
        run_kernel(
            &k,
            &mut memory,
            &[KernelArg::Buf(data), KernelArg::Buf(res)],
            1,
            None,
        )
        .unwrap();
        for i in 1..=16usize {
            for j in 1..=16usize {
                let expect = j as f64 + 10.0 * i as f64;
                let got = memory.buffer(res)[j + n * i];
                assert!((got - expect).abs() < 1e-12, "({j},{i}): {got} vs {expect}");
            }
        }
        assert_eq!(memory.buffer(res)[0], 0.0);
    }

    #[test]
    fn parallel_execution_matches_serial() {
        let k = compile(LISTING1);
        let n = 18usize;
        let mk = |mem: &mut Memory| {
            let data = mem.alloc_buffer(n * n);
            let res = mem.alloc_buffer(n * n);
            for idx in 0..n * n {
                mem.buffer_mut(data)[idx] = (idx as f64).sin();
            }
            (data, res)
        };
        let mut m1 = Memory::new();
        let (d1, r1) = mk(&mut m1);
        run_kernel(
            &k,
            &mut m1,
            &[KernelArg::Buf(d1), KernelArg::Buf(r1)],
            1,
            None,
        )
        .unwrap();

        let mut m2 = Memory::new();
        let (d2, r2) = mk(&mut m2);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        run_kernel(
            &k,
            &mut m2,
            &[KernelArg::Buf(d2), KernelArg::Buf(r2)],
            4,
            Some(&pool),
        )
        .unwrap();
        assert_eq!(m1.buffer(r1), m2.buffer(r2));
    }

    #[test]
    fn in_place_kernel_uses_snapshot() {
        let src = "
program t
  integer, parameter :: n = 8
  integer :: i
  real(kind=8) :: u(0:n+1)
  do i = 1, n
    u(i) = 0.5 * (u(i-1) + u(i+1))
  end do
end program t
";
        let k = compile(src);
        assert!(k
            .views
            .iter()
            .any(|v| matches!(v.source, ViewSource::SnapshotOf(_))));
        assert!(!k.nests[0].snapshots.is_empty());
        let mut memory = Memory::new();
        let u = memory.alloc_buffer(10);
        for i in 0..10 {
            memory.buffer_mut(u)[i] = i as f64;
        }
        run_kernel(&k, &mut memory, &[KernelArg::Buf(u)], 1, None).unwrap();
        for i in 1..=8usize {
            assert_eq!(memory.buffer(u)[i], i as f64, "cell {i}");
        }
    }

    #[test]
    fn scalar_argument_flows_into_body() {
        let src = "
program t
  integer, parameter :: n = 8
  integer :: i
  real(kind=8) :: c
  real(kind=8) :: a(0:n+1), r(0:n+1)
  c = 0.25
  do i = 1, n
    r(i) = c * (a(i-1) + a(i+1))
  end do
end program t
";
        let k = compile(src);
        assert_eq!(k.args, vec![ArgKind::Ptr, ArgKind::Ptr, ArgKind::Scalar]);
        let mut memory = Memory::new();
        let a = memory.alloc_buffer(10);
        let r = memory.alloc_buffer(10);
        for i in 0..10 {
            memory.buffer_mut(a)[i] = 4.0;
        }
        run_kernel(
            &k,
            &mut memory,
            &[
                KernelArg::Buf(a),
                KernelArg::Buf(r),
                KernelArg::Scalar(0.25),
            ],
            1,
            None,
        )
        .unwrap();
        for i in 1..=8usize {
            assert_eq!(memory.buffer(r)[i], 2.0);
        }
    }

    #[test]
    fn multi_nest_region_runs_in_order() {
        // Compute then copy in one time step: after the kernel, a must hold
        // the averaged values (catches the nest-ordering bug the harmonic
        // init masked).
        let src = "
program t
  integer, parameter :: n = 8
  integer :: i
  real(kind=8) :: a(0:n+1), b(0:n+1)
  do i = 1, n
    b(i) = 0.5 * (a(i-1) + a(i+1))
  end do
  do i = 1, n
    a(i) = b(i)
  end do
end program t
";
        let k = compile(src);
        assert_eq!(k.nests.len(), 2, "compute + copy nests in one region");
        let mut memory = Memory::new();
        let a = memory.alloc_buffer(10);
        let b = memory.alloc_buffer(10);
        for i in 0..10 {
            memory.buffer_mut(a)[i] = (i * i) as f64;
        }
        run_kernel(
            &k,
            &mut memory,
            &[KernelArg::Buf(a), KernelArg::Buf(b)],
            1,
            None,
        )
        .unwrap();
        // a(i) must now equal 0.5*((i-1)² + (i+1)²) = i² + 1 for interior i.
        for i in 1..=8usize {
            let expect = (i * i + 1) as f64;
            assert_eq!(memory.buffer(a)[i], expect, "cell {i}");
        }
    }

    #[test]
    fn snapshot_buffers_are_reused_across_calls() {
        let src = "
program t
  integer, parameter :: n = 8
  integer :: i
  real(kind=8) :: u(0:n+1)
  do i = 1, n
    u(i) = 0.5 * (u(i-1) + u(i+1))
  end do
end program t
";
        let k = compile(src);
        let mut memory = Memory::new();
        let u = memory.alloc_buffer(10);
        run_kernel(&k, &mut memory, &[KernelArg::Buf(u)], 1, None).unwrap();
        let after_one = memory.buffer_count();
        for _ in 0..10 {
            run_kernel(&k, &mut memory, &[KernelArg::Buf(u)], 1, None).unwrap();
        }
        assert_eq!(
            memory.buffer_count(),
            after_one,
            "snapshots must be recycled, not accumulated"
        );
    }

    #[test]
    fn naive_runner_matches_fast_runner() {
        let k = compile(LISTING1);
        let n = 18usize;
        let mk = |mem: &mut Memory| {
            let data = mem.alloc_buffer(n * n);
            let res = mem.alloc_buffer(n * n);
            for idx in 0..n * n {
                mem.buffer_mut(data)[idx] = (idx as f64 * 0.37).cos();
            }
            (data, res)
        };
        let mut m1 = Memory::new();
        let (d1, r1) = mk(&mut m1);
        run_kernel(
            &k,
            &mut m1,
            &[KernelArg::Buf(d1), KernelArg::Buf(r1)],
            1,
            None,
        )
        .unwrap();
        let mut m2 = Memory::new();
        let (d2, r2) = mk(&mut m2);
        run_kernel_naive(&k, &mut m2, &[KernelArg::Buf(d2), KernelArg::Buf(r2)]).unwrap();
        assert_eq!(m1.buffer(r1), m2.buffer(r2), "tiers must agree bitwise");
    }

    #[test]
    fn gpu_plan_compiles_from_tiled_kernel() {
        let mut m = fsc_fortran::compile_to_fir(LISTING1).unwrap();
        discover_stencils(&mut m).unwrap();
        let mut st = extract_stencils(&mut m).unwrap();
        lower_stencils(&mut st, LoweringTarget::Gpu).unwrap();
        fsc_passes::tiling::ParallelLoopTiling {
            tile_sizes: vec![8, 8, 1],
            ..Default::default()
        }
        .run(&mut st)
        .unwrap();
        fsc_passes::gpu_lowering::ConvertParallelLoopsToGpu
            .run(&mut st)
            .unwrap();
        fsc_passes::gpu_lowering::GpuDataExplicit
            .run(&mut st)
            .unwrap();
        let k = compile_kernel(&st, "stencil_region_0").unwrap();
        let PlanKind::Gpu {
            grid,
            block,
            strategy,
            ..
        } = &k.kind
        else {
            panic!("expected gpu plan");
        };
        assert_eq!(*block, [8, 8, 1]);
        assert_eq!(*grid, [2, 2, 1]);
        assert_eq!(*strategy, GpuStrategy::Explicit);
        // The nest recovered the full (untiled) domain.
        assert_eq!(k.nests[0].bounds, vec![(1, 17), (1, 17)]);
        // And it executes correctly despite the tiled IR.
        let mut memory = Memory::new();
        let n = 18usize;
        let data = memory.alloc_buffer(n * n);
        let res = memory.alloc_buffer(n * n);
        for i in 0..n * n {
            memory.buffer_mut(data)[i] = 2.0;
        }
        run_kernel(
            &k,
            &mut memory,
            &[KernelArg::Buf(data), KernelArg::Buf(res)],
            1,
            None,
        )
        .unwrap();
        assert_eq!(memory.buffer(res)[1 + n], 2.0);
    }

    const GS3D: &str = "
program gs
  integer, parameter :: n = 4
  integer :: i, j, k
  real(kind=8) :: u(0:n+1, 0:n+1, 0:n+1), un(0:n+1, 0:n+1, 0:n+1)
  do k = 1, n
    do j = 1, n
      do i = 1, n
        un(i, j, k) = (u(i-1, j, k) + u(i+1, j, k) + u(i, j-1, k) &
                     + u(i, j+1, k) + u(i, j, k-1) + u(i, j, k+1)) / 6.0
      end do
    end do
  end do
end program gs
";

    /// Total cells covered by a task list, with a disjointness check.
    fn task_cells(tasks: &[Vec<(i64, i64)>]) -> u64 {
        let mut seen = std::collections::HashSet::new();
        let mut cells = 0u64;
        for t in tasks {
            let mut coords: Vec<i64> = t.iter().map(|&(lb, _)| lb).collect();
            'walk: loop {
                assert!(seen.insert(coords.clone()), "cell {coords:?} covered twice");
                cells += 1;
                for d in 0..coords.len() {
                    coords[d] += 1;
                    if coords[d] < t[d].1 {
                        continue 'walk;
                    }
                    coords[d] = t[d].0;
                }
                break;
            }
        }
        cells
    }

    #[test]
    fn plan_tasks_splits_across_dims_when_outer_is_narrow() {
        // 4³ domain, 32-way budget: the slowest dim alone only yields 4
        // slabs; the multi-dim factorisation must reach the full budget.
        let bounds = vec![(1i64, 5), (1, 5), (1, 5)];
        let tasks = plan_tasks(&bounds, 32);
        assert_eq!(tasks.len(), 32, "4x4x2 factorisation fills 32 slots");
        assert_eq!(task_cells(&tasks), 64, "exact disjoint cover");
        // Legacy outer-only splitting caps at the slowest extent.
        assert_eq!(plan_tasks_outer_only(&bounds, 32).len(), 4);
        // Wide outer dims don't over-split.
        let tasks = plan_tasks(&[(0i64, 100), (0, 8)], 4);
        assert_eq!(tasks.len(), 4);
        assert_eq!(task_cells(&tasks), 800);
        // Budget 1 and empty domains degenerate to one task.
        assert_eq!(plan_tasks(&bounds, 1).len(), 1);
        assert_eq!(plan_tasks(&[(0i64, 0), (0, 4)], 8).len(), 1);
    }

    #[test]
    fn small_domain_on_wide_pool_matches_serial() {
        // Regression for the slab scheduler: a 4³ interior on a 32-thread
        // pool used to fall back to 4 slabs (slowest-dim-only splitting);
        // the tile decomposition must use the full pool and stay bitwise
        // identical to the serial sweep.
        let k = compile(GS3D);
        let e = 6usize;
        let mk = |mem: &mut Memory| {
            let u = mem.alloc_buffer(e * e * e);
            let un = mem.alloc_buffer(e * e * e);
            for idx in 0..e * e * e {
                mem.buffer_mut(u)[idx] = (idx as f64 * 0.61).sin() + 2.0;
            }
            (u, un)
        };
        let mut m1 = Memory::new();
        let (u1, un1) = mk(&mut m1);
        run_kernel(
            &k,
            &mut m1,
            &[KernelArg::Buf(u1), KernelArg::Buf(un1)],
            1,
            None,
        )
        .unwrap();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(32)
            .build()
            .unwrap();
        let mut m2 = Memory::new();
        let (u2, un2) = mk(&mut m2);
        run_kernel(
            &k,
            &mut m2,
            &[KernelArg::Buf(u2), KernelArg::Buf(un2)],
            32,
            Some(&pool),
        )
        .unwrap();
        let (a, b) = (m1.buffer(un1), m2.buffer(un2));
        assert!(
            a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "32-way slab decomposition diverged from serial"
        );
        // The scheduler really had 32 disjoint tasks available.
        assert_eq!(plan_tasks(&k.nests[0].bounds, 32).len(), 32);
    }

    #[test]
    fn forced_plans_execute_bit_identically() {
        // Every plan variant — degenerate tiles, non-divisible tiles,
        // tiles larger than the extent, unroll-by-4, slab budgets — must
        // visit every cell exactly once with unchanged per-cell
        // arithmetic.
        for src in [LISTING1, GS3D] {
            let mut k = compile(src);
            let rank = k.nests[0].bounds.len();
            let len = k.views[0].len();
            let mk = |mem: &mut Memory| {
                let a = mem.alloc_buffer(len);
                let b = mem.alloc_buffer(len);
                for idx in 0..len {
                    mem.buffer_mut(a)[idx] = (idx as f64 * 0.37).cos() * 3.0;
                }
                (a, b)
            };
            let mut m1 = Memory::new();
            let (a1, b1) = mk(&mut m1);
            run_kernel(
                &k,
                &mut m1,
                &[KernelArg::Buf(a1), KernelArg::Buf(b1)],
                1,
                None,
            )
            .unwrap();
            let reference = m1.buffer(b1).to_vec();

            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(3)
                .build()
                .unwrap();
            let plans = [
                ExecPlan::from_ir_tiles(vec![1; rank]),
                ExecPlan::from_ir_tiles(vec![3; rank]),
                ExecPlan::from_ir_tiles(vec![1024; rank]),
                ExecPlan {
                    tiles: vec![0, 2],
                    unroll: 4,
                    slabs: 0,
                    provenance: crate::plan::PlanProvenance::Tuned,
                },
                ExecPlan {
                    tiles: vec![],
                    unroll: 4,
                    slabs: 1,
                    provenance: crate::plan::PlanProvenance::Cached,
                },
                ExecPlan {
                    tiles: vec![7; rank],
                    unroll: 4,
                    slabs: 2,
                    provenance: crate::plan::PlanProvenance::Tuned,
                },
            ];
            for plan in plans {
                k.force_plan(&plan);
                for (threads, pool) in [(1usize, None), (3usize, Some(&pool))] {
                    let mut m2 = Memory::new();
                    let (a2, b2) = mk(&mut m2);
                    run_kernel(
                        &k,
                        &mut m2,
                        &[KernelArg::Buf(a2), KernelArg::Buf(b2)],
                        threads,
                        pool,
                    )
                    .unwrap();
                    assert!(
                        reference
                            .iter()
                            .zip(m2.buffer(b2))
                            .all(|(x, y)| x.to_bits() == y.to_bits()),
                        "plan {} diverged at {threads} threads",
                        plan.describe()
                    );
                }
            }
        }
    }

    #[test]
    fn tiled_pipeline_seeds_default_plan_from_ir() {
        // CPU lowering + explicit tiling pass: the kernel compiler must
        // pick the tile sizes up from the "tiled" attribute and execute
        // the cache-blocked sweep bit-identically to the untiled one.
        let build = |tiles: Option<Vec<i64>>| {
            let mut m = fsc_fortran::compile_to_fir(LISTING1).unwrap();
            discover_stencils(&mut m).unwrap();
            merge_adjacent_applies(&mut m).unwrap();
            let mut st = extract_stencils(&mut m).unwrap();
            lower_stencils(&mut st, LoweringTarget::Cpu).unwrap();
            if let Some(tiles) = tiles {
                fsc_passes::tiling::ParallelLoopTiling {
                    tile_sizes: tiles,
                    ..Default::default()
                }
                .run(&mut st)
                .unwrap();
            }
            fsc_passes::canonicalize::Canonicalize.run(&mut st).unwrap();
            compile_kernel(&st, "stencil_region_0").unwrap()
        };
        let plain = build(None);
        let tiled = build(Some(vec![8, 4]));
        assert!(!plain.nests[0].plan.is_tiled());
        assert!(
            tiled.nests[0].plan.is_tiled(),
            "IR tile attribute must seed the default plan: {}",
            tiled.nests[0].plan.describe()
        );
        assert_eq!(
            tiled.nests[0].plan.unroll, 4,
            "the tiling pass's unroll attr must seed the default plan"
        );
        let n = 18usize;
        let mk = |mem: &mut Memory| {
            let data = mem.alloc_buffer(n * n);
            let res = mem.alloc_buffer(n * n);
            for idx in 0..n * n {
                mem.buffer_mut(data)[idx] = (idx as f64).sqrt();
            }
            (data, res)
        };
        let mut m1 = Memory::new();
        let (d1, r1) = mk(&mut m1);
        run_kernel(
            &plain,
            &mut m1,
            &[KernelArg::Buf(d1), KernelArg::Buf(r1)],
            1,
            None,
        )
        .unwrap();
        let mut m2 = Memory::new();
        let (d2, r2) = mk(&mut m2);
        run_kernel(
            &tiled,
            &mut m2,
            &[KernelArg::Buf(d2), KernelArg::Buf(r2)],
            1,
            None,
        )
        .unwrap();
        assert_eq!(m1.buffer(r1), m2.buffer(r2));
    }

    #[test]
    fn three_d_seven_point_runs() {
        let src = "
program gs
  integer, parameter :: n = 6
  integer :: i, j, k
  real(kind=8) :: u(0:n+1, 0:n+1, 0:n+1), un(0:n+1, 0:n+1, 0:n+1)
  do k = 1, n
    do j = 1, n
      do i = 1, n
        un(i, j, k) = (u(i-1, j, k) + u(i+1, j, k) + u(i, j-1, k) &
                     + u(i, j+1, k) + u(i, j, k-1) + u(i, j, k+1)) / 6.0
      end do
    end do
  end do
end program gs
";
        let kern = compile(src);
        let nest = &kern.nests[0];
        assert_eq!(nest.bounds.len(), 3);
        assert_eq!(nest.program.loads_per_cell, 6);
        let mut memory = Memory::new();
        let e = 8usize;
        let u = memory.alloc_buffer(e * e * e);
        let un = memory.alloc_buffer(e * e * e);
        for idx in 0..e * e * e {
            memory.buffer_mut(u)[idx] = 1.0;
        }
        run_kernel(
            &kern,
            &mut memory,
            &[KernelArg::Buf(u), KernelArg::Buf(un)],
            1,
            None,
        )
        .unwrap();
        let at = |i: usize, j: usize, k: usize| memory.buffer(un)[i + e * j + e * e * k];
        assert_eq!(at(3, 3, 3), 1.0);
        assert_eq!(at(1, 1, 1), 1.0);
        assert_eq!(at(0, 0, 0), 0.0);
    }
}
