//! Runtime values and the flat-buffer memory model.

use std::sync::Arc;

use fsc_ir::diag::{codes, Diagnostic};
use fsc_ir::IrError;

use crate::budget::{elems_to_bytes, MemoryBudget};

/// Identifier of an array buffer inside [`Memory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufId(pub u32);

/// Identifier of a scalar slot inside [`Memory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(pub u32);

/// A reference value (what FIR `!fir.ref`/`!fir.heap`/`llvm_ptr` evaluate
/// to at runtime).
#[derive(Debug, Clone, PartialEq)]
pub enum Ref {
    /// Reference to a scalar slot.
    Scalar(SlotId),
    /// Reference to a whole array (the binding of an array variable).
    Array {
        /// Backing buffer.
        buf: BufId,
        /// Per-dimension extents (dimension 0 fastest-varying).
        extents: Arc<Vec<i64>>,
    },
    /// Reference to one element of an array.
    Elem {
        /// Backing buffer.
        buf: BufId,
        /// Linear (column-major) element index.
        linear: i64,
    },
}

/// A dynamic value flowing through the interpreter.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 32-bit integer (Fortran default integer).
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// Loop/index value.
    Index(i64),
    /// Double-precision float.
    F64(f64),
    /// Boolean (`i1`).
    Bool(bool),
    /// Memory reference.
    Ref(Ref),
}

impl Value {
    /// Any integer-like value as i64.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::I32(v) => Some(*v as i64),
            Value::I64(v) | Value::Index(v) => Some(*v),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Float value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value widened to f64 (ints convert).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            other => other.as_int().map(|i| i as f64),
        }
    }

    /// Reference payload.
    pub fn as_ref_val(&self) -> Option<&Ref> {
        match self {
            Value::Ref(r) => Some(r),
            _ => None,
        }
    }

    /// Boolean payload (accepting integer 0/1).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::I32(v) => Some(*v != 0),
            Value::I64(v) | Value::Index(v) => Some(*v != 0),
            _ => None,
        }
    }
}

/// A scalar memory slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// Float slot.
    F64(f64),
    /// Integer slot (i32 storage).
    I32(i32),
    /// Boolean slot.
    Bool(bool),
}

/// Column-major strides for the given extents (dimension 0 fastest).
pub fn column_major_strides(extents: &[i64]) -> Vec<i64> {
    let mut strides = Vec::with_capacity(extents.len());
    let mut acc = 1i64;
    for &e in extents {
        strides.push(acc);
        acc *= e.max(0);
    }
    strides
}

/// Overflow-checked [`column_major_strides`]: coded `E0807` when a stride
/// product does not fit `i64` (extents near the address-space limit).
pub fn checked_column_major_strides(extents: &[i64]) -> fsc_ir::Result<Vec<i64>> {
    let mut strides = Vec::with_capacity(extents.len());
    let mut acc = 1i64;
    for &e in extents {
        strides.push(acc);
        acc = acc.checked_mul(e.max(0)).ok_or_else(|| {
            IrError::from_diagnostic(Diagnostic::error(
                codes::EXTENT_OVERFLOW,
                format!("stride arithmetic overflow for extents {extents:?}"),
            ))
        })?;
    }
    Ok(strides)
}

/// Owner of all runtime storage for one program execution.
///
/// Allocation is *governed*: every buffer charges its byte size against an
/// optional [`MemoryBudget`] ledger before the storage is created, and the
/// arena tracks its own live/peak byte counters either way. Charges follow
/// the buffer's logical lifetime — [`Memory::release_buffer`] returns the
/// bytes to the ledger even though the storage is retained for reuse (a
/// later same-size allocation re-charges it), so `live_bytes` means "bytes
/// the program currently holds", not "bytes the arena has ever touched".
#[derive(Debug, Default)]
pub struct Memory {
    buffers: Vec<Vec<f64>>,
    scalars: Vec<Scalar>,
    /// Released buffer ids available for reuse (scratch buffers allocated
    /// inside kernels, e.g. value-semantics snapshots in time loops).
    free: Vec<BufId>,
    /// Bytes currently charged per buffer id (zero once released).
    charged: Vec<u64>,
    /// Optional byte ledger every allocation must reserve against.
    budget: Option<Arc<MemoryBudget>>,
    live_bytes: u64,
    peak_bytes: u64,
}

impl Memory {
    /// Fresh, empty memory with no ledger (allocations still fail cleanly
    /// on host refusal instead of aborting).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh memory governed by `budget`: every allocation reserves its
    /// bytes against the ledger first and fails coded `E0805` when the
    /// reservation is denied.
    pub fn with_budget(budget: Arc<MemoryBudget>) -> Self {
        let mut m = Self::default();
        m.budget = Some(budget);
        m
    }

    /// The governing ledger, if any.
    pub fn budget(&self) -> Option<&Arc<MemoryBudget>> {
        self.budget.as_ref()
    }

    /// Bytes currently held by live (un-released) buffers.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// High-water mark of [`Memory::live_bytes`] over this arena's life.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Allocate a zero-initialised buffer of `len` doubles, reusing a
    /// released buffer of the same length when one exists. Fails with a
    /// coded `E0805` diagnostic when the ledger (or the host allocator)
    /// refuses the bytes — the arena is left unchanged.
    pub fn try_alloc_buffer(&mut self, len: usize) -> fsc_ir::Result<BufId> {
        let bytes = elems_to_bytes(len)?;
        if let Some(b) = &self.budget {
            b.try_reserve(bytes)?;
        }
        if let Some(pos) = self
            .free
            .iter()
            .position(|&b| self.buffers[b.0 as usize].len() == len)
        {
            let buf = self.free.swap_remove(pos);
            self.buffers[buf.0 as usize].fill(0.0);
            self.charge(buf, bytes);
            return Ok(buf);
        }
        let mut storage: Vec<f64> = Vec::new();
        if storage.try_reserve_exact(len).is_err() {
            if let Some(b) = &self.budget {
                b.release(bytes);
            }
            return Err(IrError::from_diagnostic(
                Diagnostic::error(
                    codes::MEM_BUDGET,
                    format!("allocation denied: the host refused {bytes} bytes"),
                )
                .note("the request fails cleanly; the process keeps serving"),
            ));
        }
        storage.resize(len, 0.0);
        self.buffers.push(storage);
        let buf = BufId(self.buffers.len() as u32 - 1);
        self.charge(buf, bytes);
        Ok(buf)
    }

    /// Infallible [`Memory::try_alloc_buffer`] for ungoverned paths (tests,
    /// benches): panics on denial, exactly like `vec![0.0; len]` would.
    pub fn alloc_buffer(&mut self, len: usize) -> BufId {
        self.try_alloc_buffer(len)
            .expect("ungoverned buffer allocation failed")
    }

    fn charge(&mut self, buf: BufId, bytes: u64) {
        let idx = buf.0 as usize;
        if self.charged.len() <= idx {
            self.charged.resize(idx + 1, 0);
        }
        self.charged[idx] = bytes;
        self.live_bytes = self.live_bytes.saturating_add(bytes);
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
    }

    /// Release a buffer for reuse by a later [`Memory::alloc_buffer`]. The
    /// id stays valid (the storage is retained) but its contents may be
    /// overwritten by the next allocation of the same size. The buffer's
    /// byte charge is returned to the ledger and dropped from
    /// [`Memory::live_bytes`].
    pub fn release_buffer(&mut self, buf: BufId) {
        if !self.free.contains(&buf) {
            self.free.push(buf);
            let idx = buf.0 as usize;
            let bytes = self.charged.get(idx).copied().unwrap_or(0);
            if let Some(c) = self.charged.get_mut(idx) {
                *c = 0;
            }
            self.live_bytes = self.live_bytes.saturating_sub(bytes);
            if let Some(b) = &self.budget {
                b.release(bytes);
            }
        }
    }

    /// Allocate a scalar slot.
    pub fn alloc_scalar(&mut self, init: Scalar) -> SlotId {
        self.scalars.push(init);
        SlotId(self.scalars.len() as u32 - 1)
    }

    /// Read a scalar slot.
    pub fn read_scalar(&self, slot: SlotId) -> Scalar {
        self.scalars[slot.0 as usize]
    }

    /// Write a scalar slot.
    pub fn write_scalar(&mut self, slot: SlotId, v: Scalar) {
        self.scalars[slot.0 as usize] = v;
    }

    /// Immutable view of a buffer.
    pub fn buffer(&self, buf: BufId) -> &[f64] {
        &self.buffers[buf.0 as usize]
    }

    /// Mutable view of a buffer.
    pub fn buffer_mut(&mut self, buf: BufId) -> &mut [f64] {
        &mut self.buffers[buf.0 as usize]
    }

    /// Two distinct buffers, one mutable — for copies and halo exchange.
    ///
    /// Panics if `a == b`.
    pub fn buffer_pair_mut(&mut self, a: BufId, b: BufId) -> (&[f64], &mut [f64]) {
        assert_ne!(a, b, "buffer_pair_mut needs distinct buffers");
        let (ai, bi) = (a.0 as usize, b.0 as usize);
        if ai < bi {
            let (lo, hi) = self.buffers.split_at_mut(bi);
            (lo[ai].as_slice(), &mut hi[0])
        } else {
            let (lo, hi) = self.buffers.split_at_mut(ai);
            (hi[0].as_slice(), &mut lo[bi])
        }
    }

    /// Number of buffers allocated so far.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// Move a buffer out of the arena (leaving it empty) — used by the
    /// kernel runners to hold mutable output slabs while inputs stay
    /// shareable. Pair with [`Memory::restore_buffer`].
    pub fn take_buffer(&mut self, buf: BufId) -> Vec<f64> {
        std::mem::take(&mut self.buffers[buf.0 as usize])
    }

    /// Put back a buffer taken with [`Memory::take_buffer`].
    pub fn restore_buffer(&mut self, buf: BufId, data: Vec<f64>) {
        self.buffers[buf.0 as usize] = data;
    }
}

impl Drop for Memory {
    /// Return every outstanding charge to the ledger: an arena dying with
    /// live buffers (a completed run, a failed rank body) must not strand
    /// bytes in a shared budget.
    fn drop(&mut self) {
        if let Some(b) = &self.budget {
            b.release(self.live_bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_column_major() {
        assert_eq!(column_major_strides(&[4, 5, 6]), vec![1, 4, 20]);
        assert_eq!(column_major_strides(&[10]), vec![1]);
        assert!(column_major_strides(&[]).is_empty());
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::I32(7).as_int(), Some(7));
        assert_eq!(Value::Index(3).as_int(), Some(3));
        assert_eq!(Value::F64(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::I32(7).as_number(), Some(7.0));
        assert_eq!(Value::F64(2.5).as_int(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::I64(0).as_bool(), Some(false));
    }

    #[test]
    fn memory_buffers_and_scalars() {
        let mut m = Memory::new();
        let b = m.alloc_buffer(10);
        m.buffer_mut(b)[3] = 1.5;
        assert_eq!(m.buffer(b)[3], 1.5);
        assert_eq!(m.buffer(b)[0], 0.0);
        let s = m.alloc_scalar(Scalar::I32(4));
        assert_eq!(m.read_scalar(s), Scalar::I32(4));
        m.write_scalar(s, Scalar::F64(1.0));
        assert_eq!(m.read_scalar(s), Scalar::F64(1.0));
    }

    #[test]
    fn accounting_charges_releases_and_recharges_on_reuse() {
        let budget = MemoryBudget::limited(8 * 16);
        let mut m = Memory::with_budget(budget.clone());
        let a = m.try_alloc_buffer(10).unwrap();
        assert_eq!(m.live_bytes(), 80);
        assert_eq!(budget.used(), 80);
        // Over-budget allocation fails cleanly and leaves the arena intact.
        let err = m.try_alloc_buffer(7).unwrap_err();
        assert!(err.diagnostics[0].render().contains("E0805"), "{err}");
        assert_eq!(m.live_bytes(), 80);
        assert_eq!(budget.used(), 80);
        // Release returns the bytes; reuse of the freed storage re-charges.
        m.release_buffer(a);
        assert_eq!(m.live_bytes(), 0);
        assert_eq!(budget.used(), 0);
        let b = m.try_alloc_buffer(10).unwrap();
        assert_eq!(b, a, "same-size allocation reuses the freed storage");
        assert_eq!(m.live_bytes(), 80);
        assert_eq!(m.peak_bytes(), 80, "peak never exceeded one live buffer");
        // Double release is idempotent.
        m.release_buffer(b);
        m.release_buffer(b);
        assert_eq!(m.live_bytes(), 0);
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn ungoverned_memory_still_tracks_live_and_peak() {
        let mut m = Memory::new();
        let a = m.alloc_buffer(4);
        let _b = m.alloc_buffer(8);
        assert_eq!(m.live_bytes(), 96);
        assert_eq!(m.peak_bytes(), 96);
        m.release_buffer(a);
        assert_eq!(m.live_bytes(), 64);
        assert_eq!(m.peak_bytes(), 96, "peak is monotone");
    }

    #[test]
    fn checked_strides_reject_overflow_with_coded_diagnostic() {
        assert_eq!(
            checked_column_major_strides(&[4, 5, 6]).unwrap(),
            vec![1, 4, 20]
        );
        let err = checked_column_major_strides(&[i64::MAX, i64::MAX]).unwrap_err();
        assert!(err.diagnostics[0].render().contains("E0807"), "{err}");
    }

    #[test]
    fn buffer_pair_mut_both_orders() {
        let mut m = Memory::new();
        let a = m.alloc_buffer(4);
        let b = m.alloc_buffer(4);
        m.buffer_mut(a)[0] = 9.0;
        {
            let (src, dst) = m.buffer_pair_mut(a, b);
            dst[0] = src[0];
        }
        assert_eq!(m.buffer(b)[0], 9.0);
        m.buffer_mut(b)[1] = 5.0;
        {
            let (src, dst) = m.buffer_pair_mut(b, a);
            dst[1] = src[1];
        }
        assert_eq!(m.buffer(a)[1], 5.0);
    }
}
