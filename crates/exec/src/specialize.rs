//! Kernel specialization: native fast-path loops and superinstruction
//! fusion over [`BodyProgram`] bytecode.
//!
//! The register VM in `bytecode.rs` pays one dispatch per instruction per
//! strip. That floor is shared by the "Flang only" naive tier and the
//! optimised tier, which compresses the measured speed ratio between them
//! (DESIGN.md §2). This module removes the floor from the optimised tier in
//! two steps, mirroring how a mature MLIR lowering emits *specialised* code
//! instead of interpreting generic IR:
//!
//! 1. [`specialize_program`] pattern-matches the dominant stencil body
//!    shapes — affine sums of constant-offset loads (the 7-point
//!    Gauss–Seidel update), plain copies, linear combinations, and the
//!    fused three-field Piacsek–Williams advection bodies — and compiles
//!    each store into a [`SpecBody`] executed by a direct native Rust loop
//!    over the unit-stride dimension: zero per-instruction dispatch,
//!    auto-vectorisable by rustc.
//! 2. [`fuse_program`] rewrites bodies that do *not* match a template into
//!    superinstructions ([`Instr::MulAdd`], [`Instr::BinLoad`]), shedding
//!    one dispatch per fused pair while keeping the VM fully general.
//!
//! Both transformations are **bit-exact**: they preserve the evaluation
//! order and rounding of every floating-point operation the generic
//! program performs. `MulAdd` is two roundings (`(a*b)+c`), *not* a
//! hardware FMA; templates reproduce the exact association of the source
//! expression (left-folded chains, `A*(B+C) - D*(E+F)` groups). The
//! differential tests in `tests/property.rs` force all three paths over
//! random stencils and compare results with `==`.

use crate::bytecode::{BinKind, BodyProgram, Instr, MaKind};

/// Which executor a compiled nest runs through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExecPath {
    /// Native specialized loop (no bytecode dispatch at all).
    Specialized,
    /// Template-stitched row program: pre-monomorphized fragments with no
    /// per-instruction dispatch inside the unit-stride loop (`jit.rs`).
    Jit,
    /// Vector VM over the superinstruction-fused program.
    FusedVm,
    /// Vector VM over the original instruction-per-op program.
    GenericVm,
}

impl ExecPath {
    /// Parse the stable lowercase names used by `Display` and the
    /// `FSC_FORCE_EXEC_PATH`-style overrides at binary boundaries.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "specialized" => Some(ExecPath::Specialized),
            "jit" => Some(ExecPath::Jit),
            "fused-vm" => Some(ExecPath::FusedVm),
            "generic-vm" => Some(ExecPath::GenericVm),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExecPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExecPath::Specialized => "specialized",
            ExecPath::Jit => "jit",
            ExecPath::FusedVm => "fused-vm",
            ExecPath::GenericVm => "generic-vm",
        })
    }
}

/// A coefficient operand: immediate or scalar kernel argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Coeff {
    /// Compile-time constant.
    Const(f64),
    /// Scalar argument slot.
    Arg(u16),
}

impl Coeff {
    #[inline]
    fn value(self, scalars: &[f64]) -> f64 {
        match self {
            Coeff::Const(v) => v,
            Coeff::Arg(slot) => scalars[slot as usize],
        }
    }
}

/// A constant-offset array access (load target or store destination).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// View index.
    pub view: u16,
    /// Relative linear offset from the view cursor.
    pub off: i64,
}

/// How a [`SpecBody::ScaledSum`] applies its scale factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scale {
    /// No scaling: the bare sum.
    None,
    /// `c * sum` (coefficient on the left).
    MulLeft(Coeff),
    /// `sum * c`.
    MulRight(Coeff),
    /// `sum / c` — the Gauss–Seidel `/ 6.0`.
    DivRight(Coeff),
}

/// One term of a [`SpecBody::LinComb`]: `[±] [c *] load`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinTerm {
    /// Term enters the left-folded chain via subtraction.
    pub negate: bool,
    /// Optional coefficient and whether it is the left multiplicand.
    pub coeff: Option<(Coeff, bool)>,
    /// The load.
    pub load: Access,
}

/// One horizontal component of a Piacsek–Williams advection store:
/// `coeff * (a*(b+c) - d*(e+f))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PwComponent {
    /// Directional coefficient (`tcx`/`tcy`).
    pub coeff: Coeff,
    /// The six loads, in source order.
    pub a: Access,
    /// See `a`.
    pub b: Access,
    /// See `a`.
    pub c: Access,
    /// See `a`.
    pub d: Access,
    /// See `a`.
    pub e: Access,
    /// See `a`.
    pub f: Access,
}

/// One vertical edge term of a Piacsek–Williams advection store:
/// `(coeff * w) * (b + c)`. MONC applies separate coefficients to the
/// up- and down-flux terms, so the vertical direction does not share the
/// factored [`PwComponent`] shape of the horizontal ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PwEdge {
    /// Vertical coefficient (`tzc1`/`tzc2`).
    pub coeff: Coeff,
    /// The advecting vertical-velocity load.
    pub w: Access,
    /// First summand of the advected pair.
    pub b: Access,
    /// Second summand of the advected pair.
    pub c: Access,
}

/// One specialized store: a native-loop realisation of `out[i] = expr(i)`
/// that reproduces the generic program's rounding order exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecBody {
    /// `out[i] = src[i]` — interior copy sweeps.
    Copy {
        /// Store destination.
        out: Access,
        /// Load source.
        src: Access,
    },
    /// `out[i] = scale(((l0 + l1) + l2) ... + lk)` — neighbour averages
    /// such as the 7-point Gauss–Seidel update and Listing 1.
    ScaledSum {
        /// Store destination.
        out: Access,
        /// Loads in left-folded source order (at least two).
        loads: Vec<Access>,
        /// Scale application.
        scale: Scale,
    },
    /// `out[i] = t0 ± t1 ± ... ± tk`, left-folded, each term `[c *] load`.
    LinComb {
        /// Store destination.
        out: Access,
        /// Terms in source order; the first never negates.
        terms: Vec<LinTerm>,
    },
    /// `out[i] = ((cx*gx + cy*gy) + (c1*w1)*(s1)) - (c2*w2)*(s2)` with
    /// `g = a*(b+c) - d*(e+f)` and `s = b + c` — one field of the fused PW
    /// advection body, vertical direction in MONC's split-coefficient form.
    PwAdvect {
        /// Store destination.
        out: Access,
        /// The two horizontal components (x then y) in source order.
        flux: Box<[PwComponent; 2]>,
        /// The vertical up-flux edge (enters by addition).
        up: PwEdge,
        /// The vertical down-flux edge (enters by subtraction).
        down: PwEdge,
    },
}

/// A fully specialized nest body: every store lowered to a native loop.
///
/// Stores execute as separate loops over each unit-stride row (loop
/// fission). This is bit-exact because specialization statically rejects
/// bodies whose loads touch a stored view — within a nest, inputs and
/// outputs are disjoint buffers (the snapshot mechanism guarantees it for
/// in-place stencils), so per-cell interleaving and per-store fission
/// produce identical values.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecProgram {
    /// One entry per `Store` of the source program, in program order.
    pub stores: Vec<SpecBody>,
}

// --------------------------------------------------------------------------
// Expression extraction
// --------------------------------------------------------------------------

/// A small expression tree rebuilt from the straight-line SSA bytecode.
#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Const(f64),
    Arg(u16),
    Load(Access),
    Bin(BinKind, Box<Expr>, Box<Expr>),
}

impl Expr {
    fn size(&self) -> usize {
        match self {
            Expr::Bin(_, a, b) => 1 + a.size() + b.size(),
            _ => 1,
        }
    }
}

/// Rebuild per-store expression trees from a (generic) body program.
/// Returns `(store_access, expr)` pairs in program order, or `None` when
/// the program contains instructions outside the Const/Arg/Load/Bin/Store
/// subset the templates understand.
fn extract_store_trees(p: &BodyProgram) -> Option<Vec<(Access, Expr)>> {
    let mut defs: Vec<Option<Expr>> = vec![None; p.num_regs.max(1) as usize];
    let mut stores = Vec::new();
    for instr in &p.instrs {
        match *instr {
            Instr::Const { dst, val } => defs[dst as usize] = Some(Expr::Const(val)),
            Instr::Arg { dst, arg } => defs[dst as usize] = Some(Expr::Arg(arg)),
            Instr::Load { dst, view, off } => {
                defs[dst as usize] = Some(Expr::Load(Access { view, off }));
            }
            Instr::Bin { dst, kind, a, b } => {
                let ea = defs[a as usize].clone()?;
                let eb = defs[b as usize].clone()?;
                let e = Expr::Bin(kind, Box::new(ea), Box::new(eb));
                // Shared subtrees duplicate on use; cap the tree size so a
                // pathological reuse chain cannot blow up compilation.
                if e.size() > 256 {
                    return None;
                }
                defs[dst as usize] = Some(e);
            }
            Instr::Store { view, off, src } => {
                let e = defs[src as usize].clone()?;
                stores.push((Access { view, off }, e));
            }
            // Coord / Un / Cmp / Select / superinstructions: the templates
            // cannot reproduce these orders natively.
            _ => return None,
        }
    }
    if stores.is_empty() {
        return None;
    }
    Some(stores)
}

// --------------------------------------------------------------------------
// Template matching
// --------------------------------------------------------------------------

fn as_coeff(e: &Expr) -> Option<Coeff> {
    match *e {
        Expr::Const(v) => Some(Coeff::Const(v)),
        Expr::Arg(slot) => Some(Coeff::Arg(slot)),
        _ => None,
    }
}

fn as_load(e: &Expr) -> Option<Access> {
    match *e {
        Expr::Load(a) => Some(a),
        _ => None,
    }
}

/// Collect a left-folded addition chain of loads: `((l0+l1)+l2)...`.
fn collect_add_chain(e: &Expr, out: &mut Vec<Access>) -> bool {
    match e {
        Expr::Load(a) => {
            out.push(*a);
            true
        }
        Expr::Bin(BinKind::Add, l, r) => {
            if !collect_add_chain(l, out) {
                return false;
            }
            match as_load(r) {
                Some(a) => {
                    out.push(a);
                    true
                }
                None => false,
            }
        }
        _ => false,
    }
}

fn match_scaled_sum(out: Access, e: &Expr) -> Option<SpecBody> {
    let (scale, sum) = match e {
        Expr::Bin(BinKind::Mul, l, r) => {
            if let Some(c) = as_coeff(l) {
                (Scale::MulLeft(c), &**r)
            } else if let Some(c) = as_coeff(r) {
                (Scale::MulRight(c), &**l)
            } else {
                return None;
            }
        }
        Expr::Bin(BinKind::Div, l, r) => (Scale::DivRight(as_coeff(r)?), &**l),
        _ => (Scale::None, e),
    };
    let mut loads = Vec::new();
    if !collect_add_chain(sum, &mut loads) || loads.len() < 2 {
        return None;
    }
    Some(SpecBody::ScaledSum { out, loads, scale })
}

fn match_lin_term(e: &Expr) -> Option<LinTerm> {
    if let Some(load) = as_load(e) {
        return Some(LinTerm {
            negate: false,
            coeff: None,
            load,
        });
    }
    if let Expr::Bin(BinKind::Mul, l, r) = e {
        if let (Some(c), Some(load)) = (as_coeff(l), as_load(r)) {
            return Some(LinTerm {
                negate: false,
                coeff: Some((c, true)),
                load,
            });
        }
        if let (Some(load), Some(c)) = (as_load(l), as_coeff(r)) {
            return Some(LinTerm {
                negate: false,
                coeff: Some((c, false)),
                load,
            });
        }
    }
    None
}

/// Collect a left-folded `t0 ± t1 ± …` chain of linear terms.
fn collect_lin_chain(e: &Expr, out: &mut Vec<LinTerm>) -> bool {
    match e {
        Expr::Bin(kind @ (BinKind::Add | BinKind::Sub), l, r) => {
            // Right operand must itself be a term; left recurses.
            if let Some(mut t) = match_lin_term(r) {
                if !collect_lin_chain(l, out) {
                    return false;
                }
                t.negate = *kind == BinKind::Sub;
                out.push(t);
                true
            } else {
                false
            }
        }
        _ => match match_lin_term(e) {
            Some(t) => {
                out.push(t);
                true
            }
            None => false,
        },
    }
}

fn match_lincomb(out: Access, e: &Expr) -> Option<SpecBody> {
    let mut terms = Vec::new();
    if !collect_lin_chain(e, &mut terms) || terms.is_empty() {
        return None;
    }
    Some(SpecBody::LinComb { out, terms })
}

/// Matches `a*(b+c) - d*(e+f)` — one PW flux-difference group.
fn match_pw_group(e: &Expr) -> Option<(Access, Access, Access, Access, Access, Access)> {
    let Expr::Bin(BinKind::Sub, l, r) = e else {
        return None;
    };
    let mul = |m: &Expr| -> Option<(Access, Access, Access)> {
        let Expr::Bin(BinKind::Mul, x, s) = m else {
            return None;
        };
        let Expr::Bin(BinKind::Add, p, q) = &**s else {
            return None;
        };
        Some((as_load(x)?, as_load(p)?, as_load(q)?))
    };
    let (a, b, c) = mul(l)?;
    let (d, e2, f) = mul(r)?;
    Some((a, b, c, d, e2, f))
}

/// Matches `coeff * group`.
fn match_pw_component(e: &Expr) -> Option<PwComponent> {
    let Expr::Bin(BinKind::Mul, l, r) = e else {
        return None;
    };
    let coeff = as_coeff(l)?;
    let (a, b, c, d, e2, f) = match_pw_group(r)?;
    Some(PwComponent {
        coeff,
        a,
        b,
        c,
        d,
        e: e2,
        f,
    })
}

/// Matches `(coeff * w) * (b + c)` — one vertical edge term. The inner
/// `coeff * w` association comes from Fortran's left-to-right parse of
/// `tzc1 * w(i, j, k) * (... + ...)`.
fn match_pw_edge(e: &Expr) -> Option<PwEdge> {
    let Expr::Bin(BinKind::Mul, l, r) = e else {
        return None;
    };
    let Expr::Bin(BinKind::Mul, cl, wl) = &**l else {
        return None;
    };
    let coeff = as_coeff(cl)?;
    let w = as_load(wl)?;
    let Expr::Bin(BinKind::Add, b, c) = &**r else {
        return None;
    };
    Some(PwEdge {
        coeff,
        w,
        b: as_load(b)?,
        c: as_load(c)?,
    })
}

fn match_pw_advect(out: Access, e: &Expr) -> Option<SpecBody> {
    // ((cx*gx + cy*gy) + up) - down, left-folded.
    let Expr::Bin(BinKind::Sub, l, r) = e else {
        return None;
    };
    let down = match_pw_edge(r)?;
    let Expr::Bin(BinKind::Add, hl, ue) = &**l else {
        return None;
    };
    let up = match_pw_edge(ue)?;
    let Expr::Bin(BinKind::Add, fx, fy) = &**hl else {
        return None;
    };
    let fx = match_pw_component(fx)?;
    let fy = match_pw_component(fy)?;
    Some(SpecBody::PwAdvect {
        out,
        flux: Box::new([fx, fy]),
        up,
        down,
    })
}

fn match_store(out: Access, e: &Expr) -> Option<SpecBody> {
    if let Some(src) = as_load(e) {
        return Some(SpecBody::Copy { out, src });
    }
    // Most specific first: the PW shape also parses as nothing else, but
    // ScaledSum would reject it anyway; LinComb is the catch-all.
    match_pw_advect(out, e)
        .or_else(|| match_scaled_sum(out, e))
        .or_else(|| match_lincomb(out, e))
}

/// Try to lower a body program to native specialized loops. Returns `None`
/// when any store fails to match a template, when the program has
/// non-arithmetic instructions, or when a load touches a stored view
/// (which would make store fission observable).
pub fn specialize_program(p: &BodyProgram) -> Option<SpecProgram> {
    let trees = extract_store_trees(p)?;
    let stored_views: Vec<u16> = trees.iter().map(|(a, _)| a.view).collect();
    let mut stores = Vec::with_capacity(trees.len());
    for (out, expr) in &trees {
        let body = match_store(*out, expr)?;
        // Reject load/store view overlap: the runners give output views
        // empty input slices, so such a program could not run anyway.
        let loads_ok = body_loads(&body)
            .iter()
            .all(|l| !stored_views.contains(&l.view));
        if !loads_ok {
            return None;
        }
        stores.push(body);
    }
    Some(SpecProgram { stores })
}

fn body_loads(b: &SpecBody) -> Vec<Access> {
    match b {
        SpecBody::Copy { src, .. } => vec![*src],
        SpecBody::ScaledSum { loads, .. } => loads.clone(),
        SpecBody::LinComb { terms, .. } => terms.iter().map(|t| t.load).collect(),
        SpecBody::PwAdvect { flux, up, down, .. } => flux
            .iter()
            .flat_map(|c| [c.a, c.b, c.c, c.d, c.e, c.f])
            .chain([up, down].into_iter().flat_map(|e| [e.w, e.b, e.c]))
            .collect(),
    }
}

// --------------------------------------------------------------------------
// Native execution
// --------------------------------------------------------------------------

/// Resolve an access to `(slice, base)` against the current cursors.
#[inline]
fn resolve<'a>(inputs: &[&'a [f64]], cursors: &[i64], a: Access) -> (&'a [f64], usize) {
    (
        inputs[a.view as usize],
        (cursors[a.view as usize] + a.off) as usize,
    )
}

/// Sum `K` unit-stride sources left-to-right with a final scale — the
/// monomorphised hot loop behind [`SpecBody::ScaledSum`]. `K` is a
/// compile-time constant so rustc fully unrolls the inner accumulation and
/// vectorises the row loop.
#[inline]
fn scaled_sum_row<const K: usize>(
    out: &mut [f64],
    srcs: &[(&[f64], usize)],
    scale: Scale,
    scalars: &[f64],
) {
    let w = out.len();
    let mut s: [(&[f64], usize); K] = [(&[][..], 0); K];
    s.copy_from_slice(&srcs[..K]);
    // Pre-slice each source to the row so the inner loop indexes without
    // bounds checks LLVM cannot elide.
    let rows: [&[f64]; K] = std::array::from_fn(|t| &s[t].0[s[t].1..s[t].1 + w]);
    match scale {
        Scale::None => {
            for x in 0..w {
                let mut acc = rows[0][x];
                for row in rows.iter().skip(1) {
                    acc += row[x];
                }
                out[x] = acc;
            }
        }
        Scale::MulLeft(c) => {
            let cv = c.value(scalars);
            for x in 0..w {
                let mut acc = rows[0][x];
                for row in rows.iter().skip(1) {
                    acc += row[x];
                }
                out[x] = cv * acc;
            }
        }
        Scale::MulRight(c) => {
            let cv = c.value(scalars);
            for x in 0..w {
                let mut acc = rows[0][x];
                for row in rows.iter().skip(1) {
                    acc += row[x];
                }
                out[x] = acc * cv;
            }
        }
        Scale::DivRight(c) => {
            let cv = c.value(scalars);
            for x in 0..w {
                let mut acc = rows[0][x];
                for row in rows.iter().skip(1) {
                    acc += row[x];
                }
                out[x] = acc / cv;
            }
        }
    }
}

/// [`scaled_sum_row`] unrolled by 4: four output cells per iteration, each
/// with its *own* left-folded accumulator chain. Per-cell rounding order is
/// exactly the unit-stride loop's, so results stay bit-identical; the four
/// independent chains overlap in the pipeline, which matters most for the
/// serial divide chain of `Scale::DivRight` (the Gauss–Seidel kernel).
#[inline]
fn scaled_sum_row_x4<const K: usize>(
    out: &mut [f64],
    srcs: &[(&[f64], usize)],
    scale: Scale,
    scalars: &[f64],
) {
    let w = out.len();
    let mut s: [(&[f64], usize); K] = [(&[][..], 0); K];
    s.copy_from_slice(&srcs[..K]);
    let rows: [&[f64]; K] = std::array::from_fn(|t| &s[t].0[s[t].1..s[t].1 + w]);
    let sum_at = |x: usize| -> f64 {
        let mut acc = rows[0][x];
        for row in rows.iter().skip(1) {
            acc += row[x];
        }
        acc
    };
    let cv = match scale {
        Scale::None => 0.0,
        Scale::MulLeft(c) | Scale::MulRight(c) | Scale::DivRight(c) => c.value(scalars),
    };
    let finish = |acc: f64| -> f64 {
        match scale {
            Scale::None => acc,
            Scale::MulLeft(_) => cv * acc,
            Scale::MulRight(_) => acc * cv,
            Scale::DivRight(_) => acc / cv,
        }
    };
    let mut x = 0;
    while x + 4 <= w {
        let a0 = finish(sum_at(x));
        let a1 = finish(sum_at(x + 1));
        let a2 = finish(sum_at(x + 2));
        let a3 = finish(sum_at(x + 3));
        out[x] = a0;
        out[x + 1] = a1;
        out[x + 2] = a2;
        out[x + 3] = a3;
        x += 4;
    }
    while x < w {
        out[x] = finish(sum_at(x));
        x += 1;
    }
}

/// Dispatch a monomorphised arity to the straight or unrolled row loop.
#[inline]
fn scaled_sum_dispatch<const K: usize>(
    unroll4: bool,
    out: &mut [f64],
    srcs: &[(&[f64], usize)],
    scale: Scale,
    scalars: &[f64],
) {
    if unroll4 {
        scaled_sum_row_x4::<K>(out, srcs, scale, scalars);
    } else {
        scaled_sum_row::<K>(out, srcs, scale, scalars);
    }
}

/// Execute one specialized store over `w` consecutive unit-stride cells.
///
/// `cursors` address cell 0 of the row exactly as for the VM paths;
/// `outputs`/`out_view_map` follow the same slot convention. `unroll` is
/// the plan's inner-loop unroll factor (≥4 selects the unrolled
/// `ScaledSum` loop; `Copy`/`LinComb`/`PwAdvect` bodies ignore it).
#[allow(clippy::too_many_arguments)]
pub fn run_spec_row(
    body: &SpecBody,
    inputs: &[&[f64]],
    outputs: &mut [&mut [f64]],
    out_view_map: &[Option<u16>],
    cursors: &[i64],
    scalars: &[f64],
    w: usize,
    unroll: u8,
) {
    let out_access = match body {
        SpecBody::Copy { out, .. }
        | SpecBody::ScaledSum { out, .. }
        | SpecBody::LinComb { out, .. }
        | SpecBody::PwAdvect { out, .. } => *out,
    };
    let slot = out_view_map[out_access.view as usize]
        .expect("specialized store to a view that is not an output") as usize;
    let base = (cursors[out_access.view as usize] + out_access.off) as usize;
    let out = &mut outputs[slot][base..base + w];

    match body {
        SpecBody::Copy { src, .. } => {
            let (s, sb) = resolve(inputs, cursors, *src);
            out.copy_from_slice(&s[sb..sb + w]);
        }
        SpecBody::ScaledSum { loads, scale, .. } => {
            let srcs: Vec<(&[f64], usize)> =
                loads.iter().map(|&l| resolve(inputs, cursors, l)).collect();
            // Monomorphise the common arities (4 = Listing 1, 6 = GS).
            let u4 = unroll >= 4;
            match srcs.len() {
                2 => scaled_sum_dispatch::<2>(u4, out, &srcs, *scale, scalars),
                3 => scaled_sum_dispatch::<3>(u4, out, &srcs, *scale, scalars),
                4 => scaled_sum_dispatch::<4>(u4, out, &srcs, *scale, scalars),
                5 => scaled_sum_dispatch::<5>(u4, out, &srcs, *scale, scalars),
                6 => scaled_sum_dispatch::<6>(u4, out, &srcs, *scale, scalars),
                7 => scaled_sum_dispatch::<7>(u4, out, &srcs, *scale, scalars),
                8 => scaled_sum_dispatch::<8>(u4, out, &srcs, *scale, scalars),
                _ => {
                    // Dynamic arity: same order, plain loop.
                    let cv = |c: &Coeff| c.value(scalars);
                    for x in 0..w {
                        let mut acc = srcs[0].0[srcs[0].1 + x];
                        for (s, b) in &srcs[1..] {
                            acc += s[b + x];
                        }
                        out[x] = match scale {
                            Scale::None => acc,
                            Scale::MulLeft(c) => cv(c) * acc,
                            Scale::MulRight(c) => acc * cv(c),
                            Scale::DivRight(c) => acc / cv(c),
                        };
                    }
                }
            }
        }
        SpecBody::LinComb { terms, .. } => {
            // Resolve terms once per row: (negate, coeff, row slice).
            struct RTerm<'a> {
                negate: bool,
                coeff: Option<(f64, bool)>,
                row: &'a [f64],
            }
            let rts: Vec<RTerm> = terms
                .iter()
                .map(|t| {
                    let (s, b) = resolve(inputs, cursors, t.load);
                    RTerm {
                        negate: t.negate,
                        coeff: t.coeff.map(|(c, left)| (c.value(scalars), left)),
                        row: &s[b..b + w],
                    }
                })
                .collect();
            for (x, o) in out.iter_mut().enumerate() {
                let term_val = |t: &RTerm| -> f64 {
                    let l = t.row[x];
                    match t.coeff {
                        None => l,
                        Some((c, true)) => c * l,
                        Some((c, false)) => l * c,
                    }
                };
                let mut acc = term_val(&rts[0]);
                for t in &rts[1..] {
                    let v = term_val(t);
                    acc = if t.negate { acc - v } else { acc + v };
                }
                *o = acc;
            }
        }
        SpecBody::PwAdvect { flux, up, down, .. } => {
            let c0 = flux[0].coeff.value(scalars);
            let c1 = flux[1].coeff.value(scalars);
            let cu = up.coeff.value(scalars);
            let cd = down.coeff.value(scalars);
            let row = |a: Access| -> &[f64] {
                let (s, b) = resolve(inputs, cursors, a);
                &s[b..b + w]
            };
            let [g0, g1] = [&flux[0], &flux[1]]
                .map(|g| [row(g.a), row(g.b), row(g.c), row(g.d), row(g.e), row(g.f)]);
            let [eu, ed] = [up, down].map(|e| [row(e.w), row(e.b), row(e.c)]);
            for x in 0..w {
                let f0 = g0[0][x] * (g0[1][x] + g0[2][x]) - g0[3][x] * (g0[4][x] + g0[5][x]);
                let f1 = g1[0][x] * (g1[1][x] + g1[2][x]) - g1[3][x] * (g1[4][x] + g1[5][x]);
                let fu = (cu * eu[0][x]) * (eu[1][x] + eu[2][x]);
                let fd = (cd * ed[0][x]) * (ed[1][x] + ed[2][x]);
                out[x] = ((c0 * f0 + c1 * f1) + fu) - fd;
            }
        }
    }
}

// --------------------------------------------------------------------------
// Superinstruction fusion (the FusedVm fallback)
// --------------------------------------------------------------------------

/// Rewrite a body program with superinstructions:
///
/// * `Mul` whose single consumer is an `Add`/`Sub` fuses into
///   [`Instr::MulAdd`] (two roundings — bit-identical to the unfused pair);
/// * a single-use `Load` feeding a binary op folds into
///   [`Instr::BinLoad`], eliminating the register-strip copy.
///
/// Op counts (`flops/loads/stores_per_cell`) are preserved exactly;
/// `debug_assert`ed below.
pub fn fuse_program(p: &BodyProgram) -> BodyProgram {
    let mut fused = p.clone();
    fuse_mul_add(&mut fused.instrs);
    fold_loads(&mut fused.instrs);
    let (f0, l0, s0) = (p.flops_per_cell, p.loads_per_cell, p.stores_per_cell);
    fused.finalize_stats();
    debug_assert_eq!(
        (
            fused.flops_per_cell,
            fused.loads_per_cell,
            fused.stores_per_cell
        ),
        (f0, l0, s0),
        "superinstruction fusion must preserve op counts"
    );
    fused
}

/// Count register uses across all instructions.
fn use_counts(instrs: &[Instr]) -> Vec<u32> {
    let mut counts = Vec::new();
    let mut bump = |r: u16| {
        let i = r as usize;
        if counts.len() <= i {
            counts.resize(i + 1, 0u32);
        }
        counts[i] += 1;
    };
    for instr in instrs {
        match *instr {
            Instr::Bin { a, b, .. } | Instr::Cmp { a, b, .. } => {
                bump(a);
                bump(b);
            }
            Instr::Un { a, .. } => bump(a),
            Instr::Select { c, a, b, .. } => {
                bump(c);
                bump(a);
                bump(b);
            }
            Instr::Store { src, .. } => bump(src),
            Instr::MulAdd { a, b, c, .. } => {
                bump(a);
                bump(b);
                bump(c);
            }
            Instr::BinLoad { a, .. } => bump(a),
            Instr::Const { .. } | Instr::Arg { .. } | Instr::Load { .. } | Instr::Coord { .. } => {}
        }
    }
    counts
}

fn fuse_mul_add(instrs: &mut Vec<Instr>) {
    let uses = use_counts(instrs);
    let single_use = |r: u16| uses.get(r as usize).copied().unwrap_or(0) == 1;
    // Map: destination register of a fusable (single-use) Mul -> (a, b).
    let mut pending: std::collections::HashMap<u16, (u16, u16)> = std::collections::HashMap::new();
    let mut consumed: std::collections::HashSet<u16> = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(instrs.len());
    for instr in instrs.drain(..) {
        match instr {
            Instr::Bin {
                dst,
                kind: BinKind::Mul,
                a,
                b,
            } if single_use(dst) => {
                pending.insert(dst, (a, b));
                out.push(Instr::Bin {
                    dst,
                    kind: BinKind::Mul,
                    a,
                    b,
                });
            }
            Instr::Bin {
                dst,
                kind: kind @ (BinKind::Add | BinKind::Sub),
                a,
                b,
            } => {
                // Prefer fusing the right operand (matches `x + c*l`
                // chains); fall back to the left.
                let fused = if let Some(&(ma, mb)) = pending.get(&b) {
                    consumed.insert(b);
                    let kind = if kind == BinKind::Add {
                        // x + (a*b): addition is commutative bitwise.
                        MaKind::CPlusMul
                    } else {
                        MaKind::CMinusMul
                    };
                    Some(Instr::MulAdd {
                        dst,
                        a: ma,
                        b: mb,
                        c: a,
                        kind,
                    })
                } else if let Some(&(ma, mb)) = pending.get(&a) {
                    consumed.insert(a);
                    let kind = if kind == BinKind::Add {
                        MaKind::CPlusMul
                    } else {
                        // (a*b) - x.
                        MaKind::MulMinusC
                    };
                    Some(Instr::MulAdd {
                        dst,
                        a: ma,
                        b: mb,
                        c: b,
                        kind,
                    })
                } else {
                    None
                };
                match fused {
                    Some(i) => out.push(i),
                    None => out.push(Instr::Bin { dst, kind, a, b }),
                }
                // A MulAdd result may itself be a fusable Mul's consumer
                // chain target, but dst here is not a Mul: nothing to add.
            }
            other => out.push(other),
        }
    }
    // Drop the Mul definitions that were fused into their consumers.
    out.retain(
        |i| !matches!(i, Instr::Bin { dst, kind: BinKind::Mul, .. } if consumed.contains(dst)),
    );
    *instrs = out;
}

fn fold_loads(instrs: &mut Vec<Instr>) {
    let uses = use_counts(instrs);
    let single_use = |r: u16| uses.get(r as usize).copied().unwrap_or(0) == 1;
    // Map: destination register of a foldable (single-use) Load -> access.
    let mut pending: std::collections::HashMap<u16, (u16, i64)> = std::collections::HashMap::new();
    let mut consumed: std::collections::HashSet<u16> = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(instrs.len());
    for instr in instrs.drain(..) {
        match instr {
            Instr::Load { dst, view, off } if single_use(dst) => {
                pending.insert(dst, (view, off));
                out.push(Instr::Load { dst, view, off });
            }
            Instr::Bin { dst, kind, a, b } => {
                let fused = if let Some(&(view, off)) = pending.get(&b) {
                    consumed.insert(b);
                    Some(Instr::BinLoad {
                        dst,
                        kind,
                        a,
                        view,
                        off,
                        load_left: false,
                    })
                } else if let Some(&(view, off)) = pending.get(&a) {
                    consumed.insert(a);
                    Some(Instr::BinLoad {
                        dst,
                        kind,
                        a: b,
                        view,
                        off,
                        load_left: true,
                    })
                } else {
                    None
                };
                match fused {
                    Some(i) => out.push(i),
                    None => out.push(Instr::Bin { dst, kind, a, b }),
                }
            }
            other => out.push(other),
        }
    }
    out.retain(|i| !matches!(i, Instr::Load { dst, .. } if consumed.contains(dst)));
    *instrs = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{BinKind, BodyProgram, Instr};

    /// Bytecode for `out = (l(-1) + l(1)) / 6.0` plus a copy store.
    fn gs_like_program() -> BodyProgram {
        let mut p = BodyProgram {
            instrs: vec![
                Instr::Const { dst: 0, val: 6.0 },
                Instr::Load {
                    dst: 1,
                    view: 0,
                    off: -1,
                },
                Instr::Load {
                    dst: 2,
                    view: 0,
                    off: 1,
                },
                Instr::Bin {
                    dst: 3,
                    kind: BinKind::Add,
                    a: 1,
                    b: 2,
                },
                Instr::Bin {
                    dst: 4,
                    kind: BinKind::Div,
                    a: 3,
                    b: 0,
                },
                Instr::Store {
                    view: 1,
                    off: 0,
                    src: 4,
                },
            ],
            num_regs: 5,
            ..Default::default()
        };
        p.finalize_stats();
        p.hoist_invariants();
        p
    }

    #[test]
    fn recognises_scaled_sum() {
        let spec = specialize_program(&gs_like_program()).expect("specializable");
        assert_eq!(spec.stores.len(), 1);
        let SpecBody::ScaledSum { loads, scale, .. } = &spec.stores[0] else {
            panic!("expected ScaledSum, got {:?}", spec.stores[0]);
        };
        assert_eq!(loads.len(), 2);
        assert_eq!(*scale, Scale::DivRight(Coeff::Const(6.0)));
    }

    #[test]
    fn rejects_coord_bodies() {
        let mut p = BodyProgram {
            instrs: vec![
                Instr::Coord { dst: 0, dim: 0 },
                Instr::Store {
                    view: 0,
                    off: 0,
                    src: 0,
                },
            ],
            num_regs: 1,
            ..Default::default()
        };
        p.finalize_stats();
        assert!(specialize_program(&p).is_none());
    }

    #[test]
    fn specialized_row_matches_vm() {
        let p = gs_like_program();
        let spec = specialize_program(&p).unwrap();
        let input: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).sin()).collect();
        let w = 16usize;

        // VM (strip) execution.
        let mut vm_out = vec![0.0; 20];
        {
            let inputs: Vec<&[f64]> = vec![&input, &[]];
            let mut outs: Vec<&mut [f64]> = vec![&mut vm_out];
            let mut regs = vec![0.0; p.num_regs as usize * w];
            p.run_prelude_strip(&mut regs, w, &[]);
            p.run_strip(
                &mut regs,
                w,
                &inputs,
                &mut outs,
                &[None, Some(0)],
                &[2, 2],
                2,
                &[2],
                &[],
            );
        }
        // Native specialized execution.
        let mut spec_out = vec![0.0; 20];
        {
            let inputs: Vec<&[f64]> = vec![&input, &[]];
            let mut outs: Vec<&mut [f64]> = vec![&mut spec_out];
            for body in &spec.stores {
                run_spec_row(
                    body,
                    &inputs,
                    &mut outs,
                    &[None, Some(0)],
                    &[2, 2],
                    &[],
                    w,
                    1,
                );
            }
        }
        assert_eq!(
            vm_out, spec_out,
            "specialized row must match the VM bitwise"
        );
    }

    #[test]
    fn fusion_preserves_op_counts_and_values() {
        // out = 0.25*l(-1) + 0.5*l(0) - 0.125*l(1) — muls fuse into MulAdd,
        // remaining loads fold into BinLoad.
        let mut p = BodyProgram {
            instrs: vec![
                Instr::Const { dst: 0, val: 0.25 },
                Instr::Const { dst: 1, val: 0.5 },
                Instr::Const { dst: 2, val: 0.125 },
                Instr::Load {
                    dst: 3,
                    view: 0,
                    off: -1,
                },
                Instr::Load {
                    dst: 4,
                    view: 0,
                    off: 0,
                },
                Instr::Load {
                    dst: 5,
                    view: 0,
                    off: 1,
                },
                Instr::Bin {
                    dst: 6,
                    kind: BinKind::Mul,
                    a: 0,
                    b: 3,
                },
                Instr::Bin {
                    dst: 7,
                    kind: BinKind::Mul,
                    a: 1,
                    b: 4,
                },
                Instr::Bin {
                    dst: 8,
                    kind: BinKind::Add,
                    a: 6,
                    b: 7,
                },
                Instr::Bin {
                    dst: 9,
                    kind: BinKind::Mul,
                    a: 2,
                    b: 5,
                },
                Instr::Bin {
                    dst: 10,
                    kind: BinKind::Sub,
                    a: 8,
                    b: 9,
                },
                Instr::Store {
                    view: 1,
                    off: 0,
                    src: 10,
                },
            ],
            num_regs: 11,
            ..Default::default()
        };
        p.finalize_stats();
        p.hoist_invariants();
        let fused = fuse_program(&p);
        assert_eq!(fused.flops_per_cell, p.flops_per_cell);
        assert_eq!(fused.loads_per_cell, p.loads_per_cell);
        assert!(
            fused
                .instrs
                .iter()
                .any(|i| matches!(i, Instr::MulAdd { .. })),
            "expected at least one MulAdd in {:?}",
            fused.instrs
        );
        assert!(
            fused.instrs.len() < p.instrs.len(),
            "fusion must shrink the stream"
        );

        let input: Vec<f64> = (0..12).map(|i| (i as f64 * 1.3).cos()).collect();
        let run = |prog: &BodyProgram| -> Vec<f64> {
            let mut out = vec![0.0; 12];
            let inputs: Vec<&[f64]> = vec![&input, &[]];
            let mut outs: Vec<&mut [f64]> = vec![&mut out];
            let w = 8usize;
            let mut regs = vec![0.0; prog.num_regs as usize * w];
            prog.run_prelude_strip(&mut regs, w, &[]);
            prog.run_strip(
                &mut regs,
                w,
                &inputs,
                &mut outs,
                &[None, Some(0)],
                &[1, 1],
                1,
                &[1],
                &[],
            );
            out
        };
        assert_eq!(
            run(&p),
            run(&fused),
            "fused VM must match generic VM bitwise"
        );
    }
}
