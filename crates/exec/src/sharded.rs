//! A sharded, concurrently readable plan-cache image shared across
//! compile sessions.
//!
//! The autotuner used to keep its in-process cache behind one global
//! `Mutex<HashMap<..>>` held for the *entire* tuning loop — so a slow
//! calibration sweep on one kernel serialized every unrelated cache
//! lookup in the process (ISSUE 6 satellite 2). [`SharedPlanCache`]
//! replaces it with:
//!
//! * **sharding** — keys are distributed over [`SHARDS`] independent
//!   shards by FNV-1a hash, so writers to different shards never contend;
//! * **RCU-style snapshot reads** — each shard publishes an immutable
//!   `Arc<BTreeMap>` snapshot; a read clones the `Arc` (one refcount
//!   increment under a momentary read lock) and walks the map with no
//!   lock held. A reader is therefore never blocked behind a calibration
//!   sweep or a writer rebuilding the map;
//! * **serialized, rare writes** — a writer clones the current snapshot,
//!   applies its update and swaps the new `Arc` in; a per-shard write
//!   mutex makes the read-modify-publish cycle atomic without ever
//!   making readers wait on it.
//!
//! Hit/miss counters are maintained with relaxed atomics so the compile
//! server's `/stats` endpoint can report a live plan-cache hit rate.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::plancache::{PlanCache, PlanRecord};

/// Shard count (power of two; keys spread by FNV-1a hash).
pub const SHARDS: usize = 16;

/// One shard: an immutable published snapshot plus a writer mutex.
struct Shard {
    /// The current snapshot. Readers hold the read lock only long enough
    /// to clone the `Arc`; writers hold the write lock only long enough
    /// to swap in an already-built replacement map.
    snap: RwLock<Arc<BTreeMap<String, PlanRecord>>>,
    /// Serialises the clone → modify → publish cycle between writers.
    write: Mutex<()>,
}

impl Default for Shard {
    fn default() -> Self {
        Self {
            snap: RwLock::new(Arc::new(BTreeMap::new())),
            write: Mutex::new(()),
        }
    }
}

impl Shard {
    /// The current immutable snapshot (read-side critical section: one
    /// `Arc` clone).
    fn snapshot(&self) -> Arc<BTreeMap<String, PlanRecord>> {
        self.snap.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Apply `update` to a private copy of the map and publish it.
    fn update(&self, update: impl FnOnce(&mut BTreeMap<String, PlanRecord>)) {
        let _w = self.write.lock().unwrap_or_else(|e| e.into_inner());
        // Build the replacement outside the readers' lock.
        let mut next = (*self.snapshot()).clone();
        update(&mut next);
        let next = Arc::new(next);
        *self.snap.write().unwrap_or_else(|e| e.into_inner()) = next;
    }
}

/// A sharded plan cache shared by every session of a process (and by the
/// compile server's worker pool). See the module docs for the concurrency
/// design.
pub struct SharedPlanCache {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for SharedPlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedPlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A cache seeded from an on-disk image.
    pub fn from_cache(image: PlanCache) -> Self {
        let cache = Self::new();
        cache.merge(image);
        cache
    }

    fn shard(&self, key: &str) -> &Shard {
        // FNV-1a over the key selects the shard.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h as usize) & (SHARDS - 1)]
    }

    /// Look up a fingerprint. Never blocks behind writers or sweeps; the
    /// hit/miss counters feed the server's cache-hit-rate metric.
    pub fn get(&self, key: &str) -> Option<PlanRecord> {
        let found = self.shard(key).snapshot().get(key).cloned();
        match found {
            Some(r) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(r)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or replace) one record.
    pub fn insert(&self, key: String, record: PlanRecord) {
        self.shard(&key).update(move |m| {
            m.insert(key, record);
        });
    }

    /// Union an on-disk image into the shared cache (incoming entries win
    /// on identical keys).
    pub fn merge(&self, image: PlanCache) {
        // Group by shard first so each shard republishes once.
        let mut per_shard: Vec<Vec<(String, PlanRecord)>> =
            (0..SHARDS).map(|_| Vec::new()).collect();
        for (k, v) in image.entries {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in k.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            per_shard[(h as usize) & (SHARDS - 1)].push((k, v));
        }
        for (shard, entries) in self.shards.iter().zip(per_shard) {
            if entries.is_empty() {
                continue;
            }
            shard.update(move |m| {
                for (k, v) in entries {
                    m.insert(k, v);
                }
            });
        }
    }

    /// A flat copy of every entry (for persistence: the result is saved
    /// through [`PlanCache::save`], which merge-unions with the disk).
    pub fn to_cache(&self) -> PlanCache {
        let mut out = PlanCache::default();
        for shard in &self.shards {
            for (k, v) in shard.snapshot().iter() {
                out.entries.insert(k.clone(), v.clone());
            }
        }
        out
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.snapshot().len()).sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::{Duration, Instant};

    fn record(micros: f64) -> PlanRecord {
        PlanRecord {
            tiles: vec![0, 16, 0],
            unroll: 4,
            slabs: 1,
            micros,
        }
    }

    #[test]
    fn insert_get_round_trip_across_shards() {
        let c = SharedPlanCache::new();
        for i in 0..100 {
            c.insert(format!("key-{i}:8x8:t1"), record(i as f64));
        }
        assert_eq!(c.len(), 100);
        for i in 0..100 {
            let r = c.get(&format!("key-{i}:8x8:t1")).unwrap();
            assert_eq!(r.micros, i as f64);
        }
        assert!(c.get("absent").is_none());
        let (hits, misses) = c.stats();
        assert_eq!(hits, 100);
        assert_eq!(misses, 1);
    }

    #[test]
    fn merge_and_flatten_round_trip() {
        let mut image = PlanCache::default();
        for i in 0..20 {
            image.entries.insert(format!("m{i}"), record(i as f64));
        }
        let c = SharedPlanCache::from_cache(image.clone());
        assert_eq!(c.to_cache().entries, image.entries);
    }

    /// Readers make progress while a writer is mid-update: the published
    /// snapshot stays readable the whole time, so a reader never waits
    /// for a slow writer (the RCU property the autotuner relies on).
    #[test]
    fn reads_are_not_blocked_by_a_slow_writer() {
        let c = Arc::new(SharedPlanCache::new());
        c.insert("hot".into(), record(1.0));
        let writing = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicBool::new(false));

        let (cw, ww, dw) = (c.clone(), writing.clone(), done.clone());
        let writer = std::thread::spawn(move || {
            cw.shard("hot").update(|m| {
                ww.store(true, Ordering::SeqCst);
                // A deliberately slow rebuild (stands in for a calibration
                // sweep happening between read and publish).
                std::thread::sleep(Duration::from_millis(200));
                m.insert("hot".into(), record(2.0));
            });
            dw.store(true, Ordering::SeqCst);
        });

        // Wait until the writer is inside its slow update.
        while !writing.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        let t0 = Instant::now();
        let r = c.get("hot").expect("snapshot stays readable");
        let read_latency = t0.elapsed();
        assert!(
            !done.load(Ordering::SeqCst) || read_latency < Duration::from_millis(100),
            "reader should not have waited for the writer"
        );
        assert!(
            read_latency < Duration::from_millis(100),
            "read took {read_latency:?} — blocked behind the writer"
        );
        // The old value is visible until the writer publishes.
        assert_eq!(r.micros, 1.0);
        writer.join().unwrap();
        assert_eq!(c.get("hot").unwrap().micros, 2.0);
    }

    #[test]
    fn concurrent_writers_to_distinct_keys_all_land() {
        let c = Arc::new(SharedPlanCache::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        c.insert(format!("w{t}-k{i}"), record((t * 100 + i) as f64));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.len(), 8 * 50);
    }
}
