//! Autotuned execution-plan selection with a persistent plan cache.
//!
//! Given a freshly compiled kernel, the tuner times a *small* candidate
//! space of [`ExecPlan`]s — tile shapes, the unroll-by-4 fast-path
//! variant, and slab budgets — in short calibration sweeps over scratch
//! buffers shaped exactly like the real arguments, and installs the
//! winner via [`CompiledKernel::force_plan`]. Winners are keyed by a
//! fingerprint of (body bytecode, iteration bounds, view geometry, plan
//! kind, thread count) and remembered twice:
//!
//! * **in process** — a per-cache-path [`SharedPlanCache`]: a sharded map
//!   with RCU-style snapshot reads (see [`crate::sharded`]), so repeated
//!   compiles in one process never re-read the file and concurrent
//!   sessions never queue behind each other's lookups. Crucially, no lock
//!   is held while a calibration sweep runs — a slow tune of one kernel
//!   cannot serialize an unrelated cache hit;
//! * **on disk** — the JSON [`PlanCache`] (see [`crate::plancache`]), so
//!   calibration cost is paid once per machine. Persistence goes through
//!   [`PlanCache::save`]'s merge-on-save, so concurrent processes tuning
//!   different kernels both keep their entries.
//!
//! Every failure degrades, never aborts: an unreadable cache produces a
//! coded `E0702` warning and tuning proceeds; a calibration sweep that
//! errors produces a coded `E0703` warning and the default plan is kept.
//! The chosen provenance (`default` / `tuned` / `cached`) rides through
//! `KernelStats` into `RunReport`, so runs attest what actually executed.
//!
//! The candidate space is deliberately tiny (≤7 plans): the default plan
//! is always a candidate, so tuning can only ever pick something that
//! measured no worse than the default on this machine.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use fsc_ir::diag::{codes, Diagnostic};

use crate::kernel::{run_kernel, ArgKind, CompiledKernel, KernelArg, PlanKind, ViewSource};
use crate::plan::{ExecPlan, PlanProvenance};
use crate::plancache::{resolve_cache_path, PlanCache, PlanRecord};
use crate::sharded::SharedPlanCache;
use crate::value::Memory;

/// How the tuner runs.
#[derive(Debug, Clone, Default)]
pub struct TuneConfig {
    /// Explicit cache file; `None` resolves the temp-dir default via
    /// [`resolve_cache_path`]. The library never consults the environment
    /// — binaries that honour `FSC_PLAN_CACHE` call
    /// [`crate::plancache::env_cache_path`] at their boundary and pass
    /// the result here.
    pub cache_path: Option<PathBuf>,
    /// Skip persisting newly tuned winners to disk (in-process memoisation
    /// still applies). Benches use this to re-tune every run.
    pub no_persist: bool,
    /// Timed repetitions per candidate (best-of). `0` means the default 2.
    pub reps: u32,
}

/// What the tuner decided for one kernel.
#[derive(Debug, Clone)]
pub struct TuneEntry {
    /// Kernel symbol name.
    pub kernel: String,
    /// Fingerprint key the plan is cached under.
    pub key: String,
    /// The plan that was installed.
    pub plan: ExecPlan,
    /// Best calibration sweep time for that plan, microseconds
    /// (`0.0` for cache hits — nothing was re-measured).
    pub micros: f64,
}

/// The tuner's attestation for one compile: per-kernel decisions plus the
/// total calibration cost and any degradation diagnostics.
#[derive(Debug, Clone, Default)]
pub struct TuningReport {
    /// One entry per tuned kernel, in tuning order.
    pub entries: Vec<TuneEntry>,
    /// Total wall-clock time spent calibrating (zero when every kernel hit
    /// the cache).
    pub tuning_wall: Duration,
    /// Coded diagnostics for anything that degraded (`E0702` cache
    /// problems, `E0703` calibration failures).
    pub diagnostics: Vec<Diagnostic>,
}

impl TuningReport {
    /// How many kernels were satisfied from the persistent cache.
    pub fn cache_hits(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.plan.provenance == PlanProvenance::Cached)
            .count()
    }

    /// How many kernels ran a fresh calibration sweep.
    pub fn fresh_tunes(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.plan.provenance == PlanProvenance::Tuned)
            .count()
    }
}

// --------------------------------------------------------------------------
// In-process cache
// --------------------------------------------------------------------------

/// Registry of in-process shared cache images, one per on-disk path.
/// Loaded lazily on first use of a path and kept in sync with everything
/// tuned afterwards, so one process never reads a cache file twice. The
/// registry lock is held only to clone an `Arc` (or to register a freshly
/// loaded image) — never across a lookup, and never across a calibration
/// sweep.
fn registry() -> &'static Mutex<HashMap<PathBuf, Arc<SharedPlanCache>>> {
    static CACHE: OnceLock<Mutex<HashMap<PathBuf, Arc<SharedPlanCache>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The process-wide shared cache image for a path, loading the file on
/// the first request. Returns the load diagnostic (corrupt/unreadable
/// file) only to the caller that actually performed the load.
pub fn shared_cache(path: &Path) -> (Arc<SharedPlanCache>, Option<Diagnostic>) {
    if let Some(existing) = registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(path)
    {
        return (existing.clone(), None);
    }
    // Load outside the registry lock: a large or slow-to-read cache file
    // must not block lookups against other paths.
    let (image, diag) = PlanCache::load(path);
    let loaded = Arc::new(SharedPlanCache::from_cache(image));
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    match reg.entry(path.to_path_buf()) {
        std::collections::hash_map::Entry::Occupied(e) => (e.get().clone(), None),
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(loaded.clone());
            (loaded, diag)
        }
    }
}

/// Drop every in-process cache image, forcing the next tune to re-read
/// cache files from disk. Test hook (the file may have been rewritten or
/// corrupted underneath us on purpose).
pub fn reset_in_process_cache() {
    registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

// --------------------------------------------------------------------------
// Fingerprinting
// --------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Fingerprint a kernel for plan-cache keying: FNV-1a-64 over the body
/// bytecode, iteration bounds and view geometry, suffixed with the
/// human-readable grid extents and thread count (so cache files stay
/// greppable). Debug formatting of the bytecode is deterministic and
/// covers every instruction field, including float immediates.
pub fn fingerprint(kernel: &CompiledKernel, threads: usize) -> String {
    let mut h = FNV_OFFSET;
    for nest in &kernel.nests {
        fnv1a(&mut h, b"nest");
        for &(lb, ub) in &nest.bounds {
            fnv1a(&mut h, &lb.to_le_bytes());
            fnv1a(&mut h, &ub.to_le_bytes());
        }
        for instr in &nest.program.instrs {
            fnv1a(&mut h, format!("{instr:?}").as_bytes());
        }
        for &v in &nest.out_views {
            fnv1a(&mut h, &(v as u64).to_le_bytes());
        }
    }
    for view in &kernel.views {
        fnv1a(&mut h, b"view");
        for &e in &view.extents {
            fnv1a(&mut h, &e.to_le_bytes());
        }
        for &s in &view.strides {
            fnv1a(&mut h, &s.to_le_bytes());
        }
    }
    let kind_tag: &[u8] = match kernel.kind {
        PlanKind::Cpu => b"cpu",
        PlanKind::Omp { .. } => b"omp",
        PlanKind::Gpu { .. } => b"gpu",
    };
    fnv1a(&mut h, kind_tag);
    let extents = kernel
        .nests
        .first()
        .map(|n| {
            n.bounds
                .iter()
                .map(|&(lb, ub)| (ub - lb).max(0).to_string())
                .collect::<Vec<_>>()
                .join("x")
        })
        .unwrap_or_default();
    format!("{h:016x}:{extents}:t{threads}")
}

// --------------------------------------------------------------------------
// Candidate space
// --------------------------------------------------------------------------

/// The tiny candidate space for a kernel of the given rank. The first
/// entry is always the (possibly IR-seeded) default plan, so the sweep's
/// argmin can never do worse than not tuning — modulo timing noise.
fn candidates(default: &ExecPlan, rank: usize, threads: usize) -> Vec<ExecPlan> {
    let mut out = vec![default.clone()];
    let mut push = |p: ExecPlan| {
        if !out.contains(&p) {
            out.push(p);
        }
    };
    // Unroll the specialized inner loop by 4.
    let mut u4 = default.clone();
    u4.unroll = 4;
    push(u4);
    // Cache-block the non-unit-stride dimensions at 16 (dimension 0 stays
    // whole: the fast paths live on contiguous unit-stride rows).
    if rank >= 2 {
        let mut tiles = vec![0i64; rank];
        for t in tiles.iter_mut().skip(1) {
            *t = 16;
        }
        let blocked = ExecPlan {
            tiles,
            ..default.clone()
        };
        let mut blocked_u4 = blocked.clone();
        blocked_u4.unroll = 4;
        push(blocked);
        push(blocked_u4);
    }
    // Slab-budget variants: one slab (skips work-sharing overhead — the
    // winner when spawn cost dominates, e.g. small grids or few cores) and
    // an over-decomposed 2×threads budget (helps load imbalance).
    let mut one = default.clone();
    one.slabs = 1;
    push(one);
    let mut one_u4 = default.clone();
    one_u4.slabs = 1;
    one_u4.unroll = 4;
    push(one_u4);
    if threads > 1 {
        let mut over = default.clone();
        over.slabs = (threads as u32).saturating_mul(2);
        push(over);
    }
    out
}

// --------------------------------------------------------------------------
// Calibration
// --------------------------------------------------------------------------

/// Build scratch arguments shaped like the kernel's real signature:
/// deterministically filled buffers for every pointer argument, `1.0` for
/// every scalar (safe for the divide in Gauss–Seidel-style scales).
/// Allocation is fallible: a denied scratch buffer (budget or host) makes
/// the caller skip calibration with a coded `E0703` degradation instead of
/// aborting the process.
fn scratch_args(kernel: &CompiledKernel, memory: &mut Memory) -> fsc_ir::Result<Vec<KernelArg>> {
    let mut args = Vec::with_capacity(kernel.args.len());
    for (i, kind) in kernel.args.iter().enumerate() {
        match kind {
            ArgKind::Scalar => args.push(KernelArg::Scalar(1.0)),
            ArgKind::Ptr => {
                let len = kernel
                    .views
                    .iter()
                    .filter(|v| v.source == ViewSource::Arg(i))
                    .map(|v| v.checked_len())
                    .try_fold(0usize, |acc, l| l.map(|l| acc.max(l)))?
                    .max(1);
                let buf = memory.try_alloc_buffer(len)?;
                for (k, cell) in memory.buffer_mut(buf).iter_mut().enumerate() {
                    *cell = 1.0 + (k % 7) as f64 * 0.125;
                }
                args.push(KernelArg::Buf(buf));
            }
        }
    }
    Ok(args)
}

/// Time one candidate: force the plan, run once to warm up, then best-of
/// `reps` timed sweeps. Returns microseconds, or the execution error.
fn time_candidate(
    kernel: &mut CompiledKernel,
    plan: &ExecPlan,
    memory: &mut Memory,
    args: &[KernelArg],
    threads: usize,
    pool: Option<&rayon::ThreadPool>,
    reps: u32,
) -> Result<f64, fsc_ir::IrError> {
    kernel.force_plan(plan);
    run_kernel(kernel, memory, args, threads, pool)?;
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        run_kernel(kernel, memory, args, threads, pool)?;
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    Ok(best)
}

/// Tune one kernel in place. Cache hit installs the cached plan without
/// any measurement; otherwise a calibration sweep runs over scratch
/// buffers — with **no cache lock held** — and the winner (with `Tuned`
/// provenance) is installed and recorded in `cache`. Returns `None`
/// (default plan kept) for kernel shapes the tuner does not calibrate:
/// GPU-modelled and distributed plans, whose run path is not the plain
/// CPU sweep being timed here.
pub fn tune_kernel(
    kernel: &mut CompiledKernel,
    threads: usize,
    pool: Option<&rayon::ThreadPool>,
    cache: &SharedPlanCache,
    reps: u32,
    diagnostics: &mut Vec<Diagnostic>,
) -> Option<TuneEntry> {
    if matches!(kernel.kind, PlanKind::Gpu { .. }) || kernel.is_distributed() {
        return None;
    }
    let rank = kernel.nests.first().map(|n| n.bounds.len())?;
    let key = fingerprint(kernel, threads);

    if let Some(record) = cache.get(&key) {
        let plan = record.to_plan();
        kernel.force_plan(&plan);
        return Some(TuneEntry {
            kernel: kernel.name.clone(),
            key,
            plan,
            micros: 0.0,
        });
    }

    let default = kernel
        .nests
        .first()
        .map(|n| n.plan.clone())
        .unwrap_or_default();
    let mut memory = Memory::new();
    let args = match scratch_args(kernel, &mut memory) {
        Ok(args) => args,
        Err(e) => {
            // Calibration scratch was denied: keep the default plan and
            // attest the degradation — tuning never fails a compile.
            diagnostics.push(
                Diagnostic::warning(
                    codes::AUTOTUNE,
                    format!(
                        "autotune scratch allocation for '{}' failed: {e}",
                        kernel.name
                    ),
                )
                .note("default execution plan kept"),
            );
            return None;
        }
    };
    let mut best: Option<(f64, ExecPlan)> = None;
    for plan in candidates(&default, rank, threads) {
        match time_candidate(kernel, &plan, &mut memory, &args, threads, pool, reps) {
            Ok(micros) => {
                if best.as_ref().is_none_or(|(b, _)| micros < *b) {
                    best = Some((micros, plan));
                }
            }
            Err(e) => {
                diagnostics.push(
                    Diagnostic::warning(
                        codes::AUTOTUNE,
                        format!(
                            "autotune sweep of '{}' failed for plan {}: {e}",
                            kernel.name,
                            plan.describe()
                        ),
                    )
                    .note("keeping the default execution plan for this candidate"),
                );
            }
        }
    }
    let (micros, winner) = match best {
        Some((m, p)) => (m, p.with_provenance(PlanProvenance::Tuned)),
        None => {
            // Every candidate failed (the default included): restore the
            // default plan and attest the degradation.
            kernel.force_plan(&default);
            diagnostics.push(
                Diagnostic::warning(
                    codes::AUTOTUNE,
                    format!("autotune calibration of '{}' failed entirely", kernel.name),
                )
                .note("default execution plan kept"),
            );
            return None;
        }
    };
    kernel.force_plan(&winner);
    cache.insert(key.clone(), PlanRecord::from_plan(&winner, micros));
    Some(TuneEntry {
        kernel: kernel.name.clone(),
        key,
        plan: winner,
        micros,
    })
}

/// Tune a set of kernels against one plan-cache file: resolve the shared
/// in-process image (loading the file once per process per path), tune
/// each kernel, then persist newly tuned winners through the merge-on-save
/// writer. Never fails — every problem becomes a coded diagnostic in the
/// returned [`TuningReport`].
///
/// Concurrency: no lock is held across the tuning loop. Cache lookups go
/// through [`SharedPlanCache`]'s snapshot reads, so one session's slow
/// calibration sweep never serializes another session's cache hit (the
/// regression test below pins this).
pub fn tune_kernels<'k>(
    kernels: impl IntoIterator<Item = &'k mut CompiledKernel>,
    threads: usize,
    pool: Option<&rayon::ThreadPool>,
    config: &TuneConfig,
) -> TuningReport {
    let t0 = Instant::now();
    let mut report = TuningReport::default();
    let path = resolve_cache_path(config.cache_path.as_deref());
    let (cache, load_diag) = shared_cache(&path);
    if let Some(d) = load_diag {
        report.diagnostics.push(d);
    }
    let reps = if config.reps == 0 { 2 } else { config.reps };
    // Winners tuned by *this* call, persisted as a delta: save() unions
    // them with whatever is on disk by then, so concurrent writers (other
    // threads or other processes) keep their entries too.
    let mut fresh = PlanCache::default();
    for kernel in kernels {
        if let Some(entry) =
            tune_kernel(kernel, threads, pool, &cache, reps, &mut report.diagnostics)
        {
            if entry.plan.provenance == PlanProvenance::Tuned {
                fresh.entries.insert(
                    entry.key.clone(),
                    PlanRecord::from_plan(&entry.plan, entry.micros),
                );
            }
            report.entries.push(entry);
        }
    }
    if !fresh.entries.is_empty() && !config.no_persist {
        if let Err(e) = fresh.save(&path) {
            report.diagnostics.push(
                Diagnostic::warning(
                    codes::PLAN_CACHE,
                    format!("could not persist plan cache {}: {e}", path.display()),
                )
                .note("tuned plans remain in effect for this process only"),
            );
        }
    }
    report.tuning_wall = t0.elapsed();
    report
}

/// Tune a single kernel against the resolved cache file (convenience for
/// benches and tests; see [`tune_kernels`]).
pub fn tune_one(
    kernel: &mut CompiledKernel,
    threads: usize,
    pool: Option<&rayon::ThreadPool>,
    config: &TuneConfig,
) -> TuningReport {
    tune_kernels(std::iter::once(kernel), threads, pool, config)
}
