//! Memory governance: byte ledgers and static footprint estimates.
//!
//! Stencil programs make their memory footprint statically predictable —
//! every buffer the executor will ever allocate is sized by IR view bounds
//! known at compile time. This module turns that property into governance:
//!
//! * [`MemoryBudget`] — a thread-safe byte ledger. Allocation paths
//!   *reserve* bytes before touching the allocator and *release* them when
//!   the storage is logically freed; a reservation that would exceed the
//!   limit fails with coded `E0805` instead of aborting the process. The
//!   ledger also tracks the high-water mark, so a run can attest its
//!   measured peak against the promised estimate.
//! * [`MemoryEstimate`] — the static estimate itself, broken into the
//!   components a compiled program can need (program arrays, snapshot
//!   copies, halo staging, distributed per-rank replication, autotune
//!   scratch), so admission control can reserve before running.
//! * [`checked_elems`] / [`elems_to_bytes`] — overflow-checked extent
//!   arithmetic. Element counts near `usize::MAX` produce coded `E0807`
//!   instead of wrapping silently into a tiny (or enormous) allocation.
//!
//! Invariants the ledger maintains:
//!
//! * `used` never exceeds `limit` (reservations are compare-and-swap, so
//!   concurrent reservers cannot jointly overshoot);
//! * `peak` is the monotone maximum of `used` over the ledger's lifetime;
//! * `release` never underflows (saturating), so a mismatched release is
//!   harmless rather than corrupting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fsc_ir::diag::{codes, Diagnostic};
use fsc_ir::IrError;

/// Sentinel limit meaning "no cap".
const UNLIMITED: u64 = u64::MAX;

/// A shared byte ledger with a hard limit, current usage and peak tracking.
///
/// Cloneable by `Arc`: one ledger can govern several [`crate::Memory`]
/// instances at once (e.g. every rank body of a distributed dispatch), and
/// a server can layer a per-request ledger under a server-wide one.
#[derive(Debug)]
pub struct MemoryBudget {
    limit: AtomicU64,
    used: AtomicU64,
    peak: AtomicU64,
}

impl MemoryBudget {
    /// A ledger capped at `bytes`.
    pub fn limited(bytes: u64) -> Arc<Self> {
        Arc::new(Self {
            limit: AtomicU64::new(bytes),
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        })
    }

    /// A ledger that never rejects (but still tracks usage and peak).
    pub fn unlimited() -> Arc<Self> {
        Self::limited(UNLIMITED)
    }

    /// The configured limit, `None` when unlimited.
    pub fn limit(&self) -> Option<u64> {
        match self.limit.load(Ordering::Relaxed) {
            UNLIMITED => None,
            v => Some(v),
        }
    }

    /// Replace the limit (an already-over-limit `used` is not clawed back;
    /// future reservations simply fail until usage drains).
    pub fn set_limit(&self, bytes: Option<u64>) {
        self.limit
            .store(bytes.unwrap_or(UNLIMITED), Ordering::Relaxed);
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of `used` over the ledger's lifetime.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Try to reserve `bytes` against the limit. On success the bytes are
    /// charged (release them with [`release`](Self::release)); on failure
    /// nothing changes and a coded `E0805` error describes the shortfall.
    pub fn try_reserve(&self, bytes: u64) -> fsc_ir::Result<()> {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let limit = self.limit.load(Ordering::Relaxed);
            let next = match cur.checked_add(bytes) {
                Some(n) if n <= limit => n,
                _ => {
                    return Err(IrError::from_diagnostic(
                        Diagnostic::error(
                            codes::MEM_BUDGET,
                            format!(
                                "allocation denied: reserving {bytes} bytes would exceed the \
                                 memory budget ({cur} of {limit} bytes in use)"
                            ),
                        )
                        .note("the request fails cleanly; the process keeps serving"),
                    ));
                }
            };
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.peak.fetch_max(next, Ordering::Relaxed);
                    return Ok(());
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Return `bytes` to the ledger (saturating — never underflows).
    pub fn release(&self, bytes: u64) {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Static memory footprint of one compiled program, by component. All
/// figures are bytes; [`total`](Self::total) is what admission control
/// reserves before the run starts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryEstimate {
    /// Program arrays allocated by the FIR interpreter (`fir.alloca`,
    /// `fir.allocmem`, `memref.alloc`).
    pub base_bytes: u64,
    /// Value-semantics snapshot copies the stencil kernels allocate.
    pub snapshot_bytes: u64,
    /// Halo staging: pack/unpack payloads and per-view exchange regions.
    pub halo_bytes: u64,
    /// Distributed replication: every real rank holds full-size, globally
    /// addressed buffers plus per-phase checkpoint clones.
    pub replication_bytes: u64,
    /// Autotune calibration scratch buffers.
    pub scratch_bytes: u64,
    /// Fixed interpreter slack (scalars, environments, bookkeeping).
    pub slack_bytes: u64,
}

impl MemoryEstimate {
    /// The sum of every component (saturating: each component is already
    /// overflow-checked at construction, so saturation is unreachable in
    /// practice but keeps the sum total).
    pub fn total(&self) -> u64 {
        self.base_bytes
            .saturating_add(self.snapshot_bytes)
            .saturating_add(self.halo_bytes)
            .saturating_add(self.replication_bytes)
            .saturating_add(self.scratch_bytes)
            .saturating_add(self.slack_bytes)
    }
}

/// Overflow-checked element count of an extent vector: the product of
/// `max(e, 0)` over every extent, rejected with coded `E0807` when it
/// does not fit `usize`.
pub fn checked_elems(extents: &[i64]) -> fsc_ir::Result<usize> {
    let mut acc: usize = 1;
    for &e in extents {
        let e = e.max(0) as u64;
        let e: usize = e.try_into().map_err(|_| extent_overflow(extents))?;
        acc = acc.checked_mul(e).ok_or_else(|| extent_overflow(extents))?;
    }
    Ok(acc)
}

/// Overflow-checked byte size of `elems` f64 cells (coded `E0807` when the
/// ×8 does not fit `u64`).
pub fn elems_to_bytes(elems: usize) -> fsc_ir::Result<u64> {
    (elems as u64)
        .checked_mul(8)
        .ok_or_else(|| extent_overflow(&[elems as i64]))
}

fn extent_overflow(extents: &[i64]) -> IrError {
    IrError::from_diagnostic(
        Diagnostic::error(
            codes::EXTENT_OVERFLOW,
            format!("extent arithmetic overflow computing the size of shape {extents:?}"),
        )
        .note("element counts must fit the address space; the request is rejected, not wrapped"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_reserves_releases_and_tracks_peak() {
        let b = MemoryBudget::limited(100);
        assert_eq!(b.limit(), Some(100));
        b.try_reserve(60).unwrap();
        b.try_reserve(40).unwrap();
        assert_eq!(b.used(), 100);
        let err = b.try_reserve(1).unwrap_err();
        assert!(err.diagnostics[0].render().contains("E0805"), "{err}");
        b.release(70);
        assert_eq!(b.used(), 30);
        b.try_reserve(50).unwrap();
        assert_eq!(b.used(), 80);
        assert_eq!(b.peak(), 100, "peak is the monotone high-water mark");
    }

    #[test]
    fn release_saturates_instead_of_underflowing() {
        let b = MemoryBudget::limited(10);
        b.try_reserve(5).unwrap();
        b.release(1_000);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn unlimited_ledger_still_accounts() {
        let b = MemoryBudget::unlimited();
        assert_eq!(b.limit(), None);
        b.try_reserve(1 << 40).unwrap();
        assert_eq!(b.peak(), 1 << 40);
    }

    #[test]
    fn concurrent_reservers_never_jointly_overshoot() {
        let b = MemoryBudget::limited(1_000);
        let granted: u64 = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let b = &b;
                    s.spawn(move || {
                        let mut got = 0u64;
                        for _ in 0..100 {
                            if b.try_reserve(7).is_ok() {
                                got += 7;
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(granted, b.used());
        assert!(b.used() <= 1_000);
        assert!(b.peak() <= 1_000);
    }

    #[test]
    fn checked_elems_matches_small_products() {
        assert_eq!(checked_elems(&[3, 4, 5]).unwrap(), 60);
        assert_eq!(checked_elems(&[]).unwrap(), 1);
        assert_eq!(
            checked_elems(&[7, -2, 9]).unwrap(),
            0,
            "negatives clamp to 0"
        );
    }

    /// Hand-rolled property test (no external proptest crate): a seeded
    /// xorshift64* stream generates extent vectors mixing small values with
    /// near-`usize::MAX` ones; a u128 oracle decides whether the product
    /// overflows, and `checked_elems` must agree — flagging coded E0807 on
    /// overflow and never panicking or wrapping.
    #[test]
    fn prop_checked_elems_agrees_with_wide_oracle_near_usize_max() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for case in 0..2_000 {
            let ndims = (next() % 4 + 1) as usize;
            let extents: Vec<i64> = (0..ndims)
                .map(|_| match next() % 5 {
                    0 => i64::MAX - (next() % 7) as i64,
                    1 => (u32::MAX as i64) + (next() % 1_000) as i64,
                    2 => -((next() % 100) as i64),
                    3 => (next() % 65_536) as i64,
                    _ => (next() % 7) as i64,
                })
                .collect();
            let oracle = extents
                .iter()
                .map(|&e| e.max(0) as u128)
                .try_fold(1u128, |acc, e| {
                    let p = acc.checked_mul(e)?;
                    (p <= usize::MAX as u128).then_some(p)
                });
            match (checked_elems(&extents), oracle) {
                (Ok(got), Some(want)) => {
                    assert_eq!(got as u128, want, "case {case}: {extents:?}")
                }
                (Err(e), None) => {
                    assert!(
                        e.diagnostics[0].render().contains("E0807"),
                        "case {case}: overflow must carry E0807, got {e}"
                    );
                }
                (got, want) => panic!(
                    "case {case}: checked_elems disagrees with oracle for {extents:?}: \
                     got {got:?}, oracle {want:?}"
                ),
            }
        }
    }

    #[test]
    fn estimate_total_sums_components() {
        let e = MemoryEstimate {
            base_bytes: 10,
            snapshot_bytes: 20,
            halo_bytes: 5,
            replication_bytes: 40,
            scratch_bytes: 15,
            slack_bytes: 1,
        };
        assert_eq!(e.total(), 91);
        assert_eq!(MemoryEstimate::default().total(), 0);
    }
}
