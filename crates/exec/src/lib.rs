//! # fsc-exec — execution engines for the compiled IR
//!
//! This crate plays the role of "LLVM backends + hardware" in the
//! reproduction. Two tiers exist deliberately, because the paper's central
//! measurement (Figures 2–4) is the gap between them:
//!
//! * [`interp`] — a straightforward op-by-op **FIR interpreter**. This is
//!   the *Flang-only* execution tier: every array access recomputes its full
//!   address, every op dispatches dynamically, nothing is fused or hoisted —
//!   a faithful stand-in for the unoptimised code Flang emitted at the time
//!   of the paper (which lowered FIR straight to LLVM-IR without the
//!   mid-level loop optimisations).
//! * [`kernel`] + [`bytecode`] — the **stencil tier**: lowered
//!   `scf`/`memref` loop nests are compiled once into flat register-machine
//!   bytecode with pre-computed strides and relative offsets, then executed
//!   over contiguous runs of the innermost (unit-stride) dimension —
//!   serially, under a rayon pool for the `omp` dialect, or through the GPU
//!   performance model.
//!
//! Shared memory model: [`value::Memory`] owns flat `f64` buffers with
//! **column-major** linearisation (dimension 0 fastest), matching Fortran
//! array layout.

pub mod autotune;
pub mod budget;
pub mod bytecode;
pub mod distexec;
pub mod interp;
pub mod jit;
pub mod kernel;
pub mod plan;
pub mod plancache;
pub mod sharded;
pub mod specialize;
pub mod value;

pub use autotune::{TuneConfig, TuningReport};
pub use budget::{MemoryBudget, MemoryEstimate};
pub use distexec::{DeepHaloSession, DistMode, DistOptions, DistOutcome, RankMetrics};
pub use interp::{Interpreter, RunStats};
pub use jit::{JitArtifact, JitCacheStats, JitSkip};
pub use kernel::{CompiledKernel, HaloSchedule, KernelArg, KernelStats};
pub use plan::{ExecPlan, PlanProvenance};
pub use plancache::{env_cache_path, resolve_cache_path, PlanCache};
pub use sharded::SharedPlanCache;
pub use specialize::ExecPath;
pub use value::{BufId, Memory, Ref, Value};
