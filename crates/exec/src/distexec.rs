//! Distributed executor: real rank bodies over the simulated MPI substrate.
//!
//! The legacy distributed path executed a kernel once on the calling thread
//! and *charged* a cost-model estimate of the per-rank time. This module
//! replaces that with genuine distributed execution: each view is
//! partitioned over the [`ProcessGrid`] (honouring the kernel's
//! `dmp_decomposition`), every rank runs the compiled kernel over its owned
//! block as a thread on the resilient transport
//! ([`fsc_mpisim::resilient::run_resilient`]), and halos move as real face
//! pack → send → recv → unpack traffic. The per-rank schedule mirrors the
//! lowered IR (`dmp-to-mpi` + `mpi-overlap-halos`):
//!
//! ```text
//! post-recv → post-send → compute interior → waitall → compute boundary
//! ```
//!
//! with the blocking variant (overlap pass disabled) receiving every face
//! before computing the whole owned block.
//!
//! **Memory model — globally addressed, locally owned.** Every rank holds a
//! full-size copy of each view with *global* column-major strides, so the
//! compiled bytecode's precomputed linear offsets stay valid unchanged; only
//! the rank's visible region (its owned partition, extended to the array
//! edge where it owns the first/last interior cells) is scattered from the
//! caller's memory. Unowned cells are seeded with a NaN sentinel: any read
//! that escapes the owned-plus-halo region poisons the result and fails the
//! bit-identity oracle instead of silently passing.
//!
//! **Fallback contract.** [`run_distributed`] returns `Ok(None)` whenever
//! the kernel shape is outside what the executor supports (no proved halo
//! schedule, mismatched nest bounds, rank chunks thinner than the halo
//! width, oversized grids). The dispatcher then falls back to the legacy
//! modeled path — degradation, never a wrong answer.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crate::budget::MemoryBudget;
use crate::kernel::{
    run_nest_box, CompiledKernel, HaloSchedule, KernelArg, MpiExchange, Nest, ViewSource, ViewSpec,
};
use crate::value::{BufId, Memory};
use fsc_ir::{IrError, Result};
use fsc_mpisim::fault::{FaultPlan, FaultStats};
use fsc_mpisim::resilient::{run_resilient, ResilientConfig, ResilientCtx};
use fsc_mpisim::{MpiSimError, ProcessGrid};

/// Largest rank count the thread-per-rank substrate is asked to host; larger
/// grids fall back to the modeled path.
const MAX_REAL_RANKS: i64 = 32;

/// Measured wall-time breakdown of one rank's dispatch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankMetrics {
    /// Total wall time of the rank body (scatter to gather).
    pub wall_seconds: f64,
    /// Face pack + send posting time.
    pub pack_seconds: f64,
    /// Interior compute time while messages were in flight (overlap
    /// schedule only; zero under blocking).
    pub interior_seconds: f64,
    /// Time blocked in receives + halo unpack (the `waitall`).
    pub wait_seconds: f64,
    /// Boundary-shell compute time (overlap) or whole-block compute time
    /// (blocking).
    pub boundary_seconds: f64,
    /// Halo payload bytes this rank sent.
    pub bytes_sent: u64,
    /// Halo messages this rank sent.
    pub messages_sent: u64,
}

/// Outcome of one real distributed dispatch.
#[derive(Debug, Clone)]
pub struct DistOutcome {
    /// Per-rank measured metrics, indexed by rank.
    pub per_rank: Vec<RankMetrics>,
    /// Measured makespan: the slowest rank's wall time.
    pub makespan_seconds: f64,
    /// Merged fault/recovery counters from the resilient transport.
    pub fault_stats: FaultStats,
    /// The halo schedule every exchanging nest ran under.
    pub schedule: HaloSchedule,
    /// Total halo bytes exchanged across all ranks.
    pub bytes_exchanged: u64,
    /// Total halo messages across all ranks.
    pub messages: u64,
}

impl DistOutcome {
    /// Fraction of halo latency hidden behind interior compute:
    /// `Σ interior / (Σ interior + Σ wait)` over all ranks. Zero for the
    /// blocking schedule (no compute overlaps the wait).
    pub fn overlap_fraction(&self) -> f64 {
        let interior: f64 = self.per_rank.iter().map(|r| r.interior_seconds).sum();
        let wait: f64 = self.per_rank.iter().map(|r| r.wait_seconds).sum();
        if interior + wait > 0.0 {
            interior / (interior + wait)
        } else {
            0.0
        }
    }
}

// --------------------------------------------------------------------------
// Region arithmetic (shared with the proptests)
// --------------------------------------------------------------------------

/// Cell count of a per-dimension half-open region.
pub fn region_cells(region: &[(i64, i64)]) -> usize {
    region
        .iter()
        .map(|&(lb, ub)| (ub - lb).max(0) as usize)
        .product()
}

/// Visit every cell of `region` in canonical order (dimension 0 fastest),
/// handing the column-major linear index to `f`.
fn for_each_cell(strides: &[i64], region: &[(i64, i64)], mut f: impl FnMut(usize)) {
    if region_cells(region) == 0 {
        return;
    }
    let ndims = region.len();
    let mut idx: Vec<i64> = region.iter().map(|&(lb, _)| lb).collect();
    loop {
        let lin: i64 = idx.iter().zip(strides).map(|(i, s)| i * s).sum();
        f(lin as usize);
        let mut d = 0;
        loop {
            if d == ndims {
                return;
            }
            idx[d] += 1;
            if idx[d] < region[d].1 {
                break;
            }
            idx[d] = region[d].0;
            d += 1;
        }
    }
}

/// Gather `region` of a column-major buffer into a dense face payload
/// (dimension 0 fastest — the wire format of every halo message).
pub fn pack_region(data: &[f64], strides: &[i64], region: &[(i64, i64)]) -> Vec<f64> {
    let mut out = Vec::with_capacity(region_cells(region));
    for_each_cell(strides, region, |lin| out.push(data[lin]));
    out
}

/// Scatter a dense face payload back into `region` of a column-major
/// buffer: the exact inverse of [`pack_region`] over the same region.
pub fn unpack_region(data: &mut [f64], strides: &[i64], region: &[(i64, i64)], payload: &[f64]) {
    let mut cursor = 0usize;
    for_each_cell(strides, region, |lin| {
        data[lin] = payload[cursor];
        cursor += 1;
    });
    debug_assert_eq!(cursor, payload.len(), "payload size mismatch");
}

/// Split an owned box into a halo-independent interior plus boundary
/// shells. `shrink_lo[d]` / `shrink_hi[d]` give how many cells at each side
/// of dimension `d` depend on incoming halo data. The shells onion-peel:
/// shell `d` spans the interior range in dimensions below `d`, the peeled
/// slab in `d`, and the full owned range above `d`, so interior + shells
/// tile the owned box exactly once — including when the interior collapses
/// to empty (chunks no wider than the halo).
#[allow(clippy::type_complexity)]
pub fn split_interior_boundary(
    own: &[(i64, i64)],
    shrink_lo: &[i64],
    shrink_hi: &[i64],
) -> (Vec<(i64, i64)>, Vec<Vec<(i64, i64)>>) {
    let ndims = own.len();
    let interior: Vec<(i64, i64)> = (0..ndims)
        .map(|d| {
            let ilb = (own[d].0 + shrink_lo[d]).min(own[d].1);
            let iub = (own[d].1 - shrink_hi[d]).max(ilb);
            (ilb, iub)
        })
        .collect();
    let mut shells = Vec::new();
    for d in 0..ndims {
        if shrink_lo[d] == 0 && shrink_hi[d] == 0 {
            continue;
        }
        let frame = |slab: (i64, i64)| -> Vec<(i64, i64)> {
            (0..ndims)
                .map(|k| match k.cmp(&d) {
                    std::cmp::Ordering::Less => interior[k],
                    std::cmp::Ordering::Equal => slab,
                    std::cmp::Ordering::Greater => own[k],
                })
                .collect()
        };
        shells.push(frame((own[d].0, interior[d].0)));
        shells.push(frame((interior[d].1, own[d].1)));
    }
    (interior, shells)
}

// --------------------------------------------------------------------------
// Support analysis
// --------------------------------------------------------------------------

/// Shape-independent facts the rank bodies need, precomputed once.
struct DistSetup {
    /// Canonical partition domain: the iteration bounds shared by every
    /// *exchanging* nest. Pointwise nests may sweep a wider range (e.g. an
    /// init nest covering the Dirichlet shells); they execute on the owned
    /// chunk extended to their own bounds at the domain edges.
    bounds: Vec<(i64, i64)>,
    /// First decomposed data dimension (`ndims - glen`).
    from: usize,
    /// The schedule every exchanging nest runs under.
    schedule: HaloSchedule,
}

impl DistSetup {
    /// Decide whether the kernel fits the real distributed executor.
    /// `None` means "fall back to the modeled path".
    fn build(kernel: &CompiledKernel, grid: &ProcessGrid, args: &[KernelArg]) -> Option<Self> {
        let glen = kernel.decomposition.len();
        if glen == 0
            || kernel.decomposition != grid.shape
            || grid.size() > MAX_REAL_RANKS
            || kernel.nests.is_empty()
        {
            return None;
        }
        // The canonical bounds come from the exchanging nests: they carry
        // the halo dependencies, so their iteration space is what must be
        // block-partitioned consistently across every phase.
        let bounds = kernel
            .nests
            .iter()
            .find(|n| !n.exchanges.is_empty())?
            .bounds
            .clone();
        let ndims = bounds.len();
        if ndims < glen {
            return None;
        }
        let from = ndims - glen;
        let mut schedule = HaloSchedule::Overlap;
        for nest in &kernel.nests {
            if nest.bounds.len() != ndims {
                return None;
            }
            if !nest.exchanges.is_empty() {
                if nest.bounds != bounds {
                    return None;
                }
                // Exchanging nests need the star-shape proof carried by the
                // `halo_schedule` attribute; without it, face messages do
                // not cover the remote dependencies (e.g. corner reads).
                match nest.halo_schedule {
                    Some(HaloSchedule::Overlap) => {}
                    Some(HaloSchedule::Blocking) => schedule = HaloSchedule::Blocking,
                    None => return None,
                }
            } else {
                // Pointwise nests may sweep a different range, covered by
                // extending the edge-owning ranks' chunks
                // ([`nest_exec_box`]); that extension only exists when the
                // canonical domain is non-empty on that dimension.
                for (d, &b) in bounds.iter().enumerate().skip(from) {
                    if nest.bounds[d] != b && b.1 <= b.0 {
                        return None;
                    }
                }
            }
            for e in &nest.exchanges {
                if e.dim < from || e.dim >= ndims || e.width <= 0 {
                    return None;
                }
            }
            for &v in &nest.out_views {
                let ViewSource::Arg(i) = kernel.views[v].source else {
                    return None;
                };
                if !matches!(args.get(i), Some(KernelArg::Buf(_))) {
                    return None;
                }
            }
        }
        for view in &kernel.views {
            if view.extents.len() != ndims {
                return None;
            }
        }
        // Every non-empty rank chunk must be at least as wide as the halo,
        // or a face message would need cells its sender does not own.
        for (d, &b) in bounds.iter().enumerate().skip(from) {
            let a = d - from;
            let parts = kernel.decomposition[a];
            let maxw = kernel
                .nests
                .iter()
                .flat_map(|n| &n.exchanges)
                .filter(|e| e.dim == d)
                .map(|e| e.width)
                .max()
                .unwrap_or(0);
            if maxw == 0 {
                continue;
            }
            for idx in 0..parts {
                let (lo, hi) = ProcessGrid::partition(b.0, b.1, parts, idx);
                if hi > lo && hi - lo < maxw {
                    return None;
                }
            }
        }
        Some(Self {
            bounds,
            from,
            schedule,
        })
    }
}

/// The halo region one exchange moves, in *global* coordinates. Both sides
/// compute it from the **sender's** partition, so the packed and unpacked
/// regions are identical by construction (the per-rank buffers are globally
/// addressed). Decomposed dimensions other than the exchanged one span the
/// sender's owned range; non-decomposed dimensions span the full view
/// extent (star accesses may carry arbitrary offsets there). Empty when the
/// sender owns no cells along any decomposed dimension.
fn transfer_region(
    view: &ViewSpec,
    bounds: &[(i64, i64)],
    decomposition: &[i64],
    sender_coords: &[i64],
    from: usize,
    e: &MpiExchange,
) -> Vec<(i64, i64)> {
    (0..view.extents.len())
        .map(|d| {
            if d < from {
                return (0, view.extents[d]);
            }
            let a = d - from;
            let (olb, oub) = ProcessGrid::partition(
                bounds[d].0,
                bounds[d].1,
                decomposition[a],
                sender_coords[a],
            );
            if olb >= oub {
                (0, 0)
            } else if d == e.dim {
                if e.direction > 0 {
                    (oub - e.width, oub)
                } else {
                    (olb, olb + e.width)
                }
            } else {
                (olb, oub)
            }
        })
        .collect()
}

/// A rank's owned iteration box: its partition along decomposed dimensions,
/// the full bounds elsewhere.
fn owned_box(
    bounds: &[(i64, i64)],
    decomposition: &[i64],
    coords: &[i64],
    from: usize,
) -> Vec<(i64, i64)> {
    (0..bounds.len())
        .map(|d| {
            if d < from {
                bounds[d]
            } else {
                let a = d - from;
                ProcessGrid::partition(bounds[d].0, bounds[d].1, decomposition[a], coords[a])
            }
        })
        .collect()
}

/// The box one rank executes for a given nest. Exchanging nests have the
/// canonical bounds, so this is exactly the owned chunk. A pointwise nest
/// may sweep a wider range (init covering the Dirichlet shells) or a
/// narrower one: each decomposed dimension takes the owned chunk, extended
/// to the nest's own range where the rank owns the first/last canonical
/// cell, then clipped to the nest's range. The boxes stay disjoint across
/// ranks and cover the nest's full iteration space.
fn nest_exec_box(
    nest_bounds: &[(i64, i64)],
    bounds: &[(i64, i64)],
    decomposition: &[i64],
    coords: &[i64],
    from: usize,
) -> Vec<(i64, i64)> {
    (0..nest_bounds.len())
        .map(|d| {
            if d < from {
                return nest_bounds[d];
            }
            let a = d - from;
            let (olb, oub) =
                ProcessGrid::partition(bounds[d].0, bounds[d].1, decomposition[a], coords[a]);
            if olb >= oub {
                return (0, 0);
            }
            let lo = if olb == bounds[d].0 {
                olb.min(nest_bounds[d].0)
            } else {
                olb
            };
            let hi = if oub == bounds[d].1 {
                oub.max(nest_bounds[d].1)
            } else {
                oub
            };
            let lo = lo.max(nest_bounds[d].0);
            let hi = hi.min(nest_bounds[d].1);
            (lo, hi.max(lo))
        })
        .collect()
}

/// The slab of a view this rank's buffer is seeded with at scatter time
/// and contributed back at gather time: the owned range along decomposed
/// dimensions — extended to the array edge where the rank owns the
/// first/last canonical cell (edge shells are written by at most their
/// owner's pointwise nests, and merely round-trip their seeded global
/// values otherwise) — and the full extent elsewhere. Empty for idle
/// ranks; disjoint across ranks, covering every view cell.
fn visible_region(
    view: &ViewSpec,
    bounds: &[(i64, i64)],
    decomposition: &[i64],
    coords: &[i64],
    from: usize,
) -> Vec<(i64, i64)> {
    (0..view.extents.len())
        .map(|d| {
            if d < from {
                return (0, view.extents[d]);
            }
            let a = d - from;
            let (olb, oub) =
                ProcessGrid::partition(bounds[d].0, bounds[d].1, decomposition[a], coords[a]);
            if olb >= oub {
                return (0, 0);
            }
            let lo = if olb == bounds[d].0 { 0 } else { olb };
            let hi = if oub == bounds[d].1 {
                view.extents[d]
            } else {
                oub
            };
            (lo, hi)
        })
        .collect()
}

// --------------------------------------------------------------------------
// Rank body
// --------------------------------------------------------------------------

/// What one rank hands back: its metrics plus the owned slab of every
/// output view (view index, dense payload in `gather_region` order).
struct RankOutput {
    metrics: RankMetrics,
    gathered: Vec<(usize, Vec<f64>)>,
}

/// Everything a rank body needs, shared read-only across rank threads.
struct Shared {
    kernel: CompiledKernel,
    grid: ProcessGrid,
    /// Global contents per pointer-argument index.
    globals: HashMap<usize, Vec<f64>>,
    scalars: Vec<f64>,
    bounds: Vec<(i64, i64)>,
    from: usize,
    /// The caller's byte ledger (if any): every rank's full-size replicated
    /// buffers charge against the same budget, so per-rank replication is
    /// governed, not just the caller's own arrays.
    budget: Option<Arc<MemoryBudget>>,
}

fn wrap(rank: usize, e: IrError) -> MpiSimError {
    MpiSimError::compile_failure(rank, e)
}

#[allow(clippy::type_complexity)]
fn rank_body(ctx: &mut ResilientCtx, sh: &Shared) -> std::result::Result<RankOutput, MpiSimError> {
    let t_start = Instant::now();
    let rank = ctx.rank();
    let coords = sh.grid.coords(rank as i64);
    let views = &sh.kernel.views;
    let decomp = &sh.kernel.decomposition;

    // ---- scatter: full-size, globally addressed local buffers ----
    // Governed allocation: over-budget replication fails the dispatch with
    // a coded error instead of aborting the process.
    let mut mem = match &sh.budget {
        Some(b) => Memory::with_budget(Arc::clone(b)),
        None => Memory::new(),
    };
    let mut arg_buf: HashMap<usize, BufId> = HashMap::new();
    let mut bufs: Vec<BufId> = Vec::with_capacity(views.len());
    for view in views {
        let buf = match view.source {
            ViewSource::Arg(i) => match arg_buf.get(&i) {
                Some(&b) => b,
                None => {
                    let len = sh.globals.get(&i).map(|g| g.len()).unwrap_or(view.len());
                    let b = mem.try_alloc_buffer(len).map_err(|e| wrap(rank, e))?;
                    arg_buf.insert(i, b);
                    b
                }
            },
            ViewSource::SnapshotOf(_) => {
                let len = view.checked_len().map_err(|e| wrap(rank, e))?;
                mem.try_alloc_buffer(len).map_err(|e| wrap(rank, e))?
            }
        };
        bufs.push(buf);
    }
    // NaN-seed every argument buffer, then copy in the visible slab: any
    // read escaping owned+halo territory poisons the bitwise oracle.
    for (&i, &buf) in &arg_buf {
        mem.buffer_mut(buf).fill(f64::NAN);
        let Some(global) = sh.globals.get(&i) else {
            continue;
        };
        for view in views {
            if view.source != ViewSource::Arg(i) {
                continue;
            }
            let vis = visible_region(view, &sh.bounds, decomp, &coords, sh.from);
            let dst = mem.buffer_mut(buf);
            for_each_cell(&view.strides, &vis, |lin| dst[lin] = global[lin]);
        }
    }
    // Stable buffer order for checkpoint/restore.
    let mut ck_bufs: Vec<BufId> = Vec::new();
    for &b in &bufs {
        if !ck_bufs.contains(&b) {
            ck_bufs.push(b);
        }
    }

    let own = owned_box(&sh.bounds, decomp, &coords, sh.from);
    let mut metrics = RankMetrics::default();

    // ---- phases: one per nest, plus a final commit barrier ----
    let nphases = sh.kernel.nests.len() + 1;
    let mut phase = 0usize;
    while phase < nphases {
        let state: Vec<Vec<f64>> = ck_bufs.iter().map(|&b| mem.buffer(b).to_vec()).collect();
        ctx.save_checkpoint(phase, &state);
        if ctx.crash_pending(phase) {
            let (restored, state) = ctx.crash_and_restore(phase)?;
            phase = restored;
            for (&b, data) in ck_bufs.iter().zip(state) {
                mem.restore_buffer(b, data);
            }
            continue;
        }
        if phase == sh.kernel.nests.len() {
            // Commit barrier: every rank's faces are consumed before gather.
            ctx.barrier()?;
            phase += 1;
            continue;
        }
        let nest = &sh.kernel.nests[phase];
        if nest.domain_cells() > 0 {
            let exec_box = if nest.exchanges.is_empty() {
                nest_exec_box(&nest.bounds, &sh.bounds, decomp, &coords, sh.from)
            } else {
                own.clone()
            };
            run_phase(
                ctx,
                sh,
                nest,
                &exec_box,
                &coords,
                &mut mem,
                &bufs,
                &mut metrics,
            )?;
        }
        ctx.barrier()?;
        phase += 1;
    }

    // ---- gather: owned slabs of every written view ----
    let mut out_views: Vec<usize> = sh
        .kernel
        .nests
        .iter()
        .flat_map(|n| n.out_views.iter().copied())
        .collect();
    out_views.sort_unstable();
    out_views.dedup();
    let mut gathered = Vec::with_capacity(out_views.len());
    for v in out_views {
        let region = visible_region(&views[v], &sh.bounds, decomp, &coords, sh.from);
        gathered.push((
            v,
            pack_region(mem.buffer(bufs[v]), &views[v].strides, &region),
        ));
    }
    metrics.wall_seconds = t_start.elapsed().as_secs_f64();
    Ok(RankOutput { metrics, gathered })
}

/// One nest on one rank: refresh snapshots, send faces, compute under the
/// nest's halo schedule, receive + unpack, finish the boundary.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    ctx: &mut ResilientCtx,
    sh: &Shared,
    nest: &Nest,
    exec_box: &[(i64, i64)],
    coords: &[i64],
    mem: &mut Memory,
    bufs: &[BufId],
    metrics: &mut RankMetrics,
) -> std::result::Result<(), MpiSimError> {
    let rank = ctx.rank();
    let views = &sh.kernel.views;
    let decomp = &sh.kernel.decomposition;

    // Value-semantics snapshots refresh from the (pre-exchange) field; the
    // exchange below patches their halos along with the field's.
    for &sv in &nest.snapshots {
        let ViewSource::SnapshotOf(src) = views[sv].source else {
            return Err(wrap(rank, IrError::new("snapshot refresh of non-snapshot")));
        };
        if bufs[src] != bufs[sv] {
            let (s, d) = mem.buffer_pair_mut(bufs[src], bufs[sv]);
            d.copy_from_slice(s);
        }
    }

    // Post every send: my face in `e.direction` to that neighbour. Tags
    // repeat deterministically on both sides, so FIFO per (peer, tag)
    // stream keeps multi-view exchanges paired.
    let t = Instant::now();
    for e in &nest.exchanges {
        let axis = e.dim - sh.from;
        let Some(dst) = sh.grid.neighbor(rank as i64, axis, e.direction) else {
            continue;
        };
        let region = transfer_region(&views[e.view], &sh.bounds, decomp, coords, sh.from, e);
        if region_cells(&region) == 0 {
            continue;
        }
        let payload = pack_region(mem.buffer(bufs[e.view]), &views[e.view].strides, &region);
        metrics.bytes_sent += 8 * payload.len() as u64;
        metrics.messages_sent += 1;
        ctx.send(dst as usize, e.tag, payload);
    }
    metrics.pack_seconds += t.elapsed().as_secs_f64();

    // Matching receives: exchange `e` (everyone sends towards
    // `e.direction`) delivers to me from my `-e.direction` neighbour and
    // fills my halo on that side. Regions derive from the sender's
    // partition — identical on both ends.
    struct PendingRecv {
        src: usize,
        tag: i64,
        view: usize,
        region: Vec<(i64, i64)>,
        side_lo: bool,
        dim: usize,
        width: i64,
    }
    let mut recvs = Vec::new();
    for e in &nest.exchanges {
        let axis = e.dim - sh.from;
        let Some(src) = sh.grid.neighbor(rank as i64, axis, -e.direction) else {
            continue;
        };
        let sender_coords = sh.grid.coords(src);
        let region = transfer_region(
            &views[e.view],
            &sh.bounds,
            decomp,
            &sender_coords,
            sh.from,
            e,
        );
        if region_cells(&region) == 0 {
            continue;
        }
        recvs.push(PendingRecv {
            src: src as usize,
            tag: e.tag,
            view: e.view,
            region,
            side_lo: e.direction > 0,
            dim: e.dim,
            width: e.width,
        });
    }

    // Which owned cells depend on those halos.
    let ndims = exec_box.len();
    let mut shrink_lo = vec![0i64; ndims];
    let mut shrink_hi = vec![0i64; ndims];
    for r in &recvs {
        if r.side_lo {
            shrink_lo[r.dim] = shrink_lo[r.dim].max(r.width);
        } else {
            shrink_hi[r.dim] = shrink_hi[r.dim].max(r.width);
        }
    }

    let schedule = nest.halo_schedule.unwrap_or(HaloSchedule::Blocking);
    let wait_and_unpack = |ctx: &mut ResilientCtx, mem: &mut Memory, metrics: &mut RankMetrics| {
        let t = Instant::now();
        for r in &recvs {
            let payload = ctx.recv(r.src, r.tag)?;
            unpack_region(
                mem.buffer_mut(bufs[r.view]),
                &views[r.view].strides,
                &r.region,
                &payload,
            );
            // The nest reads in-place fields through their snapshots,
            // which were refreshed before the halos landed.
            for &sv in &nest.snapshots {
                if views[sv].source == ViewSource::SnapshotOf(r.view) {
                    unpack_region(
                        mem.buffer_mut(bufs[sv]),
                        &views[sv].strides,
                        &r.region,
                        &payload,
                    );
                }
            }
        }
        metrics.wait_seconds += t.elapsed().as_secs_f64();
        Ok::<(), MpiSimError>(())
    };

    match schedule {
        HaloSchedule::Overlap => {
            let (interior, shells) = split_interior_boundary(exec_box, &shrink_lo, &shrink_hi);
            let t = Instant::now();
            run_nest_box(nest, views, bufs, mem, &sh.scalars, &interior)
                .map_err(|e| wrap(rank, e))?;
            metrics.interior_seconds += t.elapsed().as_secs_f64();
            wait_and_unpack(ctx, mem, metrics)?;
            let t = Instant::now();
            for shell in &shells {
                run_nest_box(nest, views, bufs, mem, &sh.scalars, shell)
                    .map_err(|e| wrap(rank, e))?;
            }
            metrics.boundary_seconds += t.elapsed().as_secs_f64();
        }
        HaloSchedule::Blocking => {
            wait_and_unpack(ctx, mem, metrics)?;
            let t = Instant::now();
            run_nest_box(nest, views, bufs, mem, &sh.scalars, exec_box)
                .map_err(|e| wrap(rank, e))?;
            metrics.boundary_seconds += t.elapsed().as_secs_f64();
        }
    }
    Ok(())
}

// --------------------------------------------------------------------------
// Driver
// --------------------------------------------------------------------------

/// Execute one distributed kernel dispatch for real: scatter the views over
/// `grid`, run every rank as a thread on the resilient transport under
/// `plan` (the crash spec, if any, is interpreted against this dispatch's
/// phase counter), gather the owned slabs back into `memory`, and report
/// measured per-rank timings. Returns `Ok(None)` when the kernel is outside
/// the supported shape — the caller then runs the legacy modeled path.
pub fn run_distributed(
    kernel: &CompiledKernel,
    memory: &mut Memory,
    args: &[KernelArg],
    grid: &ProcessGrid,
    plan: FaultPlan,
) -> Result<Option<DistOutcome>> {
    let Some(setup) = DistSetup::build(kernel, grid, args) else {
        return Ok(None);
    };

    // Snapshot the global contents of every pointer argument.
    let mut globals: HashMap<usize, Vec<f64>> = HashMap::new();
    for view in &kernel.views {
        if let ViewSource::Arg(i) = view.source {
            if let Some(KernelArg::Buf(b)) = args.get(i) {
                globals
                    .entry(i)
                    .or_insert_with(|| memory.buffer(*b).to_vec());
            }
        }
    }
    let scalars: Vec<f64> = args
        .iter()
        .filter_map(|a| match a {
            KernelArg::Scalar(s) => Some(*s),
            KernelArg::Buf(_) => None,
        })
        .collect();

    let shared = Arc::new(Shared {
        kernel: kernel.clone(),
        grid: grid.clone(),
        globals,
        scalars,
        bounds: setup.bounds.clone(),
        from: setup.from,
        budget: memory.budget().cloned(),
    });
    let size = grid.size() as usize;
    let cfg = ResilientConfig {
        checkpoint_interval: 1,
        ..ResilientConfig::default()
    };
    let body_shared = Arc::clone(&shared);
    let results = run_resilient(size, plan, cfg, move |ctx| rank_body(ctx, &body_shared)).map_err(
        |e| match e.into_compile_error() {
            Ok(compile_err) => compile_err,
            Err(other) => IrError::new(format!("distributed execution failed: {other}")),
        },
    )?;

    // Gather: every rank's owned slab lands back in the caller's buffers.
    let mut fault_stats = FaultStats::default();
    let mut per_rank = Vec::with_capacity(size);
    let mut bytes_exchanged = 0u64;
    let mut messages = 0u64;
    for (rank, (out, stats)) in results.into_iter().enumerate() {
        fault_stats.merge(&stats);
        bytes_exchanged += out.metrics.bytes_sent;
        messages += out.metrics.messages_sent;
        let coords = shared.grid.coords(rank as i64);
        for (v, payload) in out.gathered {
            let view = &kernel.views[v];
            let ViewSource::Arg(i) = view.source else {
                continue;
            };
            let Some(KernelArg::Buf(b)) = args.get(i) else {
                continue;
            };
            let region = visible_region(
                view,
                &shared.bounds,
                &kernel.decomposition,
                &coords,
                shared.from,
            );
            unpack_region(memory.buffer_mut(*b), &view.strides, &region, &payload);
        }
        per_rank.push(out.metrics);
    }
    let makespan_seconds = per_rank
        .iter()
        .map(|r| r.wall_seconds)
        .fold(0.0f64, f64::max);
    Ok(Some(DistOutcome {
        per_rank,
        makespan_seconds,
        fault_stats,
        schedule: setup.schedule,
        bytes_exchanged,
        messages,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip_is_exact() {
        let strides = [1i64, 4, 12];
        let data: Vec<f64> = (0..24).map(|i| i as f64).collect();
        let region = [(1, 3), (0, 3), (1, 2)];
        let payload = pack_region(&data, &strides, &region);
        assert_eq!(payload.len(), region_cells(&region));
        let mut dst = vec![0.0; 24];
        unpack_region(&mut dst, &strides, &region, &payload);
        let mut expect = vec![0.0; 24];
        for_each_cell(&strides, &region, |lin| expect[lin] = data[lin]);
        assert_eq!(dst, expect);
    }

    #[test]
    fn interior_and_shells_tile_the_box_exactly_once() {
        let own = [(2i64, 8), (1, 4)];
        let (interior, shells) = split_interior_boundary(&own, &[1, 1], &[2, 0]);
        let strides = [1i64, 16];
        let mut count = vec![0u32; 16 * 8];
        for_each_cell(&strides, &interior, |lin| count[lin] += 1);
        for shell in &shells {
            for_each_cell(&strides, shell, |lin| count[lin] += 1);
        }
        let mut seen = 0usize;
        for_each_cell(&strides, &own, |lin| {
            assert_eq!(count[lin], 1, "cell {lin} covered {} times", count[lin]);
            seen += 1;
        });
        assert_eq!(seen, region_cells(&own));
        assert_eq!(count.iter().map(|&c| c as usize).sum::<usize>(), seen);
    }

    #[test]
    fn empty_interior_still_tiles_exactly() {
        let own = [(5i64, 6)];
        let (interior, shells) = split_interior_boundary(&own, &[1], &[1]);
        assert_eq!(region_cells(&interior), 0);
        let strides = [1i64];
        let mut count = [0u32; 8];
        for shell in &shells {
            for_each_cell(&strides, shell, |lin| count[lin] += 1);
        }
        assert_eq!(count[5], 1);
        assert_eq!(count.iter().sum::<u32>(), 1);
    }
}
