//! Distributed executor: real rank bodies over the simulated MPI substrate.
//!
//! The legacy distributed path executed a kernel once on the calling thread
//! and *charged* a cost-model estimate of the per-rank time. This module
//! replaces that with genuine distributed execution: each view is
//! partitioned over the [`ProcessGrid`] (honouring the kernel's
//! `dmp_decomposition`), every rank runs the compiled kernel over its owned
//! block, and halos move as real face pack → send → recv → unpack traffic.
//! The per-rank schedule mirrors the lowered IR (`dmp-to-mpi` +
//! `mpi-overlap-halos`):
//!
//! ```text
//! post-recv → post-send → compute interior → waitall → compute boundary
//! ```
//!
//! with the blocking variant (overlap pass disabled) receiving every face
//! before computing the whole owned block.
//!
//! **Two substrates.** [`DistMode::Threads`] runs one OS thread per rank on
//! the resilient transport ([`fsc_mpisim::resilient::run_resilient`]) and is
//! capped at [`MAX_THREAD_RANKS`]. [`DistMode::Coop`] (the default) runs
//! every rank as a resumable state-machine task on the work-stealing
//! cooperative scheduler ([`fsc_mpisim::coop::run_tasks`]): thousands of
//! virtual ranks multiplex over a fixed worker pool, parking on blocking
//! receives instead of holding a thread, with optional node-level
//! aggregation coalescing same-edge halo messages between rank groups into
//! single envelopes. Both substrates execute the identical schedule and are
//! bit-identical by construction (the differential proptests enforce it).
//!
//! **Memory model — globally addressed, locally windowed.** Every rank
//! addresses each view with *global* column-major strides, so the compiled
//! bytecode's precomputed linear offsets stay valid unchanged — but it only
//! *stores* a window of whole slabs along the slowest dimension: its owned
//! range extended by the halo margin (and to the array edge where it owns
//! the first/last interior cells). The window's flat base offset rides the
//! bytecode's slab-start plumbing, so per-rank memory is `O(domain/ranks)`
//! and 4096 virtual ranks fit on one machine. Unowned cells inside the
//! window are seeded with a NaN sentinel: any read that escapes the
//! owned-plus-halo region poisons the result and fails the bit-identity
//! oracle instead of silently passing.
//!
//! **Deep halos.** When the `mpi-deep-halos` pass stamps `halo_depth = k ≥
//! 2`, exchange widths are pre-multiplied by `k` and eligible kernels
//! (single exchanging nest, 1-D decomposition) amortise one exchange over
//! `k` consecutive dispatches: cycle 0 exchanges `k·w`-wide faces and every
//! rank redundantly computes `(k−1)·w` ghost cells past its owned block;
//! cycles `1..k` restore the previous dispatch's windows from the
//! [`DeepHaloSession`], send nothing, and shrink the redundant band by `w`
//! per cycle. Ghost replicas stay bit-identical to their owners by
//! induction (same program, same inputs), so results equal `k = 1` exactly
//! while exchange rounds drop `k`-fold. A fingerprint of the caller's
//! argument buffers invalidates the session whenever the host mutates
//! fields between dispatches.
//!
//! **Fallback contract.** [`run_distributed`] returns `Ok(None)` whenever
//! the kernel shape is outside what the executor supports (no proved halo
//! schedule, mismatched nest bounds, rank chunks thinner than the halo
//! width, oversized grids). The dispatcher then falls back to the legacy
//! modeled path — degradation, never a wrong answer.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crate::budget::MemoryBudget;
use crate::kernel::{
    run_nest_box_based, CompiledKernel, HaloSchedule, KernelArg, MpiExchange, Nest, ViewSource,
    ViewSpec,
};
use crate::value::{BufId, Memory};
use fsc_ir::{IrError, Result};
use fsc_mpisim::coop::{run_tasks, CoopConfig, CoopCtx, CoopResilient, CoopTask, Step};
use fsc_mpisim::fault::{FaultPlan, FaultStats};
use fsc_mpisim::resilient::{run_resilient, ResilientConfig, ResilientCtx};
use fsc_mpisim::{MpiSimError, ProcessGrid};

/// Largest rank count the thread-per-rank substrate is asked to host.
pub const MAX_THREAD_RANKS: i64 = 32;

/// Largest rank count the cooperative scheduler is asked to host; larger
/// grids fall back to the modeled path.
pub const MAX_VIRTUAL_RANKS: i64 = 8192;

/// Which substrate executes the rank bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistMode {
    /// One OS thread per rank (capped at [`MAX_THREAD_RANKS`]). Kept for
    /// differential testing against the cooperative scheduler.
    Threads,
    /// Work-stealing cooperative scheduler: rank tasks multiplexed over a
    /// fixed worker pool (up to [`MAX_VIRTUAL_RANKS`] ranks).
    #[default]
    Coop,
}

impl DistMode {
    /// Stable lowercase name for attestation and stats surfaces.
    pub fn as_str(self) -> &'static str {
        match self {
            DistMode::Threads => "threads",
            DistMode::Coop => "coop",
        }
    }
}

/// Execution knobs for one distributed dispatch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DistOptions {
    /// Substrate selection (default: cooperative scheduler).
    pub mode: DistMode,
    /// Worker threads for [`DistMode::Coop`]; `0` = available parallelism.
    pub workers: usize,
    /// Ranks per simulated node for hierarchical halo aggregation;
    /// `0` or `1` disables aggregation.
    pub node_size: usize,
}

/// Measured wall-time breakdown of one rank's dispatch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankMetrics {
    /// Total wall time of the rank body (scatter to gather).
    pub wall_seconds: f64,
    /// Face pack + send posting time.
    pub pack_seconds: f64,
    /// Interior compute time while messages were in flight (overlap
    /// schedule only; zero under blocking).
    pub interior_seconds: f64,
    /// Time blocked in receives + halo unpack (the `waitall`).
    pub wait_seconds: f64,
    /// Boundary-shell compute time (overlap) or whole-block compute time
    /// (blocking).
    pub boundary_seconds: f64,
    /// Halo payload bytes this rank sent.
    pub bytes_sent: u64,
    /// Halo messages this rank sent.
    pub messages_sent: u64,
}

/// Outcome of one real distributed dispatch.
#[derive(Debug, Clone)]
pub struct DistOutcome {
    /// Per-rank measured metrics, indexed by rank.
    pub per_rank: Vec<RankMetrics>,
    /// Measured makespan: the slowest rank's wall time.
    pub makespan_seconds: f64,
    /// Merged fault/recovery counters from the resilient transport.
    pub fault_stats: FaultStats,
    /// The halo schedule every exchanging nest ran under.
    pub schedule: HaloSchedule,
    /// Total halo bytes exchanged across all ranks.
    pub bytes_exchanged: u64,
    /// Total halo messages across all ranks.
    pub messages: u64,
    /// Substrate that executed the rank bodies.
    pub scheduler: DistMode,
    /// Worker threads used (== ranks under [`DistMode::Threads`]).
    pub workers: usize,
    /// Rank tasks popped from another worker's deque (coop only).
    pub steals: u64,
    /// Times a rank task parked on a blocking operation (coop only).
    pub parks: u64,
    /// User-level halo messages the transport carried.
    pub logical_messages: u64,
    /// Physical envelopes those became after node-level aggregation
    /// (== `logical_messages` when aggregation is off or under threads).
    pub physical_messages: u64,
    /// Payload bytes of user-level halo messages.
    pub logical_bytes: u64,
    /// Wire bytes including per-message and per-envelope headers.
    pub physical_bytes: u64,
    /// Ghost-layer depth the kernel ran under (1 = classic halos).
    pub halo_depth: u32,
    /// Exchange rounds this dispatch performed: one per exchanging nest,
    /// zero on communication-free deep-halo cycles.
    pub exchange_rounds: u64,
}

impl DistOutcome {
    /// Fraction of halo latency hidden behind interior compute:
    /// `Σ interior / (Σ interior + Σ wait)` over all ranks. Zero for the
    /// blocking schedule (no compute overlaps the wait).
    pub fn overlap_fraction(&self) -> f64 {
        let interior: f64 = self.per_rank.iter().map(|r| r.interior_seconds).sum();
        let wait: f64 = self.per_rank.iter().map(|r| r.wait_seconds).sum();
        if interior + wait > 0.0 {
            interior / (interior + wait)
        } else {
            0.0
        }
    }

    /// Logical-to-physical message ratio of the aggregating transport
    /// (1.0 when aggregation is off or nothing was sent).
    pub fn aggregation_ratio(&self) -> f64 {
        if self.physical_messages == 0 {
            1.0
        } else {
            self.logical_messages as f64 / self.physical_messages as f64
        }
    }
}

// --------------------------------------------------------------------------
// Region arithmetic (shared with the proptests)
// --------------------------------------------------------------------------

/// Cell count of a per-dimension half-open region.
pub fn region_cells(region: &[(i64, i64)]) -> usize {
    region
        .iter()
        .map(|&(lb, ub)| (ub - lb).max(0) as usize)
        .product()
}

/// Visit every cell of `region` in canonical order (dimension 0 fastest),
/// handing the *global* column-major linear index to `f`.
fn for_each_cell(strides: &[i64], region: &[(i64, i64)], mut f: impl FnMut(usize)) {
    if region_cells(region) == 0 {
        return;
    }
    let ndims = region.len();
    let mut idx: Vec<i64> = region.iter().map(|&(lb, _)| lb).collect();
    loop {
        let lin: i64 = idx.iter().zip(strides).map(|(i, s)| i * s).sum();
        f(lin as usize);
        let mut d = 0;
        loop {
            if d == ndims {
                return;
            }
            idx[d] += 1;
            if idx[d] < region[d].1 {
                break;
            }
            idx[d] = region[d].0;
            d += 1;
        }
    }
}

/// Gather `region` of a column-major buffer into a dense face payload
/// (dimension 0 fastest — the wire format of every halo message).
pub fn pack_region(data: &[f64], strides: &[i64], region: &[(i64, i64)]) -> Vec<f64> {
    pack_region_based(data, strides, region, 0)
}

/// [`pack_region`] from a *windowed* buffer: `base` is the flat offset of
/// the buffer's origin within the global array.
pub fn pack_region_based(
    data: &[f64],
    strides: &[i64],
    region: &[(i64, i64)],
    base: i64,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(region_cells(region));
    for_each_cell(strides, region, |lin| out.push(data[lin - base as usize]));
    out
}

/// Scatter a dense face payload back into `region` of a column-major
/// buffer: the exact inverse of [`pack_region`] over the same region.
pub fn unpack_region(data: &mut [f64], strides: &[i64], region: &[(i64, i64)], payload: &[f64]) {
    unpack_region_based(data, strides, region, 0, payload)
}

/// [`unpack_region`] into a *windowed* buffer with flat base offset `base`.
pub fn unpack_region_based(
    data: &mut [f64],
    strides: &[i64],
    region: &[(i64, i64)],
    base: i64,
    payload: &[f64],
) {
    let mut cursor = 0usize;
    for_each_cell(strides, region, |lin| {
        data[lin - base as usize] = payload[cursor];
        cursor += 1;
    });
    debug_assert_eq!(cursor, payload.len(), "payload size mismatch");
}

/// Split an owned box into a halo-independent interior plus boundary
/// shells. `shrink_lo[d]` / `shrink_hi[d]` give how many cells at each side
/// of dimension `d` depend on incoming halo data. The shells onion-peel:
/// shell `d` spans the interior range in dimensions below `d`, the peeled
/// slab in `d`, and the full owned range above `d`, so interior + shells
/// tile the owned box exactly once — including when the interior collapses
/// to empty (chunks no wider than the halo).
#[allow(clippy::type_complexity)]
pub fn split_interior_boundary(
    own: &[(i64, i64)],
    shrink_lo: &[i64],
    shrink_hi: &[i64],
) -> (Vec<(i64, i64)>, Vec<Vec<(i64, i64)>>) {
    let ndims = own.len();
    let interior: Vec<(i64, i64)> = (0..ndims)
        .map(|d| {
            let ilb = (own[d].0 + shrink_lo[d]).min(own[d].1);
            let iub = (own[d].1 - shrink_hi[d]).max(ilb);
            (ilb, iub)
        })
        .collect();
    let mut shells = Vec::new();
    for d in 0..ndims {
        if shrink_lo[d] == 0 && shrink_hi[d] == 0 {
            continue;
        }
        let frame = |slab: (i64, i64)| -> Vec<(i64, i64)> {
            (0..ndims)
                .map(|k| match k.cmp(&d) {
                    std::cmp::Ordering::Less => interior[k],
                    std::cmp::Ordering::Equal => slab,
                    std::cmp::Ordering::Greater => own[k],
                })
                .collect()
        };
        shells.push(frame((own[d].0, interior[d].0)));
        shells.push(frame((interior[d].1, own[d].1)));
    }
    (interior, shells)
}

// --------------------------------------------------------------------------
// Support analysis
// --------------------------------------------------------------------------

/// Shape-independent facts the rank bodies need, precomputed once.
struct DistSetup {
    /// Canonical partition domain: the iteration bounds shared by every
    /// *exchanging* nest. Pointwise nests may sweep a wider range (e.g. an
    /// init nest covering the Dirichlet shells); they execute on the owned
    /// chunk extended to their own bounds at the domain edges.
    bounds: Vec<(i64, i64)>,
    /// First decomposed data dimension (`ndims - glen`).
    from: usize,
    /// The schedule every exchanging nest runs under.
    schedule: HaloSchedule,
}

impl DistSetup {
    /// Decide whether the kernel fits the real distributed executor.
    /// `None` means "fall back to the modeled path".
    fn build(
        kernel: &CompiledKernel,
        grid: &ProcessGrid,
        args: &[KernelArg],
        mode: DistMode,
    ) -> Option<Self> {
        let glen = kernel.decomposition.len();
        let max_ranks = match mode {
            DistMode::Threads => MAX_THREAD_RANKS,
            DistMode::Coop => MAX_VIRTUAL_RANKS,
        };
        if glen == 0
            || kernel.decomposition != grid.shape
            || grid.size() > max_ranks
            || kernel.nests.is_empty()
        {
            return None;
        }
        // The canonical bounds come from the exchanging nests: they carry
        // the halo dependencies, so their iteration space is what must be
        // block-partitioned consistently across every phase.
        let bounds = kernel
            .nests
            .iter()
            .find(|n| !n.exchanges.is_empty())?
            .bounds
            .clone();
        let ndims = bounds.len();
        if ndims < glen {
            return None;
        }
        let from = ndims - glen;
        let mut schedule = HaloSchedule::Overlap;
        for nest in &kernel.nests {
            if nest.bounds.len() != ndims {
                return None;
            }
            if !nest.exchanges.is_empty() {
                if nest.bounds != bounds {
                    return None;
                }
                // Exchanging nests need the star-shape proof carried by the
                // `halo_schedule` attribute; without it, face messages do
                // not cover the remote dependencies (e.g. corner reads).
                match nest.halo_schedule {
                    Some(HaloSchedule::Overlap) => {}
                    Some(HaloSchedule::Blocking) => schedule = HaloSchedule::Blocking,
                    None => return None,
                }
            } else {
                // Pointwise nests may sweep a different range, covered by
                // extending the edge-owning ranks' chunks
                // ([`nest_exec_box`]); that extension only exists when the
                // canonical domain is non-empty on that dimension.
                for (d, &b) in bounds.iter().enumerate().skip(from) {
                    if nest.bounds[d] != b && b.1 <= b.0 {
                        return None;
                    }
                }
            }
            for e in &nest.exchanges {
                if e.dim < from || e.dim >= ndims || e.width <= 0 {
                    return None;
                }
            }
            for &v in &nest.out_views {
                let ViewSource::Arg(i) = kernel.views[v].source else {
                    return None;
                };
                if !matches!(args.get(i), Some(KernelArg::Buf(_))) {
                    return None;
                }
            }
        }
        for view in &kernel.views {
            if view.extents.len() != ndims {
                return None;
            }
        }
        // Every non-empty rank chunk must be at least as wide as the halo,
        // or a face message would need cells its sender does not own.
        for (d, &b) in bounds.iter().enumerate().skip(from) {
            let a = d - from;
            let parts = kernel.decomposition[a];
            let maxw = kernel
                .nests
                .iter()
                .flat_map(|n| &n.exchanges)
                .filter(|e| e.dim == d)
                .map(|e| e.width)
                .max()
                .unwrap_or(0);
            if maxw == 0 {
                continue;
            }
            for idx in 0..parts {
                let (lo, hi) = ProcessGrid::partition(b.0, b.1, parts, idx);
                if hi > lo && hi - lo < maxw {
                    return None;
                }
            }
        }
        Some(Self {
            bounds,
            from,
            schedule,
        })
    }
}

/// The halo region one exchange moves, in *global* coordinates. Both sides
/// compute it from the **sender's** partition, so the packed and unpacked
/// regions are identical by construction (the per-rank buffers are globally
/// addressed). Decomposed dimensions other than the exchanged one span the
/// sender's owned range; non-decomposed dimensions span the full view
/// extent (star accesses may carry arbitrary offsets there). Empty when the
/// sender owns no cells along any decomposed dimension.
fn transfer_region(
    view: &ViewSpec,
    bounds: &[(i64, i64)],
    decomposition: &[i64],
    sender_coords: &[i64],
    from: usize,
    e: &MpiExchange,
) -> Vec<(i64, i64)> {
    (0..view.extents.len())
        .map(|d| {
            if d < from {
                return (0, view.extents[d]);
            }
            let a = d - from;
            let (olb, oub) = ProcessGrid::partition(
                bounds[d].0,
                bounds[d].1,
                decomposition[a],
                sender_coords[a],
            );
            if olb >= oub {
                (0, 0)
            } else if d == e.dim {
                if e.direction > 0 {
                    (oub - e.width, oub)
                } else {
                    (olb, olb + e.width)
                }
            } else {
                (olb, oub)
            }
        })
        .collect()
}

/// A rank's owned iteration box: its partition along decomposed dimensions,
/// the full bounds elsewhere.
fn owned_box(
    bounds: &[(i64, i64)],
    decomposition: &[i64],
    coords: &[i64],
    from: usize,
) -> Vec<(i64, i64)> {
    (0..bounds.len())
        .map(|d| {
            if d < from {
                bounds[d]
            } else {
                let a = d - from;
                ProcessGrid::partition(bounds[d].0, bounds[d].1, decomposition[a], coords[a])
            }
        })
        .collect()
}

/// The box one rank executes for a given nest. Exchanging nests have the
/// canonical bounds, so this is exactly the owned chunk. A pointwise nest
/// may sweep a wider range (init covering the Dirichlet shells) or a
/// narrower one: each decomposed dimension takes the owned chunk, extended
/// to the nest's own range where the rank owns the first/last canonical
/// cell, then clipped to the nest's range. The boxes stay disjoint across
/// ranks and cover the nest's full iteration space.
fn nest_exec_box(
    nest_bounds: &[(i64, i64)],
    bounds: &[(i64, i64)],
    decomposition: &[i64],
    coords: &[i64],
    from: usize,
) -> Vec<(i64, i64)> {
    (0..nest_bounds.len())
        .map(|d| {
            if d < from {
                return nest_bounds[d];
            }
            let a = d - from;
            let (olb, oub) =
                ProcessGrid::partition(bounds[d].0, bounds[d].1, decomposition[a], coords[a]);
            if olb >= oub {
                return (0, 0);
            }
            let lo = if olb == bounds[d].0 {
                olb.min(nest_bounds[d].0)
            } else {
                olb
            };
            let hi = if oub == bounds[d].1 {
                oub.max(nest_bounds[d].1)
            } else {
                oub
            };
            let lo = lo.max(nest_bounds[d].0);
            let hi = hi.min(nest_bounds[d].1);
            (lo, hi.max(lo))
        })
        .collect()
}

/// The slab of a view this rank's buffer is seeded with at scatter time
/// and contributed back at gather time: the owned range along decomposed
/// dimensions — extended to the array edge where the rank owns the
/// first/last canonical cell (edge shells are written by at most their
/// owner's pointwise nests, and merely round-trip their seeded global
/// values otherwise) — and the full extent elsewhere. Empty for idle
/// ranks; disjoint across ranks, covering every view cell.
fn visible_region(
    view: &ViewSpec,
    bounds: &[(i64, i64)],
    decomposition: &[i64],
    coords: &[i64],
    from: usize,
) -> Vec<(i64, i64)> {
    (0..view.extents.len())
        .map(|d| {
            if d < from {
                return (0, view.extents[d]);
            }
            let a = d - from;
            let (olb, oub) =
                ProcessGrid::partition(bounds[d].0, bounds[d].1, decomposition[a], coords[a]);
            if olb >= oub {
                return (0, 0);
            }
            let lo = if olb == bounds[d].0 { 0 } else { olb };
            let hi = if oub == bounds[d].1 {
                view.extents[d]
            } else {
                oub
            };
            (lo, hi)
        })
        .collect()
}

// --------------------------------------------------------------------------
// Deep-halo sessions
// --------------------------------------------------------------------------

/// Cross-dispatch state of a communication-avoiding deep-halo exchange:
/// after a cycle-0 dispatch exchanged `k`-deep ghost layers, the next
/// `k − 1` dispatches of the same kernel restore each rank's window buffers
/// from here and send nothing. Owned by the dispatcher, keyed per kernel;
/// opaque outside this module.
pub struct DeepHaloSession {
    kernel: String,
    depth: u32,
    /// Next cycle to run, in `1..depth`.
    cycle: i64,
    /// FNV-1a over the caller's argument buffers right after the previous
    /// gather: any host-side mutation between dispatches breaks the match
    /// and forces a fresh exchange.
    fingerprint: u64,
    grid_shape: Vec<i64>,
    /// Per-rank end-of-dispatch window buffers (rank → checkpoint-buffer
    /// order → contents).
    saved: Arc<Vec<Vec<Vec<f64>>>>,
}

impl DeepHaloSession {
    /// The cycle the *next* dispatch of this kernel will run (`1..depth`).
    pub fn next_cycle(&self) -> u32 {
        self.cycle as u32
    }

    fn matches(&self, kernel: &CompiledKernel, grid: &ProcessGrid, fingerprint: u64) -> bool {
        self.kernel == kernel.name
            && self.depth == kernel.halo_depth
            && self.grid_shape == grid.shape
            && self.fingerprint == fingerprint
            && self.cycle >= 1
            && self.cycle < kernel.halo_depth as i64
    }
}

fn fnv_mix(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// FNV-1a over the caller-visible contents of every pointer argument the
/// kernel views reference, in ascending argument order.
fn args_fingerprint(kernel: &CompiledKernel, memory: &Memory, args: &[KernelArg]) -> u64 {
    let mut idxs: Vec<usize> = kernel
        .views
        .iter()
        .filter_map(|v| match v.source {
            ViewSource::Arg(i) => Some(i),
            ViewSource::SnapshotOf(_) => None,
        })
        .collect();
    idxs.sort_unstable();
    idxs.dedup();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for i in idxs {
        let Some(KernelArg::Buf(b)) = args.get(i) else {
            continue;
        };
        fnv_mix(&mut h, i as u64);
        for &x in memory.buffer(*b) {
            fnv_mix(&mut h, x.to_bits());
        }
    }
    h
}

/// Deep-halo facts shared by every rank body of one dispatch.
struct DeepShared {
    /// Stamped ghost depth `k ≥ 2`.
    depth: i64,
    /// This dispatch's cycle in `0..k`; sends/recvs happen only at 0.
    cycle: i64,
    /// Previous dispatch's per-rank windows (cycles `> 0` only).
    saved: Option<Arc<Vec<Vec<Vec<f64>>>>>,
}

/// Whether a kernel can amortise exchanges across dispatches: the first
/// nest exchanges over a 1-D decomposition and every other nest is
/// pointwise (no exchanges — all reads local). Multi-dimension grids would
/// need corner exchanges for the redundant ghost band; a *second*
/// exchanging nest would demand mid-kernel traffic on communication-free
/// cycles. Pointwise trailer nests are safe because they run over the same
/// deep-extended box (see [`phase_exec_box`]), keeping every ghost replica
/// bit-identical to its owner by redundant compute.
fn deep_capable(kernel: &CompiledKernel) -> bool {
    kernel.halo_depth >= 2
        && kernel.decomposition.len() == 1
        && !kernel.nests.is_empty()
        && !kernel.nests[0].exchanges.is_empty()
        && kernel.nests[1..].iter().all(|n| n.exchanges.is_empty())
}

// --------------------------------------------------------------------------
// Per-rank windowed memory
// --------------------------------------------------------------------------

/// One rank's working set: windowed buffers, per-view flat base offsets,
/// and the deduplicated checkpoint order.
struct RankMem {
    mem: Memory,
    bufs: Vec<BufId>,
    /// Stable deduplicated buffer order for checkpoint/restore and
    /// deep-halo window save/restore.
    ck_bufs: Vec<BufId>,
    /// Flat offset of each view's buffer origin within the global array.
    bases: Vec<i64>,
}

/// Whether a view's slowest dimension dominates its layout: every full
/// slab of dimension `l` is contiguous in `[c_l·stride_l, (c_l+1)·stride_l)`,
/// so a window of whole slabs is one contiguous range.
fn slab_major(view: &ViewSpec, l: usize) -> bool {
    let sl = view.strides[l];
    if sl <= 0 {
        return false;
    }
    let mut span = 0i64;
    for d in 0..l {
        let s = view.strides[d];
        if s < 0 {
            return false;
        }
        span += s * (view.extents[d] - 1).max(0);
    }
    span < sl
}

/// Build one rank's memory: a window of whole slabs along the slowest
/// dimension per buffer — the owned range extended by the halo margin and
/// to the array edge where the rank owns the first/last canonical cell —
/// NaN-seeded with the visible region copied in from the globals (unless
/// `seed` is false: deep-halo cycles restore saved windows instead).
/// Falls back to full-size buffers when any view's layout defeats slab
/// windowing, so correctness never depends on the memory optimisation.
fn build_rank_mem(sh: &Shared, rank: usize, coords: &[i64], seed: bool) -> Result2<RankMem> {
    let views = &sh.kernel.views;
    let decomp = &sh.kernel.decomposition;
    let ndims = sh.bounds.len();
    let l = ndims - 1;
    let axis = l - sh.from;
    let (olb, oub) =
        ProcessGrid::partition(sh.bounds[l].0, sh.bounds[l].1, decomp[axis], coords[axis]);
    // Halo margin on the slowest dimension: the widest exchange. Deep-halo
    // widths are pre-multiplied by `k`, so the redundant compute band
    // (`(k−1)·w` cells) is covered automatically.
    let margin = sh
        .kernel
        .nests
        .iter()
        .flat_map(|n| &n.exchanges)
        .filter(|e| e.dim == l)
        .map(|e| e.width)
        .max()
        .unwrap_or(0);

    // Windowing is all-or-nothing per rank: every view must be slab-major
    // and views sharing a buffer (same argument, or snapshot of it) must
    // agree on the slowest dimension's stride and extent, or whole-buffer
    // operations (snapshot refresh) would mix windows.
    let mut windowed = views.iter().all(|v| slab_major(v, l));
    if windowed {
        let mut arg_shape: HashMap<usize, (i64, i64)> = HashMap::new();
        for view in views {
            let i = match view.source {
                ViewSource::Arg(i) => i,
                ViewSource::SnapshotOf(src) => match views[src].source {
                    ViewSource::Arg(i) => i,
                    ViewSource::SnapshotOf(_) => {
                        windowed = false;
                        break;
                    }
                },
            };
            let shape = (view.strides[l], view.extents[l]);
            if *arg_shape.entry(i).or_insert(shape) != shape {
                windowed = false;
                break;
            }
        }
    }

    // Window along dim `l`, in slab indices, per underlying argument:
    // the union over that argument's views (they agree on stride/extent).
    let win_of = |ext: i64| -> (i64, i64) {
        if olb >= oub {
            return (0, 0);
        }
        let lo = if olb == sh.bounds[l].0 {
            0
        } else {
            (olb - margin).max(0)
        };
        let hi = if oub == sh.bounds[l].1 {
            ext
        } else {
            (oub + margin).min(ext)
        };
        (lo, hi.max(lo))
    };

    let mut mem = match &sh.budget {
        Some(b) => Memory::with_budget(Arc::clone(b)),
        None => Memory::new(),
    };
    let mut arg_buf: HashMap<usize, (BufId, i64)> = HashMap::new();
    let mut bufs: Vec<BufId> = Vec::with_capacity(views.len());
    let mut bases: Vec<i64> = Vec::with_capacity(views.len());
    for view in views {
        let (buf, base) = match view.source {
            ViewSource::Arg(i) => match arg_buf.get(&i) {
                Some(&(b, base)) => (b, base),
                None => {
                    let (len, base) = if windowed {
                        let (lo, hi) = win_of(view.extents[l]);
                        ((view.strides[l] * (hi - lo)) as usize, view.strides[l] * lo)
                    } else {
                        (sh.globals.get(&i).map(|g| g.len()).unwrap_or(view.len()), 0)
                    };
                    let b = mem.try_alloc_buffer(len).map_err(|e| wrap(rank, e))?;
                    arg_buf.insert(i, (b, base));
                    (b, base)
                }
            },
            ViewSource::SnapshotOf(_) => {
                let (len, base) = if windowed {
                    let (lo, hi) = win_of(view.extents[l]);
                    ((view.strides[l] * (hi - lo)) as usize, view.strides[l] * lo)
                } else {
                    (view.checked_len().map_err(|e| wrap(rank, e))?, 0)
                };
                (mem.try_alloc_buffer(len).map_err(|e| wrap(rank, e))?, base)
            }
        };
        bufs.push(buf);
        bases.push(base);
    }
    if seed {
        // NaN-seed every argument buffer, then copy in the visible slab:
        // any read escaping owned+halo territory poisons the bitwise
        // oracle.
        for (&i, &(buf, base)) in &arg_buf {
            mem.buffer_mut(buf).fill(f64::NAN);
            let Some(global) = sh.globals.get(&i) else {
                continue;
            };
            for view in views {
                if view.source != ViewSource::Arg(i) {
                    continue;
                }
                let vis = visible_region(view, &sh.bounds, decomp, coords, sh.from);
                let dst = mem.buffer_mut(buf);
                for_each_cell(&view.strides, &vis, |lin| {
                    dst[lin - base as usize] = global[lin];
                });
            }
        }
    }
    // Stable buffer order for checkpoint/restore.
    let mut ck_bufs: Vec<BufId> = Vec::new();
    for &b in &bufs {
        if !ck_bufs.contains(&b) {
            ck_bufs.push(b);
        }
    }
    Ok(RankMem {
        mem,
        bufs,
        ck_bufs,
        bases,
    })
}

// --------------------------------------------------------------------------
// Rank body building blocks (shared by both substrates)
// --------------------------------------------------------------------------

/// What one rank hands back: its metrics plus the owned slab of every
/// output view (view index, dense payload in gather-region order), plus —
/// under a deep-halo session — its end-of-dispatch window buffers in
/// checkpoint order.
struct RankOutput {
    metrics: RankMetrics,
    gathered: Vec<(usize, Vec<f64>)>,
    windows: Vec<Vec<f64>>,
}

/// Everything a rank body needs, shared read-only across rank tasks.
struct Shared {
    kernel: CompiledKernel,
    grid: ProcessGrid,
    /// Global contents per pointer-argument index.
    globals: HashMap<usize, Vec<f64>>,
    scalars: Vec<f64>,
    bounds: Vec<(i64, i64)>,
    from: usize,
    /// Deep-halo dispatch state (`None` when the kernel is not eligible).
    deep: Option<DeepShared>,
    /// The caller's byte ledger (if any): every rank's windowed buffers
    /// charge against the same budget, so per-rank replication is
    /// governed, not just the caller's own arrays.
    budget: Option<Arc<MemoryBudget>>,
}

type Result2<T> = std::result::Result<T, MpiSimError>;

fn wrap(rank: usize, e: IrError) -> MpiSimError {
    MpiSimError::compile_failure(rank, e)
}

/// A posted halo receive: where it comes from and where it lands.
struct PendingRecv {
    src: usize,
    tag: i64,
    view: usize,
    region: Vec<(i64, i64)>,
    side_lo: bool,
    dim: usize,
    width: i64,
}

/// The box one rank computes for `nest` this phase, and whether this phase
/// exchanges halos. Deep-halo cycles extend the base box by `(k−1−cycle)·w`
/// toward live neighbours (redundant ghost compute) and exchange only at
/// cycle 0. The extension is *kernel-wide* — derived from every nest's
/// exchanges and applied to pointwise nests too — so a trailing copy-back
/// phase updates the same redundant ghost band the exchanging sweep
/// computed, keeping ghost replicas in lockstep across cycles.
fn phase_exec_box(
    sh: &Shared,
    nest: &Nest,
    coords: &[i64],
    own: &[(i64, i64)],
) -> (Vec<(i64, i64)>, bool) {
    let pointwise = nest.exchanges.is_empty();
    let base = if pointwise {
        nest_exec_box(
            &nest.bounds,
            &sh.bounds,
            &sh.kernel.decomposition,
            coords,
            sh.from,
        )
    } else {
        own.to_vec()
    };
    let Some(deep) = &sh.deep else {
        return (base, true);
    };
    let mut exec = base.clone();
    if region_cells(&base) > 0 {
        let rank_i = sh.grid.rank_of(coords);
        for e in sh.kernel.nests.iter().flat_map(|n| &n.exchanges) {
            let axis = e.dim - sh.from;
            let base_w = e.width / deep.depth;
            let ext = base_w * (deep.depth - 1 - deep.cycle).max(0);
            if ext == 0 {
                continue;
            }
            // I receive from my `-e.direction` neighbour; the ghost band I
            // redundantly compute sits on that side.
            if sh.grid.neighbor(rank_i, axis, -e.direction).is_some() {
                if e.direction > 0 {
                    exec[e.dim].0 = exec[e.dim].0.min(base[e.dim].0 - ext);
                } else {
                    exec[e.dim].1 = exec[e.dim].1.max(base[e.dim].1 + ext);
                }
            }
        }
    }
    (exec, pointwise || deep.cycle == 0)
}

/// Refresh value-semantics snapshots from their (pre-exchange) fields; the
/// exchange afterwards patches their halos along with the field's.
fn refresh_snapshots(sh: &Shared, nest: &Nest, rm: &mut RankMem, rank: usize) -> Result2<()> {
    let views = &sh.kernel.views;
    for &sv in &nest.snapshots {
        let ViewSource::SnapshotOf(src) = views[sv].source else {
            return Err(wrap(rank, IrError::new("snapshot refresh of non-snapshot")));
        };
        if rm.bufs[src] != rm.bufs[sv] {
            let (s, d) = rm.mem.buffer_pair_mut(rm.bufs[src], rm.bufs[sv]);
            d.copy_from_slice(s);
        }
    }
    Ok(())
}

/// Post every halo send of `nest`: my face in `e.direction` to that
/// neighbour, through the substrate-specific `send`. Tags repeat
/// deterministically on both sides, so FIFO per (peer, tag) stream keeps
/// multi-view exchanges paired.
fn post_halo_sends(
    sh: &Shared,
    nest: &Nest,
    coords: &[i64],
    rank: usize,
    rm: &RankMem,
    metrics: &mut RankMetrics,
    mut send: impl FnMut(usize, i64, Vec<f64>),
) {
    let views = &sh.kernel.views;
    let decomp = &sh.kernel.decomposition;
    let t = Instant::now();
    for e in &nest.exchanges {
        let axis = e.dim - sh.from;
        let Some(dst) = sh.grid.neighbor(rank as i64, axis, e.direction) else {
            continue;
        };
        let region = transfer_region(&views[e.view], &sh.bounds, decomp, coords, sh.from, e);
        if region_cells(&region) == 0 {
            continue;
        }
        let payload = pack_region_based(
            rm.mem.buffer(rm.bufs[e.view]),
            &views[e.view].strides,
            &region,
            rm.bases[e.view],
        );
        metrics.bytes_sent += 8 * payload.len() as u64;
        metrics.messages_sent += 1;
        send(dst as usize, e.tag, payload);
    }
    metrics.pack_seconds += t.elapsed().as_secs_f64();
}

/// Matching receives for `nest`: exchange `e` (everyone sends towards
/// `e.direction`) delivers to me from my `-e.direction` neighbour and fills
/// my halo on that side. Regions derive from the sender's partition —
/// identical on both ends.
fn build_halo_recvs(sh: &Shared, nest: &Nest, rank: usize) -> Vec<PendingRecv> {
    let views = &sh.kernel.views;
    let decomp = &sh.kernel.decomposition;
    let mut recvs = Vec::new();
    for e in &nest.exchanges {
        let axis = e.dim - sh.from;
        let Some(src) = sh.grid.neighbor(rank as i64, axis, -e.direction) else {
            continue;
        };
        let sender_coords = sh.grid.coords(src);
        let region = transfer_region(
            &views[e.view],
            &sh.bounds,
            decomp,
            &sender_coords,
            sh.from,
            e,
        );
        if region_cells(&region) == 0 {
            continue;
        }
        recvs.push(PendingRecv {
            src: src as usize,
            tag: e.tag,
            view: e.view,
            region,
            side_lo: e.direction > 0,
            dim: e.dim,
            width: e.width,
        });
    }
    recvs
}

/// Which owned-box cells depend on the incoming halos, per dimension side.
fn halo_shrinks(recvs: &[PendingRecv], ndims: usize) -> (Vec<i64>, Vec<i64>) {
    let mut shrink_lo = vec![0i64; ndims];
    let mut shrink_hi = vec![0i64; ndims];
    for r in recvs {
        if r.side_lo {
            shrink_lo[r.dim] = shrink_lo[r.dim].max(r.width);
        } else {
            shrink_hi[r.dim] = shrink_hi[r.dim].max(r.width);
        }
    }
    (shrink_lo, shrink_hi)
}

/// Land one received halo payload: unpack into the target view and every
/// snapshot of it (snapshots were refreshed before the halos arrived).
/// A rank that owns no cells still consumes its neighbours' faces (the
/// senders post by *their* partition) but has nothing to store them in —
/// its window is empty and the data is never read, so drop the payload.
fn unpack_halo(sh: &Shared, nest: &Nest, rm: &mut RankMem, r: &PendingRecv, payload: &[f64]) {
    let views = &sh.kernel.views;
    if rm.mem.buffer(rm.bufs[r.view]).is_empty() {
        return;
    }
    unpack_region_based(
        rm.mem.buffer_mut(rm.bufs[r.view]),
        &views[r.view].strides,
        &r.region,
        rm.bases[r.view],
        payload,
    );
    for &sv in &nest.snapshots {
        if views[sv].source == ViewSource::SnapshotOf(r.view) {
            unpack_region_based(
                rm.mem.buffer_mut(rm.bufs[sv]),
                &views[sv].strides,
                &r.region,
                rm.bases[sv],
                payload,
            );
        }
    }
}

/// Run one compute box of `nest` against the rank's windowed buffers.
fn run_rank_box(
    sh: &Shared,
    nest: &Nest,
    rm: &mut RankMem,
    rank: usize,
    local: &[(i64, i64)],
) -> Result2<()> {
    run_nest_box_based(
        nest,
        &sh.kernel.views,
        &rm.bufs,
        &mut rm.mem,
        &sh.scalars,
        local,
        &rm.bases,
    )
    .map_err(|e| wrap(rank, e))
}

/// Pack the owned slab of every written view for the gather, and — under a
/// deep-halo session — snapshot the window buffers for the next cycle.
fn gather_rank_output(
    sh: &Shared,
    rm: &RankMem,
    coords: &[i64],
    metrics: RankMetrics,
) -> RankOutput {
    let views = &sh.kernel.views;
    let decomp = &sh.kernel.decomposition;
    let mut out_views: Vec<usize> = sh
        .kernel
        .nests
        .iter()
        .flat_map(|n| n.out_views.iter().copied())
        .collect();
    out_views.sort_unstable();
    out_views.dedup();
    let mut gathered = Vec::with_capacity(out_views.len());
    for v in out_views {
        let region = visible_region(&views[v], &sh.bounds, decomp, coords, sh.from);
        gathered.push((
            v,
            pack_region_based(
                rm.mem.buffer(rm.bufs[v]),
                &views[v].strides,
                &region,
                rm.bases[v],
            ),
        ));
    }
    let windows = if sh.deep.is_some() {
        rm.ck_bufs
            .iter()
            .map(|&b| rm.mem.buffer(b).to_vec())
            .collect()
    } else {
        Vec::new()
    };
    RankOutput {
        metrics,
        gathered,
        windows,
    }
}

/// Restore a deep-halo cycle's starting state: the previous dispatch's
/// window buffers, in checkpoint order.
fn restore_deep_windows(sh: &Shared, rm: &mut RankMem, rank: usize) -> Result2<()> {
    let Some(deep) = &sh.deep else {
        return Ok(());
    };
    let Some(saved) = &deep.saved else {
        return Ok(());
    };
    let windows = saved.get(rank).ok_or_else(|| {
        MpiSimError::InvalidConfig(format!("deep-halo session missing rank {rank} windows"))
    })?;
    if windows.len() != rm.ck_bufs.len() {
        return Err(MpiSimError::InvalidConfig(format!(
            "deep-halo session buffer count mismatch on rank {rank}"
        )));
    }
    for (&b, data) in rm.ck_bufs.iter().zip(windows) {
        rm.mem.restore_buffer(b, data.clone());
    }
    Ok(())
}

// --------------------------------------------------------------------------
// Thread-per-rank substrate
// --------------------------------------------------------------------------

fn rank_body(ctx: &mut ResilientCtx, sh: &Shared) -> Result2<RankOutput> {
    let t_start = Instant::now();
    let rank = ctx.rank();
    let coords = sh.grid.coords(rank as i64);
    let seed = sh.deep.as_ref().is_none_or(|d| d.cycle == 0);
    let mut rm = build_rank_mem(sh, rank, &coords, seed)?;
    if !seed {
        restore_deep_windows(sh, &mut rm, rank)?;
    }

    let own = owned_box(&sh.bounds, &sh.kernel.decomposition, &coords, sh.from);
    let mut metrics = RankMetrics::default();

    // ---- phases: one per nest, plus a final commit barrier ----
    let nphases = sh.kernel.nests.len() + 1;
    let mut phase = 0usize;
    while phase < nphases {
        let state: Vec<Vec<f64>> = rm
            .ck_bufs
            .iter()
            .map(|&b| rm.mem.buffer(b).to_vec())
            .collect();
        ctx.save_checkpoint(phase, &state);
        if ctx.crash_pending(phase) {
            let (restored, state) = ctx.crash_and_restore(phase)?;
            phase = restored;
            for (&b, data) in rm.ck_bufs.iter().zip(state) {
                rm.mem.restore_buffer(b, data);
            }
            continue;
        }
        if phase == sh.kernel.nests.len() {
            // Commit barrier: every rank's faces are consumed before gather.
            ctx.barrier()?;
            phase += 1;
            continue;
        }
        let nest = &sh.kernel.nests[phase];
        if nest.domain_cells() > 0 {
            run_phase(ctx, sh, nest, &coords, &own, &mut rm, &mut metrics)?;
        }
        ctx.barrier()?;
        phase += 1;
    }

    metrics.wall_seconds = t_start.elapsed().as_secs_f64();
    Ok(gather_rank_output(sh, &rm, &coords, metrics))
}

/// One nest on one rank (thread substrate): refresh snapshots, send faces,
/// compute under the nest's halo schedule, receive + unpack, finish the
/// boundary.
fn run_phase(
    ctx: &mut ResilientCtx,
    sh: &Shared,
    nest: &Nest,
    coords: &[i64],
    own: &[(i64, i64)],
    rm: &mut RankMem,
    metrics: &mut RankMetrics,
) -> Result2<()> {
    let rank = ctx.rank();
    refresh_snapshots(sh, nest, rm, rank)?;
    let (exec_box, exchange) = phase_exec_box(sh, nest, coords, own);
    let recvs = if exchange {
        post_halo_sends(sh, nest, coords, rank, rm, metrics, |dst, tag, payload| {
            ctx.send(dst, tag, payload)
        });
        build_halo_recvs(sh, nest, rank)
    } else {
        Vec::new()
    };
    let (shrink_lo, shrink_hi) = halo_shrinks(&recvs, exec_box.len());

    let schedule = nest.halo_schedule.unwrap_or(HaloSchedule::Blocking);
    let wait_and_unpack = |ctx: &mut ResilientCtx, rm: &mut RankMem, metrics: &mut RankMetrics| {
        let t = Instant::now();
        for r in &recvs {
            let payload = ctx.recv(r.src, r.tag)?;
            unpack_halo(sh, nest, rm, r, &payload);
        }
        metrics.wait_seconds += t.elapsed().as_secs_f64();
        Ok::<(), MpiSimError>(())
    };

    match schedule {
        HaloSchedule::Overlap => {
            let (interior, shells) = split_interior_boundary(&exec_box, &shrink_lo, &shrink_hi);
            let t = Instant::now();
            run_rank_box(sh, nest, rm, rank, &interior)?;
            metrics.interior_seconds += t.elapsed().as_secs_f64();
            wait_and_unpack(ctx, rm, metrics)?;
            let t = Instant::now();
            for shell in &shells {
                run_rank_box(sh, nest, rm, rank, shell)?;
            }
            metrics.boundary_seconds += t.elapsed().as_secs_f64();
        }
        HaloSchedule::Blocking => {
            wait_and_unpack(ctx, rm, metrics)?;
            let t = Instant::now();
            run_rank_box(sh, nest, rm, rank, &exec_box)?;
            metrics.boundary_seconds += t.elapsed().as_secs_f64();
        }
    }
    Ok(())
}

// --------------------------------------------------------------------------
// Cooperative-scheduler substrate
// --------------------------------------------------------------------------

/// What a rank task does once its pending receives complete.
enum PostWait {
    /// Overlap schedule: interior already ran; sweep the boundary shells.
    Shells(Vec<Vec<(i64, i64)>>),
    /// Blocking schedule: sweep the whole execution box.
    Whole(Vec<(i64, i64)>),
}

/// Resumable control state of one rank task — the thread body's control
/// flow flattened into the points where it can block.
enum TaskState {
    /// Lazy scatter on first step (the factory runs serially).
    Start,
    /// Top of the phase loop: checkpoint, crash check, dispatch.
    PhaseEntry,
    /// Waiting for halo receives `idx..` of this phase.
    Wait {
        recvs: Vec<PendingRecv>,
        idx: usize,
        post: PostWait,
        since: Instant,
    },
    /// In the after-phase (or commit) barrier.
    Barrier,
    /// Body complete; draining unacked protocol traffic.
    Drain,
    /// Transient placeholder while an arm executes; never observed.
    Poisoned,
}

/// One virtual rank as a cooperative task: the same schedule as
/// [`rank_body`], resumable at every blocking receive and barrier.
struct DistTask {
    sh: Arc<Shared>,
    res: CoopResilient,
    coords: Vec<i64>,
    own: Vec<(i64, i64)>,
    rm: Option<RankMem>,
    metrics: RankMetrics,
    t_start: Instant,
    phase: usize,
    st: TaskState,
    out: Option<RankOutput>,
}

impl DistTask {
    fn new(
        rank: usize,
        size: usize,
        sh: Arc<Shared>,
        plan: &FaultPlan,
        cfg: ResilientConfig,
    ) -> Self {
        let coords = sh.grid.coords(rank as i64);
        let own = owned_box(&sh.bounds, &sh.kernel.decomposition, &coords, sh.from);
        Self {
            res: CoopResilient::new(rank, size, plan, cfg),
            sh,
            coords,
            own,
            rm: None,
            metrics: RankMetrics::default(),
            t_start: Instant::now(),
            phase: 0,
            st: TaskState::Start,
            out: None,
        }
    }
}

impl CoopTask for DistTask {
    type Out = (RankOutput, FaultStats);

    fn step(&mut self, ctx: &mut CoopCtx<'_>) -> Result2<Step<Self::Out>> {
        let rank = self.res.rank();
        loop {
            match std::mem::replace(&mut self.st, TaskState::Poisoned) {
                TaskState::Start => {
                    self.t_start = Instant::now();
                    let seed = self.sh.deep.as_ref().is_none_or(|d| d.cycle == 0);
                    let mut rm = build_rank_mem(&self.sh, rank, &self.coords, seed)?;
                    if !seed {
                        restore_deep_windows(&self.sh, &mut rm, rank)?;
                    }
                    self.rm = Some(rm);
                    self.st = TaskState::PhaseEntry;
                }
                TaskState::PhaseEntry => {
                    let sh = Arc::clone(&self.sh);
                    let rm = self.rm.as_mut().expect("scattered before phases");
                    if self.phase > sh.kernel.nests.len() {
                        // All phases (incl. commit barrier) done: gather.
                        self.metrics.wall_seconds = self.t_start.elapsed().as_secs_f64();
                        self.out = Some(gather_rank_output(
                            &sh,
                            rm,
                            &self.coords,
                            std::mem::take(&mut self.metrics),
                        ));
                        self.st = TaskState::Drain;
                        continue;
                    }
                    let state: Vec<Vec<f64>> = rm
                        .ck_bufs
                        .iter()
                        .map(|&b| rm.mem.buffer(b).to_vec())
                        .collect();
                    self.res.save_checkpoint(self.phase, &state);
                    if self.res.crash_pending(self.phase) {
                        let (restored, state) = self.res.crash_and_restore(self.phase)?;
                        self.phase = restored;
                        for (&b, data) in rm.ck_bufs.iter().zip(state) {
                            rm.mem.restore_buffer(b, data);
                        }
                        self.st = TaskState::PhaseEntry;
                        continue;
                    }
                    if self.phase == sh.kernel.nests.len() {
                        self.st = TaskState::Barrier;
                        continue;
                    }
                    let nest = &sh.kernel.nests[self.phase];
                    if nest.domain_cells() == 0 {
                        self.st = TaskState::Barrier;
                        continue;
                    }
                    refresh_snapshots(&sh, nest, rm, rank)?;
                    let (exec_box, exchange) = phase_exec_box(&sh, nest, &self.coords, &self.own);
                    let recvs = if exchange {
                        let res = &mut self.res;
                        post_halo_sends(
                            &sh,
                            nest,
                            &self.coords,
                            rank,
                            rm,
                            &mut self.metrics,
                            |dst, tag, payload| res.send(ctx, dst, tag, payload),
                        );
                        build_halo_recvs(&sh, nest, rank)
                    } else {
                        Vec::new()
                    };
                    let (shrink_lo, shrink_hi) = halo_shrinks(&recvs, exec_box.len());
                    let schedule = nest.halo_schedule.unwrap_or(HaloSchedule::Blocking);
                    let post = match schedule {
                        HaloSchedule::Overlap => {
                            let (interior, shells) =
                                split_interior_boundary(&exec_box, &shrink_lo, &shrink_hi);
                            let t = Instant::now();
                            run_rank_box(&sh, nest, rm, rank, &interior)?;
                            self.metrics.interior_seconds += t.elapsed().as_secs_f64();
                            PostWait::Shells(shells)
                        }
                        HaloSchedule::Blocking => PostWait::Whole(exec_box),
                    };
                    self.st = TaskState::Wait {
                        recvs,
                        idx: 0,
                        post,
                        since: Instant::now(),
                    };
                }
                TaskState::Wait {
                    recvs,
                    mut idx,
                    post,
                    since,
                } => {
                    let sh = Arc::clone(&self.sh);
                    let nest = &sh.kernel.nests[self.phase];
                    let rm = self.rm.as_mut().expect("scattered before phases");
                    while idx < recvs.len() {
                        let r = &recvs[idx];
                        match self.res.recv_poll(ctx, r.src, r.tag)? {
                            Some(payload) => {
                                unpack_halo(&sh, nest, rm, r, &payload);
                                idx += 1;
                            }
                            None => {
                                self.st = TaskState::Wait {
                                    recvs,
                                    idx,
                                    post,
                                    since,
                                };
                                return Ok(Step::Blocked);
                            }
                        }
                    }
                    // Wait time includes parked time: the latency the
                    // overlap schedule exists to hide.
                    self.metrics.wait_seconds += since.elapsed().as_secs_f64();
                    let t = Instant::now();
                    match post {
                        PostWait::Shells(shells) => {
                            for shell in &shells {
                                run_rank_box(&sh, nest, rm, rank, shell)?;
                            }
                        }
                        PostWait::Whole(exec_box) => {
                            run_rank_box(&sh, nest, rm, rank, &exec_box)?;
                        }
                    }
                    self.metrics.boundary_seconds += t.elapsed().as_secs_f64();
                    self.st = TaskState::Barrier;
                }
                TaskState::Barrier => {
                    if self.res.barrier_poll(ctx)? {
                        self.phase += 1;
                        self.st = TaskState::PhaseEntry;
                    } else {
                        self.st = TaskState::Barrier;
                        return Ok(Step::Blocked);
                    }
                }
                TaskState::Drain => {
                    if self.res.drain_poll(ctx)? {
                        let out = self.out.take().expect("gathered before drain");
                        return Ok(Step::Done((out, self.res.stats)));
                    }
                    self.st = TaskState::Drain;
                    return Ok(Step::Blocked);
                }
                TaskState::Poisoned => unreachable!("task state poisoned"),
            }
        }
    }
}

// --------------------------------------------------------------------------
// Driver
// --------------------------------------------------------------------------

/// Execute one distributed kernel dispatch for real: scatter the views over
/// `grid`, run every rank on the selected substrate under `plan` (the crash
/// spec, if any, is interpreted against this dispatch's phase counter),
/// gather the owned slabs back into `memory`, and report measured per-rank
/// timings plus scheduler/transport counters. `deep` threads the
/// cross-dispatch deep-halo session (pass `&mut None` to disable). Returns
/// `Ok(None)` when the kernel is outside the supported shape — the caller
/// then runs the legacy modeled path.
pub fn run_distributed(
    kernel: &CompiledKernel,
    memory: &mut Memory,
    args: &[KernelArg],
    grid: &ProcessGrid,
    plan: FaultPlan,
    opts: &DistOptions,
    deep: &mut Option<DeepHaloSession>,
) -> Result<Option<DistOutcome>> {
    let Some(setup) = DistSetup::build(kernel, grid, args, opts.mode) else {
        return Ok(None);
    };

    // Snapshot the global contents of every pointer argument.
    let mut globals: HashMap<usize, Vec<f64>> = HashMap::new();
    for view in &kernel.views {
        if let ViewSource::Arg(i) = view.source {
            if let Some(KernelArg::Buf(b)) = args.get(i) {
                globals
                    .entry(i)
                    .or_insert_with(|| memory.buffer(*b).to_vec());
            }
        }
    }
    let scalars: Vec<f64> = args
        .iter()
        .filter_map(|a| match a {
            KernelArg::Scalar(s) => Some(*s),
            KernelArg::Buf(_) => None,
        })
        .collect();

    // Deep-halo session: continue a communication-free cycle when the
    // kernel is eligible and the caller's buffers still fingerprint to the
    // state the previous gather left behind; otherwise cycle 0 exchanges.
    let session = deep.take();
    let capable = deep_capable(kernel);
    let (cycle, saved) = if capable {
        let fp = args_fingerprint(kernel, memory, args);
        match session {
            Some(s) if s.matches(kernel, grid, fp) => (s.cycle, Some(Arc::clone(&s.saved))),
            _ => (0, None),
        }
    } else {
        (0, None)
    };

    let shared = Arc::new(Shared {
        kernel: kernel.clone(),
        grid: grid.clone(),
        globals,
        scalars,
        bounds: setup.bounds.clone(),
        from: setup.from,
        deep: capable.then_some(DeepShared {
            depth: kernel.halo_depth as i64,
            cycle,
            saved,
        }),
        budget: memory.budget().cloned(),
    });
    let size = grid.size() as usize;
    let cfg = ResilientConfig {
        checkpoint_interval: 1,
        ..ResilientConfig::default()
    };

    let map_err = |e: MpiSimError| match e.into_compile_error() {
        Ok(compile_err) => compile_err,
        Err(other) => IrError::new(format!("distributed execution failed: {other}")),
    };
    let body_shared = Arc::clone(&shared);
    let (results, workers, steals, parks, traffic) = match opts.mode {
        DistMode::Threads => {
            let results = run_resilient(size, plan, cfg, move |ctx| rank_body(ctx, &body_shared))
                .map_err(map_err)?;
            (results, size, 0u64, 0u64, None)
        }
        DistMode::Coop => {
            let ccfg = CoopConfig {
                workers: opts.workers,
                node_size: opts.node_size,
                agg_flush_messages: 0,
            };
            let plan = plan.clone();
            let (outs, stats) = run_tasks(size, ccfg, move |rank| {
                DistTask::new(rank, size, Arc::clone(&body_shared), &plan, cfg)
            })
            .map_err(map_err)?;
            (outs, stats.workers, stats.steals, stats.parks, Some(stats))
        }
    };

    // Gather: every rank's owned slab lands back in the caller's buffers.
    let mut fault_stats = FaultStats::default();
    let mut per_rank = Vec::with_capacity(size);
    let mut bytes_exchanged = 0u64;
    let mut messages = 0u64;
    let mut windows: Vec<Vec<Vec<f64>>> = Vec::with_capacity(size);
    for (rank, (out, stats)) in results.into_iter().enumerate() {
        fault_stats.merge(&stats);
        bytes_exchanged += out.metrics.bytes_sent;
        messages += out.metrics.messages_sent;
        let coords = shared.grid.coords(rank as i64);
        for (v, payload) in out.gathered {
            let view = &kernel.views[v];
            let ViewSource::Arg(i) = view.source else {
                continue;
            };
            let Some(KernelArg::Buf(b)) = args.get(i) else {
                continue;
            };
            let region = visible_region(
                view,
                &shared.bounds,
                &kernel.decomposition,
                &coords,
                shared.from,
            );
            unpack_region(memory.buffer_mut(*b), &view.strides, &region, &payload);
        }
        windows.push(out.windows);
        per_rank.push(out.metrics);
    }

    // Session handoff: after cycle `k−1` the amortisation window closes and
    // the next dispatch re-exchanges; otherwise record the post-gather
    // fingerprint and every rank's windows for the next cycle.
    if capable {
        let next = cycle + 1;
        if next < kernel.halo_depth as i64 {
            *deep = Some(DeepHaloSession {
                kernel: kernel.name.clone(),
                depth: kernel.halo_depth,
                cycle: next,
                fingerprint: args_fingerprint(kernel, memory, args),
                grid_shape: grid.shape.clone(),
                saved: Arc::new(windows),
            });
        }
    }

    let makespan_seconds = per_rank
        .iter()
        .map(|r| r.wall_seconds)
        .fold(0.0f64, f64::max);
    let exchange_rounds = if capable && cycle > 0 {
        0
    } else {
        kernel
            .nests
            .iter()
            .filter(|n| !n.exchanges.is_empty())
            .count() as u64
    };
    let (logical_messages, physical_messages, logical_bytes, physical_bytes) = match &traffic {
        Some(s) => (
            s.logical_messages,
            s.physical_envelopes,
            s.logical_bytes,
            s.physical_bytes,
        ),
        None => (messages, messages, bytes_exchanged, bytes_exchanged),
    };
    Ok(Some(DistOutcome {
        per_rank,
        makespan_seconds,
        fault_stats,
        schedule: setup.schedule,
        bytes_exchanged,
        messages,
        scheduler: opts.mode,
        workers,
        steals,
        parks,
        logical_messages,
        physical_messages,
        logical_bytes,
        physical_bytes,
        halo_depth: kernel.halo_depth,
        exchange_rounds,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip_is_exact() {
        let strides = [1i64, 4, 12];
        let data: Vec<f64> = (0..24).map(|i| i as f64).collect();
        let region = [(1, 3), (0, 3), (1, 2)];
        let payload = pack_region(&data, &strides, &region);
        assert_eq!(payload.len(), region_cells(&region));
        let mut dst = vec![0.0; 24];
        unpack_region(&mut dst, &strides, &region, &payload);
        let mut expect = vec![0.0; 24];
        for_each_cell(&strides, &region, |lin| expect[lin] = data[lin]);
        assert_eq!(dst, expect);
    }

    #[test]
    fn based_pack_matches_full_buffer_pack() {
        // A 4×6 column-major view windowed to slabs 2..5 of the slow dim:
        // packing any region inside the window must read the same cells as
        // the full-buffer pack.
        let strides = [1i64, 4];
        let full: Vec<f64> = (0..24).map(|i| i as f64 * 1.5).collect();
        let base = 2 * 4; // win_lo = 2 slabs
        let window: Vec<f64> = full[base as usize..5 * 4].to_vec();
        let region = [(1, 3), (2, 5)];
        assert_eq!(
            pack_region_based(&window, &strides, &region, base),
            pack_region(&full, &strides, &region)
        );
        let payload = vec![99.0; region_cells(&region)];
        let mut w2 = window.clone();
        unpack_region_based(&mut w2, &strides, &region, base, &payload);
        let mut f2 = full.clone();
        unpack_region(&mut f2, &strides, &region, &payload);
        assert_eq!(w2[..], f2[base as usize..5 * 4]);
    }

    #[test]
    fn slab_major_detects_dense_layouts() {
        let dense = ViewSpec {
            extents: vec![4, 6],
            strides: vec![1, 4],
            source: ViewSource::Arg(0),
        };
        assert!(slab_major(&dense, 1));
        let transposed = ViewSpec {
            extents: vec![4, 6],
            strides: vec![6, 1],
            source: ViewSource::Arg(0),
        };
        assert!(!slab_major(&transposed, 1));
        let one_d = ViewSpec {
            extents: vec![8],
            strides: vec![1],
            source: ViewSource::Arg(0),
        };
        assert!(slab_major(&one_d, 0));
    }

    #[test]
    fn interior_and_shells_tile_the_box_exactly_once() {
        let own = [(2i64, 8), (1, 4)];
        let (interior, shells) = split_interior_boundary(&own, &[1, 1], &[2, 0]);
        let strides = [1i64, 16];
        let mut count = vec![0u32; 16 * 8];
        for_each_cell(&strides, &interior, |lin| count[lin] += 1);
        for shell in &shells {
            for_each_cell(&strides, shell, |lin| count[lin] += 1);
        }
        let mut seen = 0usize;
        for_each_cell(&strides, &own, |lin| {
            assert_eq!(count[lin], 1, "cell {lin} covered {} times", count[lin]);
            seen += 1;
        });
        assert_eq!(seen, region_cells(&own));
        assert_eq!(count.iter().map(|&c| c as usize).sum::<usize>(), seen);
    }

    #[test]
    fn empty_interior_still_tiles_exactly() {
        let own = [(5i64, 6)];
        let (interior, shells) = split_interior_boundary(&own, &[1], &[1]);
        assert_eq!(region_cells(&interior), 0);
        let strides = [1i64];
        let mut count = [0u32; 8];
        for shell in &shells {
            for_each_cell(&strides, shell, |lin| count[lin] += 1);
        }
        assert_eq!(count[5], 1);
        assert_eq!(count.iter().sum::<u32>(), 1);
    }
}
