//! Flat register-machine bytecode for stencil kernel bodies.
//!
//! The kernel compiler (`crate::kernel`) turns the innermost block of a
//! lowered loop nest into one [`BodyProgram`]: straight-line instructions
//! over an `f64` register file, with every array access reduced to
//! *cursor + precomputed relative offset* — the address arithmetic that the
//! Flang tier re-derives per element is done once at compile time here.
//!
//! Integer index values that appear as data (`stencil.index`) are computed
//! in `f64`; all coordinates in these kernels are far below 2^53, so the
//! arithmetic is exact.

/// Binary operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// `powf`.
    Pow,
    /// `atan2`.
    Atan2,
    /// `copysign`.
    CopySign,
    /// Modulo (`%` on the f64 values; exact for small ints).
    Rem,
}

/// Unary operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnKind {
    /// Negation.
    Neg,
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
    /// `exp`.
    Exp,
    /// `ln`.
    Log,
    /// `sin`.
    Sin,
    /// `cos`.
    Cos,
    /// `tanh`.
    Tanh,
    /// Truncation towards zero (int casts).
    Trunc,
}

/// Accumulate variants of the fused multiply–add superinstruction.
///
/// All variants perform **two roundings** — the multiply result is rounded
/// before the accumulate, exactly like the unfused `Mul` + `Add`/`Sub`
/// pair they replace. This is *not* a hardware FMA; fusion only removes
/// dispatch, never changes bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaKind {
    /// `c + (a*b)` — also encodes `(a*b) + c` (addition is commutative
    /// bitwise for the values these kernels produce).
    CPlusMul,
    /// `c - (a*b)`.
    CMinusMul,
    /// `(a*b) - c`.
    MulMinusC,
}

#[inline]
pub(crate) fn mul_acc(kind: MaKind, a: f64, b: f64, c: f64) -> f64 {
    let m = a * b;
    match kind {
        MaKind::CPlusMul => c + m,
        MaKind::CMinusMul => c - m,
        MaKind::MulMinusC => m - c,
    }
}

/// Evaluate a binary op on two scalars (shared by `Bin` and `BinLoad`).
#[inline]
pub(crate) fn bin_eval(kind: BinKind, x: f64, y: f64) -> f64 {
    match kind {
        BinKind::Add => x + y,
        BinKind::Sub => x - y,
        BinKind::Mul => x * y,
        BinKind::Div => x / y,
        BinKind::Min => x.min(y),
        BinKind::Max => x.max(y),
        BinKind::Pow => x.powf(y),
        BinKind::Atan2 => x.atan2(y),
        BinKind::CopySign => x.copysign(y),
        BinKind::Rem => x % y,
    }
}

/// Evaluate a unary op on one scalar (shared with the jit fragments so
/// the tiers cannot diverge).
#[inline]
pub(crate) fn un_eval(kind: UnKind, x: f64) -> f64 {
    match kind {
        UnKind::Neg => -x,
        UnKind::Sqrt => x.sqrt(),
        UnKind::Abs => x.abs(),
        UnKind::Exp => x.exp(),
        UnKind::Log => x.ln(),
        UnKind::Sin => x.sin(),
        UnKind::Cos => x.cos(),
        UnKind::Tanh => x.tanh(),
        UnKind::Trunc => x.trunc(),
    }
}

/// Evaluate a comparison to 0.0/1.0 (shared with the jit fragments).
#[inline]
pub(crate) fn cmp_eval(kind: CmpKind, x: f64, y: f64) -> f64 {
    (match kind {
        CmpKind::Eq => x == y,
        CmpKind::Ne => x != y,
        CmpKind::Lt => x < y,
        CmpKind::Le => x <= y,
        CmpKind::Gt => x > y,
        CmpKind::Ge => x >= y,
    }) as u8 as f64
}

/// Comparison predicates producing 0.0 / 1.0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

/// One bytecode instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `regs[dst] = val`.
    Const {
        /// Destination register.
        dst: u16,
        /// Immediate.
        val: f64,
    },
    /// `regs[dst] = scalar_args[arg]` — a captured scalar kernel argument.
    Arg {
        /// Destination register.
        dst: u16,
        /// Scalar argument index.
        arg: u16,
    },
    /// `regs[dst] = view_data[view][cursor[view] + off]`.
    Load {
        /// Destination register.
        dst: u16,
        /// View index.
        view: u16,
        /// Relative linear offset (precomputed from the stencil offsets).
        off: i64,
    },
    /// `regs[dst] = current global coordinate of dimension dim`.
    Coord {
        /// Destination register.
        dst: u16,
        /// Dimension.
        dim: u8,
    },
    /// Binary arithmetic.
    Bin {
        /// Destination register.
        dst: u16,
        /// Operation.
        kind: BinKind,
        /// Left operand register.
        a: u16,
        /// Right operand register.
        b: u16,
    },
    /// Unary arithmetic.
    Un {
        /// Destination register.
        dst: u16,
        /// Operation.
        kind: UnKind,
        /// Operand register.
        a: u16,
    },
    /// Comparison producing 0.0/1.0.
    Cmp {
        /// Destination register.
        dst: u16,
        /// Predicate.
        kind: CmpKind,
        /// Left operand register.
        a: u16,
        /// Right operand register.
        b: u16,
    },
    /// `regs[dst] = regs[c] != 0.0 ? regs[a] : regs[b]`.
    Select {
        /// Destination register.
        dst: u16,
        /// Condition register.
        c: u16,
        /// Value if true.
        a: u16,
        /// Value if false.
        b: u16,
    },
    /// `view_data[view][cursor[view] + off] = regs[src]`.
    Store {
        /// View index (must refer to an output view).
        view: u16,
        /// Relative linear offset.
        off: i64,
        /// Source register.
        src: u16,
    },
    /// Superinstruction: fused multiply–accumulate over registers,
    /// `regs[dst] = mul_acc(kind, regs[a], regs[b], regs[c])`. Two
    /// roundings — bit-identical to the `Mul` + `Add`/`Sub` pair it
    /// replaces. Produced by `specialize::fuse_program`, never by the body
    /// compiler.
    MulAdd {
        /// Destination register.
        dst: u16,
        /// Left multiplicand register.
        a: u16,
        /// Right multiplicand register.
        b: u16,
        /// Accumulate operand register.
        c: u16,
        /// Accumulate variant.
        kind: MaKind,
    },
    /// Superinstruction: binary op with one operand loaded directly from
    /// memory, skipping the intermediate register strip. Produced by
    /// `specialize::fuse_program`.
    BinLoad {
        /// Destination register.
        dst: u16,
        /// Operation.
        kind: BinKind,
        /// Register operand.
        a: u16,
        /// View index of the memory operand.
        view: u16,
        /// Relative linear offset of the memory operand.
        off: i64,
        /// When true the memory operand is the *left* operand of `kind`.
        load_left: bool,
    },
}

/// Elementwise binary op over register strips (SSA guarantees `dst`
/// disjoint from `a`/`b`).
#[inline]
fn binary_strip(regs: &mut [f64], w: usize, dst: u16, a: u16, b: u16, kind: BinKind) {
    let (a0, b0, d0) = (a as usize * w, b as usize * w, dst as usize * w);
    for x in 0..w {
        let va = regs[a0 + x];
        let vb = regs[b0 + x];
        regs[d0 + x] = match kind {
            BinKind::Add => va + vb,
            BinKind::Sub => va - vb,
            BinKind::Mul => va * vb,
            BinKind::Div => va / vb,
            BinKind::Min => va.min(vb),
            BinKind::Max => va.max(vb),
            BinKind::Pow => va.powf(vb),
            BinKind::Atan2 => va.atan2(vb),
            BinKind::CopySign => va.copysign(vb),
            BinKind::Rem => va % vb,
        };
    }
}

/// Elementwise unary op over register strips.
#[inline]
fn unary_strip(regs: &mut [f64], w: usize, dst: u16, a: u16, kind: UnKind) {
    let (a0, d0) = (a as usize * w, dst as usize * w);
    for x in 0..w {
        let v = regs[a0 + x];
        regs[d0 + x] = match kind {
            UnKind::Neg => -v,
            UnKind::Sqrt => v.sqrt(),
            UnKind::Abs => v.abs(),
            UnKind::Exp => v.exp(),
            UnKind::Log => v.ln(),
            UnKind::Sin => v.sin(),
            UnKind::Cos => v.cos(),
            UnKind::Tanh => v.tanh(),
            UnKind::Trunc => v.trunc(),
        };
    }
}

/// Elementwise comparison over register strips.
#[inline]
fn cmp_strip(regs: &mut [f64], w: usize, dst: u16, a: u16, b: u16, kind: CmpKind) {
    let (a0, b0, d0) = (a as usize * w, b as usize * w, dst as usize * w);
    for x in 0..w {
        let va = regs[a0 + x];
        let vb = regs[b0 + x];
        let r = match kind {
            CmpKind::Eq => va == vb,
            CmpKind::Ne => va != vb,
            CmpKind::Lt => va < vb,
            CmpKind::Le => va <= vb,
            CmpKind::Gt => va > vb,
            CmpKind::Ge => va >= vb,
        };
        regs[d0 + x] = r as u8 as f64;
    }
}

/// Elementwise fused multiply–accumulate over register strips.
#[inline]
fn mul_acc_strip(regs: &mut [f64], w: usize, dst: u16, a: u16, b: u16, c: u16, kind: MaKind) {
    let (a0, b0, c0, d0) = (
        a as usize * w,
        b as usize * w,
        c as usize * w,
        dst as usize * w,
    );
    for x in 0..w {
        regs[d0 + x] = mul_acc(kind, regs[a0 + x], regs[b0 + x], regs[c0 + x]);
    }
}

/// Execute one non-memory instruction (shared by the fast and naive
/// interpreters so they cannot diverge).
#[inline]
pub fn exec_scalar_instr(instr: &Instr, regs: &mut [f64], coords: &[i64], scalars: &[f64]) {
    match *instr {
        Instr::Const { dst, val } => regs[dst as usize] = val,
        Instr::Arg { dst, arg } => regs[dst as usize] = scalars[arg as usize],
        Instr::Coord { dst, dim } => regs[dst as usize] = coords[dim as usize] as f64,
        Instr::Bin { dst, kind, a, b } => {
            let x = regs[a as usize];
            let y = regs[b as usize];
            regs[dst as usize] = match kind {
                BinKind::Add => x + y,
                BinKind::Sub => x - y,
                BinKind::Mul => x * y,
                BinKind::Div => x / y,
                BinKind::Min => x.min(y),
                BinKind::Max => x.max(y),
                BinKind::Pow => x.powf(y),
                BinKind::Atan2 => x.atan2(y),
                BinKind::CopySign => x.copysign(y),
                BinKind::Rem => x % y,
            };
        }
        Instr::Un { dst, kind, a } => {
            let x = regs[a as usize];
            regs[dst as usize] = match kind {
                UnKind::Neg => -x,
                UnKind::Sqrt => x.sqrt(),
                UnKind::Abs => x.abs(),
                UnKind::Exp => x.exp(),
                UnKind::Log => x.ln(),
                UnKind::Sin => x.sin(),
                UnKind::Cos => x.cos(),
                UnKind::Tanh => x.tanh(),
                UnKind::Trunc => x.trunc(),
            };
        }
        Instr::Cmp { dst, kind, a, b } => {
            let x = regs[a as usize];
            let y = regs[b as usize];
            let r = match kind {
                CmpKind::Eq => x == y,
                CmpKind::Ne => x != y,
                CmpKind::Lt => x < y,
                CmpKind::Le => x <= y,
                CmpKind::Gt => x > y,
                CmpKind::Ge => x >= y,
            };
            regs[dst as usize] = r as u8 as f64;
        }
        Instr::Select { dst, c, a, b } => {
            regs[dst as usize] = if regs[c as usize] != 0.0 {
                regs[a as usize]
            } else {
                regs[b as usize]
            };
        }
        Instr::MulAdd { dst, a, b, c, kind } => {
            regs[dst as usize] =
                mul_acc(kind, regs[a as usize], regs[b as usize], regs[c as usize]);
        }
        Instr::Load { .. } | Instr::Store { .. } | Instr::BinLoad { .. } => {
            unreachable!("memory instructions handled by the callers")
        }
    }
}

/// A compiled straight-line kernel body.
#[derive(Debug, Clone, Default)]
pub struct BodyProgram {
    /// Instructions in execution order.
    pub instrs: Vec<Instr>,
    /// Cell-invariant prefix length: the first `prelude_len` instructions
    /// (constants, scalar arguments) can execute once per kernel run; the
    /// fast runner does, the naive runner deliberately re-executes them per
    /// cell the way unhoisted compiled code would.
    pub prelude_len: usize,
    /// Register file size.
    pub num_regs: u16,
    /// Floating point ops per cell (for throughput/GPU modelling).
    pub flops_per_cell: u64,
    /// Array loads per cell.
    pub loads_per_cell: u64,
    /// Array stores per cell.
    pub stores_per_cell: u64,
}

impl BodyProgram {
    /// Execute the program for one cell.
    ///
    /// `inputs[v]` is the read slice of view `v` (empty for pure outputs),
    /// `cursors[v]` the current linear cursor of view `v` (shared by loads
    /// and stores), `coords` the current global coordinates, `scalars` the
    /// kernel's scalar arguments. Stores resolve their output slice through
    /// `out_view_map[view]`.
    #[inline]
    #[allow(clippy::too_many_arguments)] // VM entry point: the argument list *is* the machine state.
    pub fn run_cell(
        &self,
        regs: &mut [f64],
        inputs: &[&[f64]],
        outputs: &mut [&mut [f64]],
        out_view_map: &[Option<u16>],
        cursors: &[i64],
        coords: &[i64],
        scalars: &[f64],
    ) {
        for instr in &self.instrs {
            match *instr {
                Instr::Const { dst, val } => regs[dst as usize] = val,
                Instr::Arg { dst, arg } => regs[dst as usize] = scalars[arg as usize],
                Instr::Load { dst, view, off } => {
                    let idx = (cursors[view as usize] + off) as usize;
                    regs[dst as usize] = inputs[view as usize][idx];
                }
                Instr::Coord { dst, dim } => {
                    regs[dst as usize] = coords[dim as usize] as f64;
                }
                Instr::Bin { dst, kind, a, b } => {
                    let x = regs[a as usize];
                    let y = regs[b as usize];
                    regs[dst as usize] = match kind {
                        BinKind::Add => x + y,
                        BinKind::Sub => x - y,
                        BinKind::Mul => x * y,
                        BinKind::Div => x / y,
                        BinKind::Min => x.min(y),
                        BinKind::Max => x.max(y),
                        BinKind::Pow => x.powf(y),
                        BinKind::Atan2 => x.atan2(y),
                        BinKind::CopySign => x.copysign(y),
                        BinKind::Rem => x % y,
                    };
                }
                Instr::Un { dst, kind, a } => {
                    let x = regs[a as usize];
                    regs[dst as usize] = match kind {
                        UnKind::Neg => -x,
                        UnKind::Sqrt => x.sqrt(),
                        UnKind::Abs => x.abs(),
                        UnKind::Exp => x.exp(),
                        UnKind::Log => x.ln(),
                        UnKind::Sin => x.sin(),
                        UnKind::Cos => x.cos(),
                        UnKind::Tanh => x.tanh(),
                        UnKind::Trunc => x.trunc(),
                    };
                }
                Instr::Cmp { dst, kind, a, b } => {
                    let x = regs[a as usize];
                    let y = regs[b as usize];
                    let r = match kind {
                        CmpKind::Eq => x == y,
                        CmpKind::Ne => x != y,
                        CmpKind::Lt => x < y,
                        CmpKind::Le => x <= y,
                        CmpKind::Gt => x > y,
                        CmpKind::Ge => x >= y,
                    };
                    regs[dst as usize] = r as u8 as f64;
                }
                Instr::Select { dst, c, a, b } => {
                    regs[dst as usize] = if regs[c as usize] != 0.0 {
                        regs[a as usize]
                    } else {
                        regs[b as usize]
                    };
                }
                Instr::Store { view, off, src } => {
                    let slot = out_view_map[view as usize]
                        .expect("store to a view that is not an output")
                        as usize;
                    let idx = (cursors[view as usize] + off) as usize;
                    outputs[slot][idx] = regs[src as usize];
                }
                Instr::MulAdd { dst, a, b, c, kind } => {
                    regs[dst as usize] =
                        mul_acc(kind, regs[a as usize], regs[b as usize], regs[c as usize]);
                }
                Instr::BinLoad {
                    dst,
                    kind,
                    a,
                    view,
                    off,
                    load_left,
                } => {
                    let idx = (cursors[view as usize] + off) as usize;
                    let m = inputs[view as usize][idx];
                    let r = regs[a as usize];
                    regs[dst as usize] = if load_left {
                        bin_eval(kind, m, r)
                    } else {
                        bin_eval(kind, r, m)
                    };
                }
            }
        }
    }

    /// Execute one cell the way unoptimised compiled code does: every array
    /// access bounds-checked, no assumptions about cursor validity. Used by
    /// the *naive* runner that models Flang's direct FIR→LLVM codegen.
    #[inline]
    #[allow(clippy::too_many_arguments)] // VM entry point: the argument list *is* the machine state.
    pub fn run_cell_checked(
        &self,
        regs: &mut [f64],
        inputs: &[&[f64]],
        outputs: &mut [&mut [f64]],
        out_view_map: &[Option<u16>],
        cursors: &[i64],
        coords: &[i64],
        scalars: &[f64],
    ) {
        for instr in &self.instrs {
            match *instr {
                Instr::Load { dst, view, off } => {
                    let idx = cursors[view as usize] + off;
                    let slice = inputs[view as usize];
                    assert!(
                        idx >= 0 && (idx as usize) < slice.len(),
                        "load out of bounds: {idx} in view {view}"
                    );
                    regs[dst as usize] = slice[idx as usize];
                }
                Instr::Store { view, off, src } => {
                    let slot = out_view_map[view as usize]
                        .expect("store to a view that is not an output")
                        as usize;
                    let idx = cursors[view as usize] + off;
                    let slice = &mut outputs[slot];
                    assert!(
                        idx >= 0 && (idx as usize) < slice.len(),
                        "store out of bounds: {idx} in view {view}"
                    );
                    slice[idx as usize] = regs[src as usize];
                }
                Instr::BinLoad {
                    dst,
                    kind,
                    a,
                    view,
                    off,
                    load_left,
                } => {
                    let idx = cursors[view as usize] + off;
                    let slice = inputs[view as usize];
                    assert!(
                        idx >= 0 && (idx as usize) < slice.len(),
                        "load out of bounds: {idx} in view {view}"
                    );
                    let m = slice[idx as usize];
                    let r = regs[a as usize];
                    regs[dst as usize] = if load_left {
                        bin_eval(kind, m, r)
                    } else {
                        bin_eval(kind, r, m)
                    };
                }
                // Scalar instructions behave identically.
                ref other => exec_scalar_instr(other, regs, coords, scalars),
            }
        }
    }

    /// Execute the cell-invariant prelude (constants, scalar arguments)
    /// into the register file, once per kernel run.
    pub fn run_prelude(&self, regs: &mut [f64], scalars: &[f64]) {
        for instr in &self.instrs[..self.prelude_len] {
            exec_scalar_instr(instr, regs, &[], scalars);
        }
    }

    /// The per-cell instruction slice (after the prelude).
    #[inline]
    pub fn cell_instrs(&self) -> &[Instr] {
        &self.instrs[self.prelude_len..]
    }

    /// Execute the per-cell body (prelude assumed already applied).
    #[inline]
    #[allow(clippy::too_many_arguments)] // VM entry point: the argument list *is* the machine state.
    pub fn run_cell_body(
        &self,
        regs: &mut [f64],
        inputs: &[&[f64]],
        outputs: &mut [&mut [f64]],
        out_view_map: &[Option<u16>],
        cursors: &[i64],
        coords: &[i64],
        scalars: &[f64],
    ) {
        for instr in self.cell_instrs() {
            match *instr {
                Instr::Load { dst, view, off } => {
                    let idx = (cursors[view as usize] + off) as usize;
                    regs[dst as usize] = inputs[view as usize][idx];
                }
                Instr::Store { view, off, src } => {
                    let slot = out_view_map[view as usize]
                        .expect("store to a view that is not an output")
                        as usize;
                    let idx = (cursors[view as usize] + off) as usize;
                    outputs[slot][idx] = regs[src as usize];
                }
                Instr::BinLoad {
                    dst,
                    kind,
                    a,
                    view,
                    off,
                    load_left,
                } => {
                    let idx = (cursors[view as usize] + off) as usize;
                    let m = inputs[view as usize][idx];
                    let r = regs[a as usize];
                    regs[dst as usize] = if load_left {
                        bin_eval(kind, m, r)
                    } else {
                        bin_eval(kind, r, m)
                    };
                }
                ref other => exec_scalar_instr(other, regs, coords, scalars),
            }
        }
    }

    /// Execute the per-cell body over a *strip* of `w` consecutive
    /// innermost-dimension cells at once — the vector-VM realisation of the
    /// `scf-parallel-loop-specialization` (vectorisation) step in the CPU
    /// pipeline. Each register becomes a strip of `w` lanes; elementwise
    /// loops over plain slices let LLVM vectorise them.
    ///
    /// Requires every view's innermost stride to be 1 (the caller checks).
    /// `regs` has `num_regs * w` elements; `cursors[v]` addresses the strip
    /// start; `coord0` is the global dim-0 coordinate of lane 0.
    #[allow(clippy::too_many_arguments)]
    pub fn run_strip(
        &self,
        regs: &mut [f64],
        w: usize,
        inputs: &[&[f64]],
        outputs: &mut [&mut [f64]],
        out_view_map: &[Option<u16>],
        cursors: &[i64],
        coord0: i64,
        coords: &[i64],
        scalars: &[f64],
    ) {
        let lane = |r: u16| (r as usize) * w..(r as usize) * w + w;
        for instr in self.cell_instrs() {
            match *instr {
                Instr::Load { dst, view, off } => {
                    let base = (cursors[view as usize] + off) as usize;
                    let src = &inputs[view as usize][base..base + w];
                    regs[lane(dst)].copy_from_slice(src);
                }
                Instr::Store { view, off, src } => {
                    let slot = out_view_map[view as usize]
                        .expect("store to a view that is not an output")
                        as usize;
                    let base = (cursors[view as usize] + off) as usize;
                    outputs[slot][base..base + w].copy_from_slice(&regs[lane(src)]);
                }
                Instr::Const { dst, val } => regs[lane(dst)].fill(val),
                Instr::Arg { dst, arg } => regs[lane(dst)].fill(scalars[arg as usize]),
                Instr::Coord { dst, dim } => {
                    if dim == 0 {
                        for (x, r) in regs[lane(dst)].iter_mut().enumerate() {
                            *r = (coord0 + x as i64) as f64;
                        }
                    } else {
                        regs[lane(dst)].fill(coords[dim as usize] as f64);
                    }
                }
                Instr::Bin { dst, kind, a, b } => {
                    binary_strip(regs, w, dst, a, b, kind);
                }
                Instr::Un { dst, kind, a } => {
                    unary_strip(regs, w, dst, a, kind);
                }
                Instr::Cmp { dst, kind, a, b } => {
                    cmp_strip(regs, w, dst, a, b, kind);
                }
                Instr::Select { dst, c, a, b } => {
                    for x in 0..w {
                        let cv = regs[c as usize * w + x];
                        regs[dst as usize * w + x] = if cv != 0.0 {
                            regs[a as usize * w + x]
                        } else {
                            regs[b as usize * w + x]
                        };
                    }
                }
                Instr::MulAdd { dst, a, b, c, kind } => {
                    mul_acc_strip(regs, w, dst, a, b, c, kind);
                }
                Instr::BinLoad {
                    dst,
                    kind,
                    a,
                    view,
                    off,
                    load_left,
                } => {
                    let base = (cursors[view as usize] + off) as usize;
                    let mem = &inputs[view as usize][base..base + w];
                    let (a0, d0) = (a as usize * w, dst as usize * w);
                    for x in 0..w {
                        let m = mem[x];
                        let r = regs[a0 + x];
                        regs[d0 + x] = if load_left {
                            bin_eval(kind, m, r)
                        } else {
                            bin_eval(kind, r, m)
                        };
                    }
                }
            }
        }
    }

    /// Fill strip lanes of the prelude registers (constants / scalar args),
    /// once per kernel run in strip mode.
    pub fn run_prelude_strip(&self, regs: &mut [f64], w: usize, scalars: &[f64]) {
        for instr in &self.instrs[..self.prelude_len] {
            match *instr {
                Instr::Const { dst, val } => {
                    regs[dst as usize * w..dst as usize * w + w].fill(val);
                }
                Instr::Arg { dst, arg } => {
                    regs[dst as usize * w..dst as usize * w + w].fill(scalars[arg as usize]);
                }
                _ => unreachable!("prelude holds only Const/Arg"),
            }
        }
    }

    /// Hoist the cell-invariant prefix: stable-partition `Const`/`Arg`
    /// instructions to the front and record the prelude length. Register
    /// assignments are unaffected (registers persist across the split).
    pub fn hoist_invariants(&mut self) {
        let (prelude, body): (Vec<Instr>, Vec<Instr>) = self
            .instrs
            .drain(..)
            .partition(|i| matches!(i, Instr::Const { .. } | Instr::Arg { .. }));
        self.prelude_len = prelude.len();
        self.instrs = prelude;
        self.instrs.extend(body);
    }

    /// Recompute the per-cell statistics from the instruction stream.
    ///
    /// Flops follow the paper's GFLOP/s convention: the **algorithmic**
    /// operation count of the source statements. CSE may have merged a
    /// subexpression shared by several stores into one instruction, so each
    /// instruction is weighted by how many times the store chains consume
    /// it (its use multiplicity under full re-expansion — the stream is
    /// SSA, every register written exactly once, so one reverse pass
    /// suffices). Loads and stores stay plain stream counts: bytes measure
    /// what the machine actually moves, and a CSE'd load is read once.
    ///
    /// Superinstructions count the same as the ops they fuse: `MulAdd` is
    /// two flops, `BinLoad` one flop and one load — so fusion never skews
    /// accounting (it only ever fuses single-use values).
    pub fn finalize_stats(&mut self) {
        let mut mult = vec![0u64; self.num_regs as usize];
        let mut flops = 0u64;
        for i in self.instrs.iter().rev() {
            match *i {
                Instr::Store { src, .. } => mult[src as usize] += 1,
                Instr::Bin { dst, a, b, .. } | Instr::Cmp { dst, a, b, .. } => {
                    let m = mult[dst as usize];
                    flops += m;
                    mult[a as usize] += m;
                    mult[b as usize] += m;
                }
                Instr::Un { dst, a, .. } => {
                    let m = mult[dst as usize];
                    flops += m;
                    mult[a as usize] += m;
                }
                Instr::Select { dst, c, a, b } => {
                    let m = mult[dst as usize];
                    mult[c as usize] += m;
                    mult[a as usize] += m;
                    mult[b as usize] += m;
                }
                Instr::MulAdd { dst, a, b, c, .. } => {
                    let m = mult[dst as usize];
                    flops += 2 * m;
                    mult[a as usize] += m;
                    mult[b as usize] += m;
                    mult[c as usize] += m;
                }
                Instr::BinLoad { dst, a, .. } => {
                    let m = mult[dst as usize];
                    flops += m;
                    mult[a as usize] += m;
                }
                Instr::Const { .. }
                | Instr::Arg { .. }
                | Instr::Coord { .. }
                | Instr::Load { .. } => {}
            }
        }
        self.flops_per_cell = flops;
        self.loads_per_cell = self
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Load { .. } | Instr::BinLoad { .. }))
            .count() as u64;
        self.stores_per_cell = self
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Store { .. }))
            .count() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run a tiny program: out[c] = 0.5 * (in[c-1] + in[c+1]).
    #[test]
    fn one_dim_average() {
        let mut p = BodyProgram {
            instrs: vec![
                Instr::Const { dst: 0, val: 0.5 },
                Instr::Load {
                    dst: 1,
                    view: 0,
                    off: -1,
                },
                Instr::Load {
                    dst: 2,
                    view: 0,
                    off: 1,
                },
                Instr::Bin {
                    dst: 3,
                    kind: BinKind::Add,
                    a: 1,
                    b: 2,
                },
                Instr::Bin {
                    dst: 4,
                    kind: BinKind::Mul,
                    a: 3,
                    b: 0,
                },
                Instr::Store {
                    view: 1,
                    off: 0,
                    src: 4,
                },
            ],
            num_regs: 5,
            ..Default::default()
        };
        p.finalize_stats();
        assert_eq!(p.flops_per_cell, 2);
        assert_eq!(p.loads_per_cell, 2);
        assert_eq!(p.stores_per_cell, 1);

        let input = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let mut output = vec![0.0; 5];
        let mut regs = vec![0.0; 5];
        for c in 1..4i64 {
            let inputs: Vec<&[f64]> = vec![&input, &[]];
            let mut outs: Vec<&mut [f64]> = vec![&mut output];
            p.run_cell(
                &mut regs,
                &inputs,
                &mut outs,
                &[None, Some(0)],
                &[c, c],
                &[c],
                &[],
            );
        }
        assert_eq!(output, vec![0.0, 1.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn coord_and_scalar_args() {
        let mut p = BodyProgram {
            instrs: vec![
                Instr::Coord { dst: 0, dim: 0 },
                Instr::Arg { dst: 1, arg: 0 },
                Instr::Bin {
                    dst: 2,
                    kind: BinKind::Mul,
                    a: 0,
                    b: 1,
                },
                Instr::Store {
                    view: 0,
                    off: 0,
                    src: 2,
                },
            ],
            num_regs: 3,
            ..Default::default()
        };
        p.finalize_stats();
        let mut output = vec![0.0; 4];
        let mut regs = vec![0.0; 3];
        for c in 0..4i64 {
            let inputs: Vec<&[f64]> = vec![&[]];
            let mut outs: Vec<&mut [f64]> = vec![&mut output];
            p.run_cell(
                &mut regs,
                &inputs,
                &mut outs,
                &[Some(0)],
                &[c],
                &[c],
                &[2.0],
            );
        }
        assert_eq!(output, vec![0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn select_and_cmp() {
        let p = BodyProgram {
            instrs: vec![
                Instr::Const { dst: 0, val: 3.0 },
                Instr::Const { dst: 1, val: 5.0 },
                Instr::Cmp {
                    dst: 2,
                    kind: CmpKind::Lt,
                    a: 0,
                    b: 1,
                },
                Instr::Select {
                    dst: 3,
                    c: 2,
                    a: 0,
                    b: 1,
                },
                Instr::Store {
                    view: 0,
                    off: 0,
                    src: 3,
                },
            ],
            num_regs: 4,
            ..Default::default()
        };
        let mut output = vec![0.0];
        let mut regs = vec![0.0; 4];
        let inputs: Vec<&[f64]> = vec![&[]];
        let mut outs: Vec<&mut [f64]> = vec![&mut output];
        p.run_cell(&mut regs, &inputs, &mut outs, &[Some(0)], &[0], &[0], &[]);
        assert_eq!(output[0], 3.0);
    }

    #[test]
    fn unary_math() {
        let p = BodyProgram {
            instrs: vec![
                Instr::Const { dst: 0, val: 16.0 },
                Instr::Un {
                    dst: 1,
                    kind: UnKind::Sqrt,
                    a: 0,
                },
                Instr::Store {
                    view: 0,
                    off: 0,
                    src: 1,
                },
            ],
            num_regs: 2,
            ..Default::default()
        };
        let mut output = vec![0.0];
        let mut regs = vec![0.0; 2];
        let inputs: Vec<&[f64]> = vec![&[]];
        let mut outs: Vec<&mut [f64]> = vec![&mut output];
        p.run_cell(&mut regs, &inputs, &mut outs, &[Some(0)], &[0], &[0], &[]);
        assert_eq!(output[0], 4.0);
    }
}
