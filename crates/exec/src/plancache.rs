//! The persistent plan cache: autotuned [`ExecPlan`]s keyed by kernel
//! fingerprint, stored as a small JSON file so calibration cost is paid
//! once per (kernel, grid extents, thread count) per machine.
//!
//! The format is deliberately tiny and hand-rolled on the shared
//! [`fsc_ir::json`] mini-parser (the workspace is offline — no serde):
//!
//! ```json
//! {
//!   "version": 1,
//!   "entries": [
//!     {"key": "9f3ac11bd0e2a771:48x48x48:t8",
//!      "tiles": [0, 16, 0], "unroll": 4, "slabs": 1, "micros": 123.4}
//!   ]
//! }
//! ```
//!
//! Robustness contract (exercised by the round-trip tests): a missing
//! file is a clean miss; a corrupt/truncated/wrong-version file degrades
//! to an empty cache with a coded `E0702` warning — never a panic, never
//! a failed run. Writes go through [`PlanCache::save`], which is safe
//! against *concurrent writers*: under a short-lived advisory lock file it
//! re-reads the current on-disk cache, unions it with the in-memory image
//! (lost-update fix — two processes that each tuned a different kernel
//! both keep their entry), then publishes via a per-process temp file +
//! atomic rename so a crashed writer cannot leave a half-written cache
//! behind.
//!
//! Environment policy: this module never consults `std::env` during cache
//! resolution — callers thread an explicit path down from the process
//! boundary ([`env_cache_path`] is the boundary helper the CLI, server and
//! bench binaries use). This keeps `cargo test`'s multi-threaded runner
//! free of `set_var`/`var` races.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use fsc_ir::diag::{codes, Diagnostic};
use fsc_ir::json::{escape_string, Json};

use crate::plan::{ExecPlan, PlanProvenance};

/// Current on-disk format version.
pub const CACHE_VERSION: i64 = 1;

/// Byte quota for the rendered on-disk cache file. [`PlanCache::save`]
/// garbage-collects the merged image down to this before publishing, so
/// a long-lived machine cache cannot grow without bound. At ~100 bytes
/// per entry this retains a few thousand plans.
pub const DEFAULT_DISK_QUOTA: u64 = 256 * 1024;

/// Environment variable overriding the default cache location. Only read
/// by [`env_cache_path`], which process boundaries (CLI, server, bench
/// mains) call exactly once — library code takes explicit paths.
pub const CACHE_ENV: &str = "FSC_PLAN_CACHE";

/// One cached plan: the winning knobs plus the calibrated sweep time.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRecord {
    /// Winning tile extents (0 = unblocked).
    pub tiles: Vec<i64>,
    /// Winning unroll factor.
    pub unroll: u8,
    /// Winning slab budget (0 = auto).
    pub slabs: u32,
    /// Best calibration sweep time, microseconds (informational).
    pub micros: f64,
}

impl PlanRecord {
    /// The record as an executable plan with `Cached` provenance.
    pub fn to_plan(&self) -> ExecPlan {
        ExecPlan {
            tiles: self.tiles.clone(),
            unroll: self.unroll,
            slabs: self.slabs,
            provenance: PlanProvenance::Cached,
        }
    }

    /// A record from a freshly tuned plan.
    pub fn from_plan(plan: &ExecPlan, micros: f64) -> Self {
        Self {
            tiles: plan.tiles.clone(),
            unroll: plan.unroll,
            slabs: plan.slabs,
            micros,
        }
    }
}

/// An in-memory image of one cache file.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    /// Entries by fingerprint key (sorted map for a stable file layout).
    pub entries: BTreeMap<String, PlanRecord>,
}

impl PlanCache {
    /// Load a cache file. A missing file is a clean empty cache; anything
    /// unreadable or unparsable degrades to an empty cache plus an
    /// [`codes::PLAN_CACHE`] warning describing why.
    pub fn load(path: &Path) -> (Self, Option<Diagnostic>) {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return (Self::default(), None);
            }
            Err(e) => {
                return (
                    Self::default(),
                    Some(
                        Diagnostic::warning(
                            codes::PLAN_CACHE,
                            format!("plan cache {} is unreadable: {e}", path.display()),
                        )
                        .note("falling back to default execution plans"),
                    ),
                );
            }
        };
        match Self::parse(&text) {
            Ok(cache) => (cache, None),
            Err(why) => (
                Self::default(),
                Some(
                    Diagnostic::warning(
                        codes::PLAN_CACHE,
                        format!("plan cache {} is corrupt: {why}", path.display()),
                    )
                    .note("falling back to default execution plans")
                    .note("delete the file (or point FSC_PLAN_CACHE elsewhere) to silence this"),
                ),
            ),
        }
    }

    /// Serialise and publish to `path`, **merging** with whatever is on
    /// disk at write time.
    ///
    /// The naive load → insert → tmp+rename cycle loses updates under
    /// concurrency: two writers that each add a different fingerprint both
    /// rename over the other's file, and one entry silently vanishes. This
    /// method closes that race: it takes a short-lived advisory lock file
    /// next to the cache, re-reads the current file, unions it with `self`
    /// (our entries win on identical keys), and only then renames the new
    /// image into place. A per-process temp-file name keeps two racing
    /// writers from trampling each other's staging file even if the lock
    /// is broken (e.g. a stale lock from a killed process gets reclaimed).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        self.save_with_quota(path, DEFAULT_DISK_QUOTA)
    }

    /// [`PlanCache::save`] with an explicit disk quota. After the merge,
    /// the image is garbage-collected down to `quota` rendered bytes:
    /// entries this writer does *not* own (merged in from disk) are
    /// evicted first, in key order, so one process's save can never grow
    /// the file unboundedly yet always keeps its own fresh plans when
    /// they fit. The published file is always structurally valid, even
    /// when the quota is smaller than a single entry.
    pub fn save_with_quota(&self, path: &Path, quota: u64) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let _lock = AdvisoryLock::acquire(path)?;
        // Union with the current on-disk image: keep concurrent writers'
        // entries; our own entries take precedence for identical keys.
        let (mut merged, _diag) = Self::load(path);
        for (k, v) in &self.entries {
            merged.entries.insert(k.clone(), v.clone());
        }
        merged.gc_to_quota(&self.entries, quota);
        let tmp = path.with_extension(format!("json.tmp.{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(merged.render().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Evict entries until the rendered image fits in `quota` bytes.
    /// Entries not in `own` (foreign: merged in from disk) go first, in
    /// key order; own entries are only evicted once no foreign entry
    /// remains. Returns the number of evictions. The loop always
    /// terminates: an empty cache renders to a small constant image.
    fn gc_to_quota(&mut self, own: &BTreeMap<String, PlanRecord>, quota: u64) -> u64 {
        let mut evicted = 0;
        while self.render().len() as u64 > quota && !self.entries.is_empty() {
            let victim = self
                .entries
                .keys()
                .find(|k| !own.contains_key(*k))
                .or_else(|| self.entries.keys().next())
                .cloned();
            match victim {
                Some(k) => {
                    self.entries.remove(&k);
                    evicted += 1;
                }
                None => break,
            }
        }
        evicted
    }

    /// Render the stable JSON layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {CACHE_VERSION},\n"));
        out.push_str("  \"entries\": [\n");
        let n = self.entries.len();
        for (i, (key, r)) in self.entries.iter().enumerate() {
            let tiles = r
                .tiles
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"key\": {}, \"tiles\": [{tiles}], \"unroll\": {}, \"slabs\": {}, \"micros\": {:.1}}}{}\n",
                escape_string(key),
                r.unroll,
                r.slabs,
                r.micros,
                if i + 1 < n { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse the JSON layout (tolerant of whitespace and key order, strict
    /// about structure and version).
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = Json::parse(text)?;
        let top = value.as_object().ok_or("top level is not an object")?;
        match top.get("version") {
            Some(Json::Num(v)) if *v == CACHE_VERSION as f64 => {}
            Some(Json::Num(v)) => return Err(format!("unsupported cache version {v}")),
            _ => return Err("missing version field".into()),
        }
        let entries = top
            .get("entries")
            .and_then(Json::as_array)
            .ok_or("missing entries array")?;
        let mut out = BTreeMap::new();
        for e in entries {
            let obj = e.as_object().ok_or("entry is not an object")?;
            let key = obj
                .get("key")
                .and_then(Json::as_str)
                .ok_or("entry missing key")?
                .to_string();
            let tiles = obj
                .get("tiles")
                .and_then(Json::as_array)
                .ok_or("entry missing tiles")?
                .iter()
                .map(|t| t.as_i64().ok_or("tile is not an integer"))
                .collect::<Result<Vec<_>, _>>()?;
            let unroll = obj
                .get("unroll")
                .and_then(Json::as_i64)
                .ok_or("entry missing unroll")?;
            let slabs = obj
                .get("slabs")
                .and_then(Json::as_i64)
                .ok_or("entry missing slabs")?;
            if !(1..=16).contains(&unroll) || !(0..=1 << 20).contains(&slabs) {
                return Err(format!("entry '{key}' has out-of-range knobs"));
            }
            let micros = obj.get("micros").and_then(Json::as_f64).unwrap_or(0.0);
            out.insert(
                key,
                PlanRecord {
                    tiles,
                    unroll: unroll as u8,
                    slabs: slabs as u32,
                    micros,
                },
            );
        }
        Ok(Self { entries: out })
    }
}

/// A best-effort advisory lock file next to the cache, serialising the
/// read-merge-rename cycle across threads *and* processes. Acquisition
/// spins with a short sleep; a lock older than [`STALE_AFTER`] is assumed
/// abandoned (killed process) and broken. Dropping releases the lock.
struct AdvisoryLock {
    path: PathBuf,
}

/// How long before a lock file is considered abandoned.
const STALE_AFTER: Duration = Duration::from_secs(5);

impl AdvisoryLock {
    fn acquire(cache_path: &Path) -> std::io::Result<Self> {
        let path = cache_path.with_extension("json.lock");
        let deadline = Instant::now() + STALE_AFTER + Duration::from_secs(1);
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    // Owner's pid, for post-mortem debugging of stale locks.
                    let _ = f.write_all(std::process::id().to_string().as_bytes());
                    return Ok(Self { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    // Break locks whose owner died mid-save.
                    if let Ok(meta) = std::fs::metadata(&path) {
                        let stale = meta
                            .modified()
                            .ok()
                            .and_then(|m| m.elapsed().ok())
                            .is_some_and(|age| age > STALE_AFTER);
                        if stale {
                            let _ = std::fs::remove_file(&path);
                            continue;
                        }
                    }
                    if Instant::now() > deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            format!("plan-cache lock {} held too long", path.display()),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for AdvisoryLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Resolve the cache file location from an explicit override, falling back
/// to a per-user file in the system temp directory. **Never** consults the
/// environment — processes that want `FSC_PLAN_CACHE` semantics resolve it
/// once at their boundary via [`env_cache_path`] and pass the result down.
pub fn resolve_cache_path(explicit: Option<&Path>) -> PathBuf {
    match explicit {
        Some(p) => p.to_path_buf(),
        None => default_cache_path(),
    }
}

/// The default per-user cache file in the system temp directory.
pub fn default_cache_path() -> PathBuf {
    std::env::temp_dir().join("fsc-plan-cache.json")
}

/// Boundary helper: the cache path named by `FSC_PLAN_CACHE`, if set and
/// non-empty. Call this once in `main` (CLI, server, bench binaries) and
/// thread the result through `TuneConfig::cache_path`; library code never
/// reads the environment, so tests under the multi-threaded runner cannot
/// race on it.
pub fn env_cache_path() -> Option<PathBuf> {
    match std::env::var(CACHE_ENV) {
        Ok(p) if !p.is_empty() => Some(PathBuf::from(p)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PlanCache {
        let mut c = PlanCache::default();
        c.entries.insert(
            "abc123:48x48x48:t8".into(),
            PlanRecord {
                tiles: vec![0, 16, 0],
                unroll: 4,
                slabs: 1,
                micros: 123.4,
            },
        );
        c.entries.insert(
            "ffee00:16x16:t1".into(),
            PlanRecord {
                tiles: vec![],
                unroll: 1,
                slabs: 0,
                micros: 9.0,
            },
        );
        c
    }

    #[test]
    fn render_parse_round_trip() {
        let c = sample();
        let parsed = PlanCache::parse(&c.render()).unwrap();
        assert_eq!(parsed.entries, c.entries);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("fsc-plancache-test-rt");
        let path = dir.join("cache.json");
        let _ = std::fs::remove_dir_all(&dir);
        let c = sample();
        c.save(&path).unwrap();
        let (loaded, diag) = PlanCache::load(&path);
        assert!(diag.is_none());
        assert_eq!(loaded.entries, c.entries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_a_clean_miss() {
        let (c, diag) = PlanCache::load(Path::new("/nonexistent/fsc/cache.json"));
        assert!(c.entries.is_empty());
        assert!(diag.is_none());
    }

    #[test]
    fn corrupt_and_truncated_files_degrade_with_coded_diagnostic() {
        let dir = std::env::temp_dir().join("fsc-plancache-test-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cases: [&str; 5] = [
            "not json at all",
            "{\"version\": 99, \"entries\": []}",
            "{\"version\": 1, \"entries\": [{\"key\": \"x\"",
            "{\"version\": 1}",
            "{\"version\": 1, \"entries\": [{\"key\": \"x\", \"tiles\": [1], \"unroll\": 0, \"slabs\": 0}]}",
        ];
        for (i, text) in cases.iter().enumerate() {
            let path = dir.join(format!("c{i}.json"));
            std::fs::write(&path, text).unwrap();
            let (c, diag) = PlanCache::load(&path);
            assert!(c.entries.is_empty(), "case {i} should be empty");
            let d = diag.unwrap_or_else(|| panic!("case {i} should carry a diagnostic"));
            assert_eq!(d.code, codes::PLAN_CACHE);
            assert!(d.render().contains("E0702"), "{}", d.render());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_record_converts_to_cached_plan() {
        let r = PlanRecord {
            tiles: vec![8, 8],
            unroll: 4,
            slabs: 2,
            micros: 1.0,
        };
        let p = r.to_plan();
        assert_eq!(p.provenance, PlanProvenance::Cached);
        assert_eq!(p.tiles, vec![8, 8]);
        assert_eq!(PlanRecord::from_plan(&p, 1.0), r);
    }

    #[test]
    fn resolve_prefers_explicit_path() {
        let p = resolve_cache_path(Some(Path::new("/tmp/explicit.json")));
        assert_eq!(p, PathBuf::from("/tmp/explicit.json"));
        // Default resolution lands somewhere non-empty and never consults
        // the environment.
        assert_eq!(resolve_cache_path(None), default_cache_path());
        assert!(!default_cache_path().as_os_str().is_empty());
    }

    /// The lost-update regression (ISSUE 6 satellite 1): two writers that
    /// each load the cache, insert a *different* fingerprint and save must
    /// both see their entry survive. Before merge-on-save, the last rename
    /// clobbered the other writer's insert; the racing pattern below lost
    /// an entry deterministically (both load the empty cache before either
    /// saves) and intermittently under true interleaving.
    #[test]
    fn racing_writers_both_survive_merge_on_save() {
        let dir = std::env::temp_dir().join("fsc-plancache-test-race");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("cache.json");

        let record = |micros: f64| PlanRecord {
            tiles: vec![0, 16, 0],
            unroll: 4,
            slabs: 1,
            micros,
        };
        // Deterministic interleaving of the read-modify-write cycle: both
        // writers load (empty), both insert, then both save.
        let (a_loaded, _) = PlanCache::load(&path);
        let (b_loaded, _) = PlanCache::load(&path);
        let mut a = a_loaded;
        a.entries.insert("writer-a:8x8x8:t1".into(), record(1.0));
        let mut b = b_loaded;
        b.entries.insert("writer-b:8x8x8:t2".into(), record(2.0));
        a.save(&path).unwrap();
        b.save(&path).unwrap();
        let (merged, diag) = PlanCache::load(&path);
        assert!(diag.is_none());
        assert!(
            merged.entries.contains_key("writer-a:8x8x8:t1"),
            "writer A's entry was clobbered: {:?}",
            merged.entries.keys().collect::<Vec<_>>()
        );
        assert!(merged.entries.contains_key("writer-b:8x8x8:t2"));

        // And under true thread interleaving: many writers, distinct keys,
        // all entries survive.
        let path2 = dir.join("cache2.json");
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let path2 = path2.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let (mut c, _) = PlanCache::load(&path2);
                    c.entries.insert(
                        format!("writer-{i}:4x4:t1"),
                        PlanRecord {
                            tiles: vec![],
                            unroll: 1,
                            slabs: 0,
                            micros: i as f64,
                        },
                    );
                    barrier.wait();
                    c.save(&path2).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (merged, _) = PlanCache::load(&path2);
        assert_eq!(merged.entries.len(), 8, "every racing writer must survive");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The disk quota: a save against a bloated on-disk cache evicts
    /// foreign entries first and publishes a file under the quota, with
    /// the writer's own fresh plans surviving.
    #[test]
    fn disk_quota_gc_evicts_foreign_entries_first() {
        let dir = std::env::temp_dir().join("fsc-plancache-test-quota");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("cache.json");
        let record = |micros: f64| PlanRecord {
            tiles: vec![0, 16, 0],
            unroll: 4,
            slabs: 1,
            micros,
        };
        let mut foreign = PlanCache::default();
        for i in 0..50 {
            foreign
                .entries
                .insert(format!("foreign-{i:03}:8x8:t1"), record(i as f64));
        }
        foreign.save_with_quota(&path, u64::MAX).unwrap();
        assert!(std::fs::metadata(&path).unwrap().len() > 1024);

        let mut own = PlanCache::default();
        own.entries.insert("own:8x8:t1".into(), record(1.0));
        own.save_with_quota(&path, 1024).unwrap();

        let (loaded, diag) = PlanCache::load(&path);
        assert!(diag.is_none(), "{diag:?}");
        assert!(
            loaded.entries.contains_key("own:8x8:t1"),
            "the writer's own entry must survive GC: {:?}",
            loaded.entries.keys().collect::<Vec<_>>()
        );
        assert!(loaded.entries.len() < 51, "GC must have evicted foreigners");
        assert!(loaded.render().len() <= 1024, "file must fit the quota");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A quota smaller than any entry still publishes a structurally
    /// valid (empty) cache file — never a corrupt or missing one.
    #[test]
    fn impossible_quota_still_publishes_a_valid_file() {
        let dir = std::env::temp_dir().join("fsc-plancache-test-quota-tiny");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("cache.json");
        sample().save_with_quota(&path, 10).unwrap();
        let (loaded, diag) = PlanCache::load(&path);
        assert!(diag.is_none(), "{diag:?}");
        assert!(loaded.entries.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_waits_for_a_briefly_held_lock() {
        let dir = std::env::temp_dir().join("fsc-plancache-test-heldlock");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        let lock = AdvisoryLock::acquire(&path).unwrap();
        let path2 = path.clone();
        let saver = std::thread::spawn(move || sample().save(&path2));
        std::thread::sleep(Duration::from_millis(30));
        drop(lock);
        saver.join().unwrap().unwrap();
        let (loaded, _) = PlanCache::load(&path);
        assert_eq!(loaded.entries.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
