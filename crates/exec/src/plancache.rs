//! The persistent plan cache: autotuned [`ExecPlan`]s keyed by kernel
//! fingerprint, stored as a small JSON file so calibration cost is paid
//! once per (kernel, grid extents, thread count) per machine.
//!
//! The format is deliberately tiny and hand-rolled (the workspace is
//! offline — no serde):
//!
//! ```json
//! {
//!   "version": 1,
//!   "entries": [
//!     {"key": "9f3ac11bd0e2a771:48x48x48:t8",
//!      "tiles": [0, 16, 0], "unroll": 4, "slabs": 1, "micros": 123.4}
//!   ]
//! }
//! ```
//!
//! Robustness contract (exercised by the round-trip tests): a missing
//! file is a clean miss; a corrupt/truncated/wrong-version file degrades
//! to an empty cache with a coded `E0702` warning — never a panic, never
//! a failed run. Writes go through a temp file + rename so a crashed
//! writer cannot leave a half-written cache behind.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use fsc_ir::diag::{codes, Diagnostic};

use crate::plan::{ExecPlan, PlanProvenance};

/// Current on-disk format version.
pub const CACHE_VERSION: i64 = 1;

/// Environment variable overriding the default cache location.
pub const CACHE_ENV: &str = "FSC_PLAN_CACHE";

/// One cached plan: the winning knobs plus the calibrated sweep time.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRecord {
    /// Winning tile extents (0 = unblocked).
    pub tiles: Vec<i64>,
    /// Winning unroll factor.
    pub unroll: u8,
    /// Winning slab budget (0 = auto).
    pub slabs: u32,
    /// Best calibration sweep time, microseconds (informational).
    pub micros: f64,
}

impl PlanRecord {
    /// The record as an executable plan with `Cached` provenance.
    pub fn to_plan(&self) -> ExecPlan {
        ExecPlan {
            tiles: self.tiles.clone(),
            unroll: self.unroll,
            slabs: self.slabs,
            provenance: PlanProvenance::Cached,
        }
    }

    /// A record from a freshly tuned plan.
    pub fn from_plan(plan: &ExecPlan, micros: f64) -> Self {
        Self {
            tiles: plan.tiles.clone(),
            unroll: plan.unroll,
            slabs: plan.slabs,
            micros,
        }
    }
}

/// An in-memory image of one cache file.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    /// Entries by fingerprint key (sorted map for a stable file layout).
    pub entries: BTreeMap<String, PlanRecord>,
}

impl PlanCache {
    /// Load a cache file. A missing file is a clean empty cache; anything
    /// unreadable or unparsable degrades to an empty cache plus an
    /// [`codes::PLAN_CACHE`] warning describing why.
    pub fn load(path: &Path) -> (Self, Option<Diagnostic>) {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return (Self::default(), None);
            }
            Err(e) => {
                return (
                    Self::default(),
                    Some(
                        Diagnostic::warning(
                            codes::PLAN_CACHE,
                            format!("plan cache {} is unreadable: {e}", path.display()),
                        )
                        .note("falling back to default execution plans"),
                    ),
                );
            }
        };
        match Self::parse(&text) {
            Ok(cache) => (cache, None),
            Err(why) => (
                Self::default(),
                Some(
                    Diagnostic::warning(
                        codes::PLAN_CACHE,
                        format!("plan cache {} is corrupt: {why}", path.display()),
                    )
                    .note("falling back to default execution plans")
                    .note("delete the file (or point FSC_PLAN_CACHE elsewhere) to silence this"),
                ),
            ),
        }
    }

    /// Serialise and atomically write to `path` (temp file + rename).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = path.with_extension("json.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.render().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Render the stable JSON layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {CACHE_VERSION},\n"));
        out.push_str("  \"entries\": [\n");
        let n = self.entries.len();
        for (i, (key, r)) in self.entries.iter().enumerate() {
            let tiles = r
                .tiles
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"key\": {}, \"tiles\": [{tiles}], \"unroll\": {}, \"slabs\": {}, \"micros\": {:.1}}}{}\n",
                json_string(key),
                r.unroll,
                r.slabs,
                r.micros,
                if i + 1 < n { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse the JSON layout (tolerant of whitespace and key order, strict
    /// about structure and version).
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = JsonParser::new(text).parse()?;
        let top = value.as_object().ok_or("top level is not an object")?;
        match top.get("version") {
            Some(Json::Num(v)) if *v == CACHE_VERSION as f64 => {}
            Some(Json::Num(v)) => return Err(format!("unsupported cache version {v}")),
            _ => return Err("missing version field".into()),
        }
        let entries = top
            .get("entries")
            .and_then(Json::as_array)
            .ok_or("missing entries array")?;
        let mut out = BTreeMap::new();
        for e in entries {
            let obj = e.as_object().ok_or("entry is not an object")?;
            let key = obj
                .get("key")
                .and_then(Json::as_str)
                .ok_or("entry missing key")?
                .to_string();
            let tiles = obj
                .get("tiles")
                .and_then(Json::as_array)
                .ok_or("entry missing tiles")?
                .iter()
                .map(|t| t.as_i64().ok_or("tile is not an integer"))
                .collect::<Result<Vec<_>, _>>()?;
            let unroll = obj
                .get("unroll")
                .and_then(Json::as_i64)
                .ok_or("entry missing unroll")?;
            let slabs = obj
                .get("slabs")
                .and_then(Json::as_i64)
                .ok_or("entry missing slabs")?;
            if !(1..=16).contains(&unroll) || !(0..=1 << 20).contains(&slabs) {
                return Err(format!("entry '{key}' has out-of-range knobs"));
            }
            let micros = obj.get("micros").and_then(Json::as_f64).unwrap_or(0.0);
            out.insert(
                key,
                PlanRecord {
                    tiles,
                    unroll: unroll as u8,
                    slabs: slabs as u32,
                    micros,
                },
            );
        }
        Ok(Self { entries: out })
    }
}

/// Resolve the cache file location: explicit override, else the
/// `FSC_PLAN_CACHE` environment variable, else a per-user file in the
/// system temp directory.
pub fn resolve_cache_path(explicit: Option<&Path>) -> PathBuf {
    if let Some(p) = explicit {
        return p.to_path_buf();
    }
    if let Ok(p) = std::env::var(CACHE_ENV) {
        if !p.is_empty() {
            return PathBuf::from(p);
        }
    }
    std::env::temp_dir().join("fsc-plan-cache.json")
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON value (just enough for the cache format).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
    fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 => Some(*n as i64),
            _ => None,
        }
    }
}

/// A small recursive-descent JSON parser (no external deps; depth-capped).
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value(0)?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing garbage at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > 32 {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected end or byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value(depth + 1)?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            out.insert(key, val);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PlanCache {
        let mut c = PlanCache::default();
        c.entries.insert(
            "abc123:48x48x48:t8".into(),
            PlanRecord {
                tiles: vec![0, 16, 0],
                unroll: 4,
                slabs: 1,
                micros: 123.4,
            },
        );
        c.entries.insert(
            "ffee00:16x16:t1".into(),
            PlanRecord {
                tiles: vec![],
                unroll: 1,
                slabs: 0,
                micros: 9.0,
            },
        );
        c
    }

    #[test]
    fn render_parse_round_trip() {
        let c = sample();
        let parsed = PlanCache::parse(&c.render()).unwrap();
        assert_eq!(parsed.entries, c.entries);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("fsc-plancache-test-rt");
        let path = dir.join("cache.json");
        let _ = std::fs::remove_dir_all(&dir);
        let c = sample();
        c.save(&path).unwrap();
        let (loaded, diag) = PlanCache::load(&path);
        assert!(diag.is_none());
        assert_eq!(loaded.entries, c.entries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_a_clean_miss() {
        let (c, diag) = PlanCache::load(Path::new("/nonexistent/fsc/cache.json"));
        assert!(c.entries.is_empty());
        assert!(diag.is_none());
    }

    #[test]
    fn corrupt_and_truncated_files_degrade_with_coded_diagnostic() {
        let dir = std::env::temp_dir().join("fsc-plancache-test-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cases: [&str; 5] = [
            "not json at all",
            "{\"version\": 99, \"entries\": []}",
            "{\"version\": 1, \"entries\": [{\"key\": \"x\"",
            "{\"version\": 1}",
            "{\"version\": 1, \"entries\": [{\"key\": \"x\", \"tiles\": [1], \"unroll\": 0, \"slabs\": 0}]}",
        ];
        for (i, text) in cases.iter().enumerate() {
            let path = dir.join(format!("c{i}.json"));
            std::fs::write(&path, text).unwrap();
            let (c, diag) = PlanCache::load(&path);
            assert!(c.entries.is_empty(), "case {i} should be empty");
            let d = diag.unwrap_or_else(|| panic!("case {i} should carry a diagnostic"));
            assert_eq!(d.code, codes::PLAN_CACHE);
            assert!(d.render().contains("E0702"), "{}", d.render());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_record_converts_to_cached_plan() {
        let r = PlanRecord {
            tiles: vec![8, 8],
            unroll: 4,
            slabs: 2,
            micros: 1.0,
        };
        let p = r.to_plan();
        assert_eq!(p.provenance, PlanProvenance::Cached);
        assert_eq!(p.tiles, vec![8, 8]);
        assert_eq!(PlanRecord::from_plan(&p, 1.0), r);
    }

    #[test]
    fn resolve_prefers_explicit_path() {
        let p = resolve_cache_path(Some(Path::new("/tmp/explicit.json")));
        assert_eq!(p, PathBuf::from("/tmp/explicit.json"));
        // Default resolution lands somewhere non-empty.
        assert!(!resolve_cache_path(None).as_os_str().is_empty());
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = JsonParser::new(r#"{"a": "x\"\\\nAé", "b": [1, -2.5e1]}"#)
            .parse()
            .unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("a").unwrap().as_str().unwrap(), "x\"\\\nAé");
        let arr = obj.get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_f64().unwrap(), -25.0);
    }
}
