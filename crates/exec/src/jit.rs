//! Template-stitching JIT tier: compile any [`BodyProgram`] + [`ExecPlan`]
//! into a flat, dispatch-free row program, plus the process-wide
//! content-addressed artifact cache that makes warm recompiles O(1).
//!
//! # Stitching strategy (DESIGN.md §14)
//!
//! The fused VM still pays one `match` per instruction per 64-lane strip.
//! This module removes that dispatch for *arbitrary* nests, not just the
//! three hand-specialized templates: at kernel-compile time every cell
//! instruction is lowered to a **pre-monomorphized fragment** — a concrete
//! Rust type instantiated per op kind (`BinKind`/`UnKind`/`MaKind`/
//! `CmpKind`) whose inner loop over the unit-stride row is straight-line,
//! branch-free and auto-vectorisable. The stitched program is a flat
//! `Vec<Box<dyn RowOp>>`: one indirect call per fragment per *row*,
//! amortised over the whole row width, zero dispatch per cell.
//!
//! On top of the 1:1 fragments a peephole stitches **linear-combination
//! chains** (`acc = seed ± c·load ± …`, optionally scaled and stored) into
//! a single [`LinChain`] fragment with the accumulator held in a register
//! across taps — re-deriving the performance of the hand-written
//! `ScaledSum`/`LinComb` templates for nests those templates reject. Chain
//! arithmetic reproduces the VM's exact per-cell operation sequence (two
//! roundings per multiply–accumulate, left-folded order), so every tier
//! stays bit-identical; the differential proptests force all of them.
//!
//! View-offset address arithmetic is resolved at stitch time: offsets are
//! already linearised against the strides by the kernel compiler, so
//! fragments index `cursor + off` directly. The `unroll` knob of the
//! [`ExecPlan`] selects the unroll-4 loop skeleton inside chain fragments,
//! mirroring the specialized tier.
//!
//! # Artifact cache
//!
//! [`JitCache`] is keyed by an FNV-1a content hash of (bytecode, plan
//! knobs, [`JIT_VERSION`]): any plan retune or jit-version bump changes the
//! key and therefore invalidates exactly its own entries. The cache is
//! byte-budgeted with the same governance rules as the server artifact
//! cache (FIFO eviction, oversize rejection, the just-admitted entry is
//! never its own victim), guarded by singleflight so concurrent compiles
//! of the same content hash run codegen exactly once, and every fetched
//! artifact is integrity-checked against its layout checksum — a corrupt
//! entry is evicted with a coded [`codes::JIT_ARTIFACT`] warning and
//! rebuilt fresh, never executed. Construction failures are reported as
//! [`JitSkip`] and degrade to the fused VM (coded
//! [`codes::JIT_FALLBACK`] warning), never a run failure.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use fsc_ir::diag::{codes, Diagnostic};

use crate::bytecode::{
    bin_eval, cmp_eval, exec_scalar_instr, mul_acc, un_eval, BinKind, BodyProgram, CmpKind, Instr,
    MaKind, UnKind,
};
use crate::plan::ExecPlan;

/// Version stamp baked into every content hash. Bump when the stitching
/// strategy changes shape so stale artifacts can never be revived.
pub const JIT_VERSION: u32 = 1;

/// Default entry capacity of the shared artifact cache.
pub const DEFAULT_JIT_ENTRIES: usize = 512;

/// Default byte budget of the shared artifact cache.
pub const DEFAULT_JIT_BYTES: u64 = 32 << 20;

/// Registers above this are declared pathological and skipped (the row
/// scratch is `num_regs * width` doubles per thread).
const MAX_JIT_REGS: u16 = 4096;

/// Longest chain folded into a single monomorphized fragment; longer
/// chains continue into a follow-up chain seeded by the accumulator.
const MAX_CHAIN_TAPS: usize = 8;

// ---------------------------------------------------------------------------
// FNV-1a content hashing
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

fn fnv_words(words: &[u64]) -> u64 {
    let mut h = Fnv::new();
    for &w in words {
        h.write_u64(w);
    }
    h.finish()
}

/// Content hash of (bytecode, plan knobs, jit version) — the artifact key.
/// Plan *provenance* is deliberately excluded: a retune that lands on the
/// same knobs produces the same machine object and may share the artifact.
pub fn content_key(program: &BodyProgram, plan: &ExecPlan, version: u32) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(version as u64);
    h.write_u64(program.num_regs as u64);
    h.write_u64(program.prelude_len as u64);
    for instr in &program.instrs {
        h.write(format!("{instr:?}").as_bytes());
        h.write(b"\n");
    }
    for &t in &plan.tiles {
        h.write_u64(t as u64);
    }
    h.write(b"|");
    h.write_u64(plan.unroll as u64);
    h.write_u64(plan.slabs as u64);
    h.finish()
}

// ---------------------------------------------------------------------------
// Artifact provenance + skip reasons
// ---------------------------------------------------------------------------

/// Where an executed jit object came from, attested per nest in
/// `RunReport` and per request in server responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JitArtifact {
    /// Codegen ran in this call.
    Fresh,
    /// Another in-flight compile of the same content hash ran codegen;
    /// this call waited on the singleflight slot.
    Deduped,
    /// Served from the content-addressed artifact cache without codegen.
    Cached,
}

impl JitArtifact {
    /// Stable lowercase name used in reports and server responses.
    pub fn describe(self) -> &'static str {
        match self {
            JitArtifact::Fresh => "fresh",
            JitArtifact::Deduped => "deduped",
            JitArtifact::Cached => "cached",
        }
    }
}

impl std::fmt::Display for JitArtifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.describe())
    }
}

/// Why a program was not stitched. Never an error: the nest degrades to
/// the fused VM with a coded warning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JitSkip {
    /// Two stores target the same view: full-row store passes would
    /// reorder the per-cell overwrite sequence the VM performs.
    MultiStoreView,
    /// An instruction reads a register at or above its destination,
    /// breaking the SSA split the row buffers rely on.
    RegisterOrder,
    /// The register file is too large to stage as row buffers.
    TooManyRegs,
    /// The prelude holds something other than `Const`/`Arg`.
    PreludeShape,
}

impl JitSkip {
    /// Stable reason string for diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            JitSkip::MultiStoreView => "multiple stores to one view",
            JitSkip::RegisterOrder => "register order violates SSA split",
            JitSkip::TooManyRegs => "register file too large for row staging",
            JitSkip::PreludeShape => "non-scalar prelude instruction",
        }
    }
}

// ---------------------------------------------------------------------------
// Row execution context + fragment trait
// ---------------------------------------------------------------------------

/// Machine state a fragment sees while executing one unit-stride row.
pub struct RowCtx<'a, 'i, 'o> {
    /// Row register file: `num_regs * w` doubles, prelude rows pre-filled.
    pub regs: &'a mut [f64],
    /// Row width (cells).
    pub w: usize,
    /// Input view slices.
    pub inputs: &'a [&'i [f64]],
    /// Output slabs.
    pub outputs: &'a mut [&'o mut [f64]],
    /// View index → output slot.
    pub out_view_map: &'a [Option<u16>],
    /// Per-view linear cursor of lane 0 (slab-relative for outputs).
    pub cursors: &'a [i64],
    /// Global dim-0 coordinate of lane 0.
    pub coord0: i64,
    /// Outer-dimension coordinates.
    pub coords: &'a [i64],
    /// Scalar kernel arguments.
    pub scalars: &'a [f64],
    /// Prelude register values for this nest invocation.
    pub pre: &'a [f64],
}

/// One stitched fragment: executes its op across the whole row.
trait RowOp: Send + Sync + std::fmt::Debug {
    fn run(&self, ctx: &mut RowCtx<'_, '_, '_>);
}

/// Split the register file into the destination row and the (strictly
/// lower, per SSA) source region.
#[inline(always)]
fn split_dst(regs: &mut [f64], w: usize, dst: u16) -> (&mut [f64], &[f64]) {
    let (lo, hi) = regs.split_at_mut(dst as usize * w);
    (&mut hi[..w], lo)
}

#[inline(always)]
fn row(lo: &[f64], w: usize, r: u16) -> &[f64] {
    &lo[r as usize * w..r as usize * w + w]
}

// ---------------------------------------------------------------------------
// Op-kind ZSTs: one monomorphized fragment body per kind, all evaluated
// through the same `bin_eval`/`un_eval`/`cmp_eval`/`mul_acc` the VM uses,
// with the kind a compile-time constant so the match folds away.
// ---------------------------------------------------------------------------

trait BinK: Send + Sync + std::fmt::Debug + 'static {
    const KIND: BinKind;
}
trait UnK: Send + Sync + std::fmt::Debug + 'static {
    const KIND: UnKind;
}
trait CmpK: Send + Sync + std::fmt::Debug + 'static {
    const KIND: CmpKind;
}
trait MaK: Send + Sync + std::fmt::Debug + 'static {
    const KIND: MaKind;
}

macro_rules! kind_zsts {
    ($tr:ident, $kty:ident : $($name:ident => $variant:ident),+ $(,)?) => {
        $(
            #[derive(Debug)]
            struct $name;
            impl $tr for $name {
                const KIND: $kty = $kty::$variant;
            }
        )+
    };
}

kind_zsts!(BinK, BinKind:
    ZAdd => Add, ZSub => Sub, ZMul => Mul, ZDiv => Div, ZMin => Min,
    ZMax => Max, ZPow => Pow, ZAtan2 => Atan2, ZCopySign => CopySign, ZRem => Rem,
);
kind_zsts!(UnK, UnKind:
    ZNeg => Neg, ZSqrt => Sqrt, ZAbs => Abs, ZExp => Exp, ZLog => Log,
    ZSin => Sin, ZCos => Cos, ZTanh => Tanh, ZTrunc => Trunc,
);
kind_zsts!(CmpK, CmpKind:
    ZEq => Eq, ZNe => Ne, ZLt => Lt, ZLe => Le, ZGt => Gt, ZGe => Ge,
);
kind_zsts!(MaK, MaKind:
    ZCPlusMul => CPlusMul, ZCMinusMul => CMinusMul, ZMulMinusC => MulMinusC,
);

// ---------------------------------------------------------------------------
// 1:1 fragments
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct FillConst {
    dst: u16,
    val: f64,
}
impl RowOp for FillConst {
    fn run(&self, ctx: &mut RowCtx<'_, '_, '_>) {
        let (d, _) = split_dst(ctx.regs, ctx.w, self.dst);
        d.fill(self.val);
    }
}

#[derive(Debug)]
struct FillArg {
    dst: u16,
    arg: u16,
}
impl RowOp for FillArg {
    fn run(&self, ctx: &mut RowCtx<'_, '_, '_>) {
        let v = ctx.scalars[self.arg as usize];
        let (d, _) = split_dst(ctx.regs, ctx.w, self.dst);
        d.fill(v);
    }
}

#[derive(Debug)]
struct CoordRow {
    dst: u16,
    dim: u8,
}
impl RowOp for CoordRow {
    fn run(&self, ctx: &mut RowCtx<'_, '_, '_>) {
        let coord0 = ctx.coord0;
        let fill = if self.dim == 0 {
            None
        } else {
            Some(ctx.coords[self.dim as usize] as f64)
        };
        let (d, _) = split_dst(ctx.regs, ctx.w, self.dst);
        match fill {
            Some(v) => d.fill(v),
            None => {
                for (x, r) in d.iter_mut().enumerate() {
                    *r = (coord0 + x as i64) as f64;
                }
            }
        }
    }
}

#[derive(Debug)]
struct LoadRow {
    dst: u16,
    view: u16,
    off: i64,
}
impl RowOp for LoadRow {
    fn run(&self, ctx: &mut RowCtx<'_, '_, '_>) {
        let base = (ctx.cursors[self.view as usize] + self.off) as usize;
        let src = &ctx.inputs[self.view as usize][base..base + ctx.w];
        let (d, _) = split_dst(ctx.regs, ctx.w, self.dst);
        d.copy_from_slice(src);
    }
}

#[derive(Debug)]
struct StoreRow {
    view: u16,
    off: i64,
    src: u16,
}
impl RowOp for StoreRow {
    fn run(&self, ctx: &mut RowCtx<'_, '_, '_>) {
        let slot = ctx.out_view_map[self.view as usize]
            .expect("jit store to a view that is not an output") as usize;
        let base = (ctx.cursors[self.view as usize] + self.off) as usize;
        let src = row(ctx.regs, ctx.w, self.src);
        ctx.outputs[slot][base..base + ctx.w].copy_from_slice(src);
    }
}

#[derive(Debug)]
struct BinRow<K: BinK> {
    dst: u16,
    a: u16,
    b: u16,
    _k: std::marker::PhantomData<K>,
}
impl<K: BinK> RowOp for BinRow<K> {
    fn run(&self, ctx: &mut RowCtx<'_, '_, '_>) {
        let w = ctx.w;
        let (d, lo) = split_dst(ctx.regs, w, self.dst);
        let (a, b) = (row(lo, w, self.a), row(lo, w, self.b));
        for ((dv, &av), &bv) in d.iter_mut().zip(a).zip(b) {
            *dv = bin_eval(K::KIND, av, bv);
        }
    }
}

#[derive(Debug)]
struct UnRow<K: UnK> {
    dst: u16,
    a: u16,
    _k: std::marker::PhantomData<K>,
}
impl<K: UnK> RowOp for UnRow<K> {
    fn run(&self, ctx: &mut RowCtx<'_, '_, '_>) {
        let w = ctx.w;
        let (d, lo) = split_dst(ctx.regs, w, self.dst);
        let a = row(lo, w, self.a);
        for (dv, &av) in d.iter_mut().zip(a) {
            *dv = un_eval(K::KIND, av);
        }
    }
}

#[derive(Debug)]
struct CmpRow<K: CmpK> {
    dst: u16,
    a: u16,
    b: u16,
    _k: std::marker::PhantomData<K>,
}
impl<K: CmpK> RowOp for CmpRow<K> {
    fn run(&self, ctx: &mut RowCtx<'_, '_, '_>) {
        let w = ctx.w;
        let (d, lo) = split_dst(ctx.regs, w, self.dst);
        let (a, b) = (row(lo, w, self.a), row(lo, w, self.b));
        for ((dv, &av), &bv) in d.iter_mut().zip(a).zip(b) {
            *dv = cmp_eval(K::KIND, av, bv);
        }
    }
}

#[derive(Debug)]
struct SelectRow {
    dst: u16,
    c: u16,
    a: u16,
    b: u16,
}
impl RowOp for SelectRow {
    fn run(&self, ctx: &mut RowCtx<'_, '_, '_>) {
        let w = ctx.w;
        let (d, lo) = split_dst(ctx.regs, w, self.dst);
        let (c, a, b) = (row(lo, w, self.c), row(lo, w, self.a), row(lo, w, self.b));
        for (x, dv) in d.iter_mut().enumerate() {
            *dv = if c[x] != 0.0 { a[x] } else { b[x] };
        }
    }
}

#[derive(Debug)]
struct MaRow<K: MaK> {
    dst: u16,
    a: u16,
    b: u16,
    c: u16,
    _k: std::marker::PhantomData<K>,
}
impl<K: MaK> RowOp for MaRow<K> {
    fn run(&self, ctx: &mut RowCtx<'_, '_, '_>) {
        let w = ctx.w;
        let (d, lo) = split_dst(ctx.regs, w, self.dst);
        let (a, b, c) = (row(lo, w, self.a), row(lo, w, self.b), row(lo, w, self.c));
        for (x, dv) in d.iter_mut().enumerate() {
            *dv = mul_acc(K::KIND, a[x], b[x], c[x]);
        }
    }
}

#[derive(Debug)]
struct BinLoadRow<K: BinK, const LOAD_LEFT: bool> {
    dst: u16,
    a: u16,
    view: u16,
    off: i64,
    _k: std::marker::PhantomData<K>,
}
impl<K: BinK, const LOAD_LEFT: bool> RowOp for BinLoadRow<K, LOAD_LEFT> {
    fn run(&self, ctx: &mut RowCtx<'_, '_, '_>) {
        let w = ctx.w;
        let base = (ctx.cursors[self.view as usize] + self.off) as usize;
        let mem = &ctx.inputs[self.view as usize][base..base + w];
        let (d, lo) = split_dst(ctx.regs, w, self.dst);
        let a = row(lo, w, self.a);
        for ((dv, &av), &mv) in d.iter_mut().zip(a).zip(mem) {
            *dv = if LOAD_LEFT {
                bin_eval(K::KIND, mv, av)
            } else {
                bin_eval(K::KIND, av, mv)
            };
        }
    }
}

// ---------------------------------------------------------------------------
// Linear-combination chains
// ---------------------------------------------------------------------------

/// Where a chain's accumulator starts.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SeedRef {
    /// A direct load (the absorbed `Load` / `BinLoad{Mul}` seed).
    View { view: u16, off: i64 },
    /// An already-materialised register row.
    Reg(u16),
}

/// Per-tap coefficient. `One`/`NegOne` reproduce plain add/sub taps
/// (`1.0 * x` and `-1.0 * x` are exact, so the accumulated value is
/// bit-identical to the VM's `acc + x` / `acc - x`); `Pre` reads a prelude
/// register, negated for `CMinusMul` (`c - m` ≡ `c + (-a)*b` exactly).
#[derive(Debug, Clone, Copy, PartialEq)]
enum TapCoef {
    One,
    NegOne,
    Pre { reg: u16, negate: bool },
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct ChainTap {
    view: u16,
    off: i64,
    coef: TapCoef,
}

/// Where the chain result lands.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Sink {
    Reg,
    Store { view: u16, off: i64 },
}

/// Detected chain shape, before monomorphization.
#[derive(Debug, Clone, PartialEq)]
struct ChainSpec {
    /// Final destination register (post-scale).
    dst: u16,
    seed: SeedRef,
    /// `Some(coef_reg)` when the seed is `coef * load` (a folded
    /// `BinLoad{Mul}` against a prelude register).
    seed_coef: Option<u16>,
    taps: Vec<ChainTap>,
    /// `0` none, `1` divide by prelude reg, `2` multiply by prelude reg.
    scale_kind: u8,
    scale_reg: u16,
    sink: Sink,
}

/// The stitched chain fragment: `K` taps monomorphized, seed scaling and
/// result scaling folded in, optional direct store sink, unroll-4 skeleton
/// from the plan.
#[derive(Debug)]
struct LinChain<const K: usize, const SEED_SCALED: bool, const SCALE: u8> {
    dst: u16,
    seed: SeedRef,
    seed_coef: u16,
    taps: [ChainTap; K],
    scale_reg: u16,
    sink: Sink,
    unroll4: bool,
}

impl<const K: usize, const SEED_SCALED: bool, const SCALE: u8> RowOp
    for LinChain<K, SEED_SCALED, SCALE>
{
    #[allow(clippy::needless_range_loop)]
    fn run(&self, ctx: &mut RowCtx<'_, '_, '_>) {
        let w = ctx.w;
        let RowCtx {
            regs,
            inputs,
            outputs,
            out_view_map,
            cursors,
            pre,
            ..
        } = ctx;
        let mut coefs = [0.0f64; K];
        let mut bases: [&[f64]; K] = [&[]; K];
        for t in 0..K {
            let tap = &self.taps[t];
            coefs[t] = match tap.coef {
                TapCoef::One => 1.0,
                TapCoef::NegOne => -1.0,
                TapCoef::Pre { reg, negate } => {
                    let v = pre[reg as usize];
                    if negate {
                        -v
                    } else {
                        v
                    }
                }
            };
            let base = (cursors[tap.view as usize] + tap.off) as usize;
            bases[t] = &inputs[tap.view as usize][base..base + w];
        }
        let seed_coef = if SEED_SCALED {
            pre[self.seed_coef as usize]
        } else {
            0.0
        };
        let scale = if SCALE != 0 {
            pre[self.scale_reg as usize]
        } else {
            0.0
        };
        let (d, lo) = split_dst(regs, w, self.dst);
        let seed: &[f64] = match self.seed {
            SeedRef::View { view, off } => {
                let base = (cursors[view as usize] + off) as usize;
                &inputs[view as usize][base..base + w]
            }
            SeedRef::Reg(r) => row(lo, w, r),
        };
        let lane = |x: usize| -> f64 {
            let mut acc = seed[x];
            if SEED_SCALED {
                // `coef * value`, never `value * coef`: operand order must
                // mirror the VM's `mul` bit-for-bit.
                #[allow(clippy::assign_op_pattern)]
                {
                    acc = seed_coef * acc;
                }
            }
            for t in 0..K {
                acc += coefs[t] * bases[t][x];
            }
            match SCALE {
                1 => acc / scale,
                2 => acc * scale,
                _ => acc,
            }
        };
        let d: &mut [f64] = match self.sink {
            Sink::Reg => d,
            Sink::Store { view, off } => {
                let slot = out_view_map[view as usize]
                    .expect("jit chain store to a view that is not an output")
                    as usize;
                let base = (cursors[view as usize] + off) as usize;
                &mut outputs[slot][base..base + w]
            }
        };
        let mut x = 0;
        if self.unroll4 {
            while x + 4 <= w {
                d[x] = lane(x);
                d[x + 1] = lane(x + 1);
                d[x + 2] = lane(x + 2);
                d[x + 3] = lane(x + 3);
                x += 4;
            }
        }
        while x < w {
            d[x] = lane(x);
            x += 1;
        }
    }
}

/// Monomorphize a detected chain: `K` × seed-scaled × scale-kind.
fn box_chain(spec: &ChainSpec, unroll4: bool) -> Box<dyn RowOp> {
    fn mk<const K: usize>(spec: &ChainSpec, unroll4: bool) -> Box<dyn RowOp> {
        let taps: [ChainTap; K] = spec.taps.clone().try_into().expect("chain arity");
        macro_rules! chain {
            ($ss:literal, $sc:literal) => {
                Box::new(LinChain::<K, $ss, $sc> {
                    dst: spec.dst,
                    seed: spec.seed,
                    seed_coef: spec.seed_coef.unwrap_or(0),
                    taps,
                    scale_reg: spec.scale_reg,
                    sink: spec.sink,
                    unroll4,
                })
            };
        }
        match (spec.seed_coef.is_some(), spec.scale_kind) {
            (false, 0) => chain!(false, 0),
            (false, 1) => chain!(false, 1),
            (false, 2) => chain!(false, 2),
            (true, 0) => chain!(true, 0),
            (true, 1) => chain!(true, 1),
            (true, 2) => chain!(true, 2),
            _ => unreachable!("scale kind out of range"),
        }
    }
    match spec.taps.len() {
        1 => mk::<1>(spec, unroll4),
        2 => mk::<2>(spec, unroll4),
        3 => mk::<3>(spec, unroll4),
        4 => mk::<4>(spec, unroll4),
        5 => mk::<5>(spec, unroll4),
        6 => mk::<6>(spec, unroll4),
        7 => mk::<7>(spec, unroll4),
        8 => mk::<8>(spec, unroll4),
        n => unreachable!("chain arity {n} exceeds MAX_CHAIN_TAPS"),
    }
}

// ---------------------------------------------------------------------------
// Chain detection
// ---------------------------------------------------------------------------

/// Registers a cell instruction reads.
fn operand_regs(instr: &Instr, out: &mut Vec<u16>) {
    out.clear();
    match *instr {
        Instr::Const { .. } | Instr::Arg { .. } | Instr::Coord { .. } | Instr::Load { .. } => {}
        Instr::Bin { a, b, .. } | Instr::Cmp { a, b, .. } => out.extend([a, b]),
        Instr::Un { a, .. } | Instr::BinLoad { a, .. } => out.push(a),
        Instr::Select { c, a, b, .. } => out.extend([c, a, b]),
        Instr::MulAdd { a, b, c, .. } => out.extend([a, b, c]),
        Instr::Store { src, .. } => out.push(src),
    }
}

fn dst_reg(instr: &Instr) -> Option<u16> {
    match *instr {
        Instr::Const { dst, .. }
        | Instr::Arg { dst, .. }
        | Instr::Coord { dst, .. }
        | Instr::Load { dst, .. }
        | Instr::Bin { dst, .. }
        | Instr::Un { dst, .. }
        | Instr::Cmp { dst, .. }
        | Instr::Select { dst, .. }
        | Instr::MulAdd { dst, .. }
        | Instr::BinLoad { dst, .. } => Some(dst),
        Instr::Store { .. } => None,
    }
}

/// One emission unit after chain detection.
enum StitchItem {
    Plain(usize),
    Chain(ChainSpec),
}

struct ChainScan<'p> {
    ins: &'p [Instr],
    uses: Vec<u32>,
    is_pre: Vec<bool>,
}

impl<'p> ChainScan<'p> {
    fn new(program: &'p BodyProgram) -> Self {
        let ins = program.cell_instrs();
        let mut uses = vec![0u32; program.num_regs as usize];
        let mut scratch = Vec::new();
        for instr in ins {
            operand_regs(instr, &mut scratch);
            for &r in &scratch {
                uses[r as usize] += 1;
            }
        }
        let mut is_pre = vec![false; program.num_regs as usize];
        for instr in &program.instrs[..program.prelude_len] {
            if let Some(d) = dst_reg(instr) {
                is_pre[d as usize] = true;
            }
        }
        Self { ins, uses, is_pre }
    }

    fn used_once(&self, r: u16) -> bool {
        self.uses[r as usize] == 1
    }

    fn pre(&self, r: u16) -> bool {
        self.is_pre[r as usize]
    }

    /// If `ins[j]` (with possibly one helper `Load` at `j`) extends a
    /// chain whose accumulator is `acc`, return the tap, the new
    /// accumulator and the next scan index.
    fn link_at(&self, j: usize, acc: u16) -> Option<(ChainTap, u16, usize)> {
        match self.ins.get(j) {
            Some(&Instr::BinLoad {
                dst,
                kind,
                a,
                view,
                off,
                load_left,
            }) if a == acc => {
                let coef = match kind {
                    BinKind::Add => TapCoef::One,
                    // `load - acc` is not linear in the accumulator.
                    BinKind::Sub if !load_left => TapCoef::NegOne,
                    _ => return None,
                };
                Some((ChainTap { view, off, coef }, dst, j + 1))
            }
            Some(&Instr::Load {
                dst: lreg,
                view,
                off,
            }) if self.used_once(lreg) => match self.ins.get(j + 1) {
                Some(&Instr::MulAdd {
                    dst,
                    a,
                    b,
                    c,
                    kind: kind @ (MaKind::CPlusMul | MaKind::CMinusMul),
                }) if c == acc => {
                    // Exactly one multiplicand is the fresh load, the
                    // other a loop-invariant prelude scalar.
                    let coef_reg = if a == lreg && self.pre(b) {
                        b
                    } else if b == lreg && self.pre(a) {
                        a
                    } else {
                        return None;
                    };
                    let coef = TapCoef::Pre {
                        reg: coef_reg,
                        negate: kind == MaKind::CMinusMul,
                    };
                    Some((ChainTap { view, off, coef }, dst, j + 2))
                }
                _ => None,
            },
            _ => None,
        }
    }

    /// Try to start a chain at instruction `i`; returns the spec and the
    /// index just past the consumed instructions.
    fn chain_from(&self, i: usize) -> Option<(ChainSpec, usize)> {
        // Absorbable seed: a single-use Load, or a single-use
        // `BinLoad{Mul}` against a prelude coefficient (ScaledSum head).
        let (seed, seed_coef, seed_dst, mut j) = match self.ins[i] {
            Instr::Load { dst, view, off } if self.used_once(dst) => {
                (SeedRef::View { view, off }, None, dst, i + 1)
            }
            Instr::BinLoad {
                dst,
                kind: BinKind::Mul,
                a,
                view,
                off,
                ..
            } if self.used_once(dst) && self.pre(a) => {
                (SeedRef::View { view, off }, Some(a), dst, i + 1)
            }
            _ => {
                // No absorbable seed: the chain may still start from an
                // existing register row if `i` itself is a link.
                let (tap, acc, next) = self.link_at(i, self.acc_candidate(i)?)?;
                let mut spec = ChainSpec {
                    dst: acc,
                    seed: SeedRef::Reg(self.acc_candidate(i)?),
                    seed_coef: None,
                    taps: vec![tap],
                    scale_kind: 0,
                    scale_reg: 0,
                    sink: Sink::Reg,
                };
                let end = self.grow(&mut spec, next);
                return Some((spec, end));
            }
        };
        // The seed must feed a first link, otherwise it is a plain load.
        let (tap, acc, next) = self.link_at(j, seed_dst)?;
        let mut spec = ChainSpec {
            dst: acc,
            seed,
            seed_coef,
            taps: vec![tap],
            scale_kind: 0,
            scale_reg: 0,
            sink: Sink::Reg,
        };
        j = next;
        let end = self.grow(&mut spec, j);
        Some((spec, end))
    }

    /// The accumulator register a link at `i` would consume, if any.
    fn acc_candidate(&self, i: usize) -> Option<u16> {
        match self.ins[i] {
            Instr::BinLoad { a, .. } => Some(a),
            Instr::Load { dst, .. } if self.used_once(dst) => match self.ins.get(i + 1) {
                Some(&Instr::MulAdd { c, .. }) => Some(c),
                _ => None,
            },
            _ => None,
        }
    }

    /// Grow `spec` with further links, then fold a trailing scale and
    /// store. Returns the index just past everything consumed.
    fn grow(&self, spec: &mut ChainSpec, mut j: usize) -> usize {
        loop {
            if spec.taps.len() >= MAX_CHAIN_TAPS {
                break;
            }
            // The accumulator must be consumed *only* by the next link.
            if !self.used_once(spec.dst) {
                break;
            }
            match self.link_at(j, spec.dst) {
                Some((tap, acc, next)) => {
                    spec.taps.push(tap);
                    spec.dst = acc;
                    j = next;
                }
                None => break,
            }
        }
        // Fold `acc / c`, `acc * c`, `c * acc` against a prelude scalar.
        if self.used_once(spec.dst) {
            if let Some(&Instr::Bin { dst, kind, a, b }) = self.ins.get(j) {
                let folded = match kind {
                    BinKind::Div if a == spec.dst && self.pre(b) => Some((1u8, b)),
                    BinKind::Mul if a == spec.dst && self.pre(b) => Some((2u8, b)),
                    BinKind::Mul if b == spec.dst && self.pre(a) => Some((2u8, a)),
                    _ => None,
                };
                if let Some((sk, sr)) = folded {
                    spec.scale_kind = sk;
                    spec.scale_reg = sr;
                    spec.dst = dst;
                    j += 1;
                }
            }
        }
        // Fold a trailing store of the (scaled) result.
        if self.used_once(spec.dst) {
            if let Some(&Instr::Store { view, off, src }) = self.ins.get(j) {
                if src == spec.dst {
                    spec.sink = Sink::Store { view, off };
                    j += 1;
                }
            }
        }
        j
    }

    /// Split the cell program into plain fragments and folded chains.
    fn items(&self) -> Vec<StitchItem> {
        let mut items = Vec::new();
        let mut i = 0;
        while i < self.ins.len() {
            match self.chain_from(i) {
                Some((spec, end)) => {
                    items.push(StitchItem::Chain(spec));
                    i = end;
                }
                None => {
                    items.push(StitchItem::Plain(i));
                    i += 1;
                }
            }
        }
        items
    }
}

// ---------------------------------------------------------------------------
// The stitched program
// ---------------------------------------------------------------------------

/// A stitched, dispatch-free row program plus the metadata the artifact
/// cache needs (content key, layout checksum, byte estimate).
#[derive(Debug)]
pub struct JitProgram {
    steps: Vec<Box<dyn RowOp>>,
    /// One descriptor word per step; the checksum covers exactly this
    /// stitched layout.
    layout: Vec<u64>,
    /// FNV of `layout`, revalidated on every cache fetch. Atomic so tests
    /// can corrupt it in place.
    checksum: AtomicU64,
    /// Loop-invariant prefix (Const/Arg only), evaluated per nest.
    prelude: Vec<Instr>,
    prelude_dsts: Vec<u16>,
    num_regs: u16,
    key: u64,
    version: u32,
    chained_taps: usize,
}

impl JitProgram {
    /// Stitch `program` (normally the *fused* body) under `plan`.
    pub fn build(program: &BodyProgram, plan: &ExecPlan, version: u32) -> Result<Self, JitSkip> {
        if program.num_regs > MAX_JIT_REGS {
            return Err(JitSkip::TooManyRegs);
        }
        let prelude = &program.instrs[..program.prelude_len];
        if !prelude
            .iter()
            .all(|i| matches!(i, Instr::Const { .. } | Instr::Arg { .. }))
        {
            return Err(JitSkip::PreludeShape);
        }
        // Full-row store passes must not reorder per-cell overwrites.
        let mut stores: HashMap<u16, u32> = HashMap::new();
        for instr in program.cell_instrs() {
            if let Instr::Store { view, .. } = instr {
                if *stores.entry(*view).or_insert(0) > 0 {
                    return Err(JitSkip::MultiStoreView);
                }
                *stores.get_mut(view).unwrap() += 1;
            }
        }
        // SSA split invariant: every operand register below its dst.
        let mut scratch = Vec::new();
        for instr in program.cell_instrs() {
            if let Some(d) = dst_reg(instr) {
                operand_regs(instr, &mut scratch);
                if scratch.iter().any(|&r| r >= d) {
                    return Err(JitSkip::RegisterOrder);
                }
            }
        }

        let unroll4 = plan.unroll >= 4;
        let scan = ChainScan::new(program);
        let items = scan.items();
        let mut steps: Vec<Box<dyn RowOp>> = Vec::with_capacity(items.len());
        let mut chained_taps = 0usize;
        for item in &items {
            match item {
                StitchItem::Plain(i) => steps.push(box_instr(&program.cell_instrs()[*i])),
                StitchItem::Chain(spec) => {
                    chained_taps += spec.taps.len();
                    steps.push(box_chain(spec, unroll4));
                }
            }
        }
        let layout: Vec<u64> = steps
            .iter()
            .map(|s| {
                let mut h = Fnv::new();
                h.write(format!("{s:?}").as_bytes());
                h.finish()
            })
            .collect();
        let checksum = AtomicU64::new(fnv_words(&layout));
        let prelude_dsts = prelude.iter().filter_map(dst_reg).collect();
        Ok(Self {
            steps,
            layout,
            checksum,
            prelude: prelude.to_vec(),
            prelude_dsts,
            num_regs: program.num_regs,
            key: content_key(program, plan, version),
            version,
            chained_taps,
        })
    }

    /// The content hash this object was compiled under.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The jit version baked into the key.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Stitched fragment count (after chain folding).
    pub fn steps_len(&self) -> usize {
        self.steps.len()
    }

    /// Taps folded into linear-combination chains.
    pub fn chained_taps(&self) -> usize {
        self.chained_taps
    }

    /// Register-file height (rows of width `w` the scratch must hold).
    pub fn num_regs(&self) -> u16 {
        self.num_regs
    }

    /// Conservative in-memory footprint for the cache byte budget.
    pub fn approx_bytes(&self) -> u64 {
        256 + self.steps.len() as u64 * 96
            + self.layout.len() as u64 * 8
            + self.prelude.len() as u64 * 32
    }

    /// True when the stitched layout still matches its checksum.
    pub fn verify_integrity(&self) -> bool {
        fnv_words(&self.layout) == self.checksum.load(Ordering::Relaxed)
    }

    /// Test hook: flip the checksum so the next cache fetch sees a
    /// corrupt artifact.
    pub fn corrupt_for_test(&self) {
        self.checksum.fetch_xor(0xdead_beef, Ordering::Relaxed);
    }

    /// Evaluate the loop-invariant prelude registers for this invocation.
    pub fn prelude_values(&self, scalars: &[f64]) -> Vec<f64> {
        let mut pre = vec![0.0f64; self.num_regs as usize];
        for instr in &self.prelude {
            exec_scalar_instr(instr, &mut pre, &[], scalars);
        }
        pre
    }

    /// Broadcast the prelude values into their register rows (once per
    /// `run_range` call; the generic fragments read rows uniformly).
    pub fn fill_prelude_rows(&self, regs: &mut [f64], w: usize, pre: &[f64]) {
        for &d in &self.prelude_dsts {
            regs[d as usize * w..d as usize * w + w].fill(pre[d as usize]);
        }
    }

    /// Execute one unit-stride row of width `w`. `regs` must hold
    /// `num_regs * w` doubles with prelude rows already filled; addressing
    /// conventions match [`BodyProgram::run_strip`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_row(
        &self,
        regs: &mut [f64],
        w: usize,
        inputs: &[&[f64]],
        outputs: &mut [&mut [f64]],
        out_view_map: &[Option<u16>],
        cursors: &[i64],
        coord0: i64,
        coords: &[i64],
        scalars: &[f64],
        pre: &[f64],
    ) {
        if w == 0 {
            return;
        }
        let mut ctx = RowCtx {
            regs,
            w,
            inputs,
            outputs,
            out_view_map,
            cursors,
            coord0,
            coords,
            scalars,
            pre,
        };
        for step in &self.steps {
            step.run(&mut ctx);
        }
    }
}

/// Monomorphize one plain instruction into its fragment.
fn box_instr(instr: &Instr) -> Box<dyn RowOp> {
    fn pd<K>() -> std::marker::PhantomData<K> {
        std::marker::PhantomData
    }
    fn bl<K: BinK>(dst: u16, a: u16, view: u16, off: i64, load_left: bool) -> Box<dyn RowOp> {
        if load_left {
            Box::new(BinLoadRow::<K, true> {
                dst,
                a,
                view,
                off,
                _k: pd(),
            })
        } else {
            Box::new(BinLoadRow::<K, false> {
                dst,
                a,
                view,
                off,
                _k: pd(),
            })
        }
    }
    match *instr {
        Instr::Const { dst, val } => Box::new(FillConst { dst, val }),
        Instr::Arg { dst, arg } => Box::new(FillArg { dst, arg }),
        Instr::Coord { dst, dim } => Box::new(CoordRow { dst, dim }),
        Instr::Load { dst, view, off } => Box::new(LoadRow { dst, view, off }),
        Instr::Store { view, off, src } => Box::new(StoreRow { view, off, src }),
        Instr::Select { dst, c, a, b } => Box::new(SelectRow { dst, c, a, b }),
        Instr::Bin { dst, kind, a, b } => match kind {
            BinKind::Add => Box::new(BinRow::<ZAdd> {
                dst,
                a,
                b,
                _k: pd(),
            }),
            BinKind::Sub => Box::new(BinRow::<ZSub> {
                dst,
                a,
                b,
                _k: pd(),
            }),
            BinKind::Mul => Box::new(BinRow::<ZMul> {
                dst,
                a,
                b,
                _k: pd(),
            }),
            BinKind::Div => Box::new(BinRow::<ZDiv> {
                dst,
                a,
                b,
                _k: pd(),
            }),
            BinKind::Min => Box::new(BinRow::<ZMin> {
                dst,
                a,
                b,
                _k: pd(),
            }),
            BinKind::Max => Box::new(BinRow::<ZMax> {
                dst,
                a,
                b,
                _k: pd(),
            }),
            BinKind::Pow => Box::new(BinRow::<ZPow> {
                dst,
                a,
                b,
                _k: pd(),
            }),
            BinKind::Atan2 => Box::new(BinRow::<ZAtan2> {
                dst,
                a,
                b,
                _k: pd(),
            }),
            BinKind::CopySign => Box::new(BinRow::<ZCopySign> {
                dst,
                a,
                b,
                _k: pd(),
            }),
            BinKind::Rem => Box::new(BinRow::<ZRem> {
                dst,
                a,
                b,
                _k: pd(),
            }),
        },
        Instr::Un { dst, kind, a } => match kind {
            UnKind::Neg => Box::new(UnRow::<ZNeg> { dst, a, _k: pd() }),
            UnKind::Sqrt => Box::new(UnRow::<ZSqrt> { dst, a, _k: pd() }),
            UnKind::Abs => Box::new(UnRow::<ZAbs> { dst, a, _k: pd() }),
            UnKind::Exp => Box::new(UnRow::<ZExp> { dst, a, _k: pd() }),
            UnKind::Log => Box::new(UnRow::<ZLog> { dst, a, _k: pd() }),
            UnKind::Sin => Box::new(UnRow::<ZSin> { dst, a, _k: pd() }),
            UnKind::Cos => Box::new(UnRow::<ZCos> { dst, a, _k: pd() }),
            UnKind::Tanh => Box::new(UnRow::<ZTanh> { dst, a, _k: pd() }),
            UnKind::Trunc => Box::new(UnRow::<ZTrunc> { dst, a, _k: pd() }),
        },
        Instr::Cmp { dst, kind, a, b } => match kind {
            CmpKind::Eq => Box::new(CmpRow::<ZEq> {
                dst,
                a,
                b,
                _k: pd(),
            }),
            CmpKind::Ne => Box::new(CmpRow::<ZNe> {
                dst,
                a,
                b,
                _k: pd(),
            }),
            CmpKind::Lt => Box::new(CmpRow::<ZLt> {
                dst,
                a,
                b,
                _k: pd(),
            }),
            CmpKind::Le => Box::new(CmpRow::<ZLe> {
                dst,
                a,
                b,
                _k: pd(),
            }),
            CmpKind::Gt => Box::new(CmpRow::<ZGt> {
                dst,
                a,
                b,
                _k: pd(),
            }),
            CmpKind::Ge => Box::new(CmpRow::<ZGe> {
                dst,
                a,
                b,
                _k: pd(),
            }),
        },
        Instr::MulAdd { dst, a, b, c, kind } => match kind {
            MaKind::CPlusMul => Box::new(MaRow::<ZCPlusMul> {
                dst,
                a,
                b,
                c,
                _k: pd(),
            }),
            MaKind::CMinusMul => Box::new(MaRow::<ZCMinusMul> {
                dst,
                a,
                b,
                c,
                _k: pd(),
            }),
            MaKind::MulMinusC => Box::new(MaRow::<ZMulMinusC> {
                dst,
                a,
                b,
                c,
                _k: pd(),
            }),
        },
        Instr::BinLoad {
            dst,
            kind,
            a,
            view,
            off,
            load_left,
        } => match kind {
            BinKind::Add => bl::<ZAdd>(dst, a, view, off, load_left),
            BinKind::Sub => bl::<ZSub>(dst, a, view, off, load_left),
            BinKind::Mul => bl::<ZMul>(dst, a, view, off, load_left),
            BinKind::Div => bl::<ZDiv>(dst, a, view, off, load_left),
            BinKind::Min => bl::<ZMin>(dst, a, view, off, load_left),
            BinKind::Max => bl::<ZMax>(dst, a, view, off, load_left),
            BinKind::Pow => bl::<ZPow>(dst, a, view, off, load_left),
            BinKind::Atan2 => bl::<ZAtan2>(dst, a, view, off, load_left),
            BinKind::CopySign => bl::<ZCopySign>(dst, a, view, off, load_left),
            BinKind::Rem => bl::<ZRem>(dst, a, view, off, load_left),
        },
    }
}

// ---------------------------------------------------------------------------
// Codegen wall-time histogram
// ---------------------------------------------------------------------------

const HIST_BUCKETS: usize = 32;

/// Log₂-µs histogram of codegen wall time (lock-free record path).
#[derive(Debug, Default)]
pub struct CodegenHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl CodegenHistogram {
    fn record(&self, d: Duration) {
        let us = (d.as_micros() as u64).max(1);
        let idx = (63 - us.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Mean codegen time in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        let n = self.count.load(Ordering::Relaxed);
        if n == 0 {
            return 0.0;
        }
        self.total_us.load(Ordering::Relaxed) as f64 / n as f64 / 1000.0
    }

    /// Upper bucket bound of quantile `q` (0..=1) in milliseconds.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let n = self.count.load(Ordering::Relaxed);
        if n == 0 {
            return 0.0;
        }
        let target = ((n as f64 * q).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return (1u64 << (idx + 1)) as f64 / 1000.0;
            }
        }
        (1u64 << HIST_BUCKETS) as f64 / 1000.0
    }
}

// ---------------------------------------------------------------------------
// Content-addressed artifact cache with singleflight
// ---------------------------------------------------------------------------

/// Outcome of [`JitCache::acquire`].
pub struct JitAcquire {
    /// The stitched program, or why stitching was skipped.
    pub outcome: Result<Arc<JitProgram>, JitSkip>,
    /// Artifact provenance (meaningful when `outcome` is `Ok`).
    pub source: JitArtifact,
    /// Coded warnings raised on the way (e.g. integrity eviction).
    pub warnings: Vec<Diagnostic>,
}

/// Monotonic counter snapshot of a [`JitCache`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JitCacheStats {
    /// Live entries.
    pub entries: usize,
    /// Live bytes.
    pub bytes: u64,
    /// Entry capacity.
    pub entry_capacity: usize,
    /// Byte budget.
    pub byte_capacity: u64,
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that had to stitch (or wait on a stitch).
    pub misses: u64,
    /// Codegen runs that produced an object.
    pub builds: u64,
    /// Lookups that waited on another in-flight codegen (singleflight).
    pub deduped: u64,
    /// Entries evicted under the budget.
    pub evictions: u64,
    /// Bytes reclaimed by eviction.
    pub evicted_bytes: u64,
    /// Objects too large to admit at all.
    pub oversize_rejects: u64,
    /// Entries evicted because their checksum no longer matched.
    pub integrity_invalidations: u64,
    /// Acquires that ended in a [`JitSkip`].
    pub skips: u64,
    /// Codegen wall-time distribution (milliseconds).
    pub codegen_count: u64,
    /// See `codegen_count`.
    pub codegen_mean_ms: f64,
    /// See `codegen_count`.
    pub codegen_p50_ms: f64,
    /// See `codegen_count`.
    pub codegen_p99_ms: f64,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<u64, Arc<JitProgram>>,
    order: VecDeque<u64>,
    bytes: u64,
}

struct BuildSlot {
    state: Mutex<Option<Result<Arc<JitProgram>, JitSkip>>>,
    ready: Condvar,
}

/// The content-addressed jit artifact cache (see module docs).
pub struct JitCache {
    inner: Mutex<CacheInner>,
    inflight: Mutex<HashMap<u64, Arc<BuildSlot>>>,
    entry_cap: usize,
    byte_cap: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    builds: AtomicU64,
    deduped: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
    oversize_rejects: AtomicU64,
    integrity_invalidations: AtomicU64,
    skips: AtomicU64,
    hist: CodegenHistogram,
}

impl JitCache {
    /// A cache bounded by `entry_cap` entries and `byte_cap` bytes.
    pub fn new(entry_cap: usize, byte_cap: u64) -> Self {
        Self {
            inner: Mutex::new(CacheInner::default()),
            inflight: Mutex::new(HashMap::new()),
            entry_cap: entry_cap.max(1),
            byte_cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            oversize_rejects: AtomicU64::new(0),
            integrity_invalidations: AtomicU64::new(0),
            skips: AtomicU64::new(0),
            hist: CodegenHistogram::default(),
        }
    }

    /// Fetch-or-stitch under the current [`JIT_VERSION`].
    pub fn acquire(&self, program: &BodyProgram, plan: &ExecPlan) -> JitAcquire {
        self.acquire_versioned(program, plan, JIT_VERSION)
    }

    /// Fetch-or-stitch under an explicit version (version-bump tests).
    pub fn acquire_versioned(
        &self,
        program: &BodyProgram,
        plan: &ExecPlan,
        version: u32,
    ) -> JitAcquire {
        let key = content_key(program, plan, version);
        let mut warnings = Vec::new();

        // Fast path: cached and intact.
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(p) = inner.map.get(&key).cloned() {
                if p.verify_integrity() {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return JitAcquire {
                        outcome: Ok(p),
                        source: JitArtifact::Cached,
                        warnings,
                    };
                }
                // Corrupt artifact: evict, warn, rebuild fresh below.
                inner.order.retain(|&k| k != key);
                if let Some(v) = inner.map.remove(&key) {
                    inner.bytes = inner.bytes.saturating_sub(v.approx_bytes());
                }
                self.integrity_invalidations.fetch_add(1, Ordering::Relaxed);
                warnings.push(Diagnostic::warning(
                    codes::JIT_ARTIFACT,
                    format!(
                        "jit artifact {key:#018x} failed its integrity check; \
                         evicted and recompiled fresh"
                    ),
                ));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);

        // Singleflight: exactly one codegen per content hash.
        enum Role {
            Lead(Arc<BuildSlot>),
            Follow(Arc<BuildSlot>),
        }
        let role = {
            let mut inflight = self.inflight.lock().unwrap();
            match inflight.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => Role::Follow(e.get().clone()),
                std::collections::hash_map::Entry::Vacant(v) => {
                    let slot = Arc::new(BuildSlot {
                        state: Mutex::new(None),
                        ready: Condvar::new(),
                    });
                    v.insert(slot.clone());
                    Role::Lead(slot)
                }
            }
        };
        match role {
            Role::Lead(slot) => {
                let outcome = self.stitch(program, plan, version, key);
                *slot.state.lock().unwrap() = Some(outcome.clone());
                slot.ready.notify_all();
                self.inflight.lock().unwrap().remove(&key);
                JitAcquire {
                    outcome,
                    source: JitArtifact::Fresh,
                    warnings,
                }
            }
            Role::Follow(slot) => {
                let mut state = slot.state.lock().unwrap();
                let deadline = Instant::now() + Duration::from_secs(5);
                loop {
                    if let Some(outcome) = state.clone() {
                        self.deduped.fetch_add(1, Ordering::Relaxed);
                        return JitAcquire {
                            outcome,
                            source: JitArtifact::Deduped,
                            warnings,
                        };
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, _) = slot.ready.wait_timeout(state, deadline - now).unwrap();
                    state = guard;
                }
                drop(state);
                // Leader vanished (should not happen — stitching cannot
                // block): build inline rather than fail the compile.
                let outcome = self.stitch(program, plan, version, key);
                JitAcquire {
                    outcome,
                    source: JitArtifact::Fresh,
                    warnings,
                }
            }
        }
    }

    fn stitch(
        &self,
        program: &BodyProgram,
        plan: &ExecPlan,
        version: u32,
        key: u64,
    ) -> Result<Arc<JitProgram>, JitSkip> {
        let t0 = Instant::now();
        let built = JitProgram::build(program, plan, version).map(Arc::new);
        self.hist.record(t0.elapsed());
        match &built {
            Ok(p) => {
                self.builds.fetch_add(1, Ordering::Relaxed);
                self.insert(key, p.clone());
            }
            Err(_) => {
                self.skips.fetch_add(1, Ordering::Relaxed);
            }
        }
        built
    }

    /// Admit under the byte budget: oversize objects are rejected outright
    /// and the just-admitted entry is never its own eviction victim.
    fn insert(&self, key: u64, p: Arc<JitProgram>) {
        let sz = p.approx_bytes();
        if sz > self.byte_cap {
            self.oversize_rejects.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        if inner.map.contains_key(&key) {
            return;
        }
        inner.map.insert(key, p);
        inner.order.push_back(key);
        inner.bytes += sz;
        while inner.map.len() > self.entry_cap || inner.bytes > self.byte_cap {
            let Some(&victim) = inner.order.front() else {
                break;
            };
            if victim == key {
                break;
            }
            inner.order.pop_front();
            if let Some(v) = inner.map.remove(&victim) {
                let vb = v.approx_bytes();
                inner.bytes = inner.bytes.saturating_sub(vb);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.evicted_bytes.fetch_add(vb, Ordering::Relaxed);
            }
        }
    }

    /// Drop every entry; cumulative counters survive (governance rule).
    pub fn purge(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.clear();
        inner.order.clear();
        inner.bytes = 0;
    }

    /// Fetch the cached object for explicit inspection/corruption in
    /// tests; does not count as a hit.
    pub fn peek(
        &self,
        program: &BodyProgram,
        plan: &ExecPlan,
        version: u32,
    ) -> Option<Arc<JitProgram>> {
        let key = content_key(program, plan, version);
        self.inner.lock().unwrap().map.get(&key).cloned()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> JitCacheStats {
        let (entries, bytes) = {
            let inner = self.inner.lock().unwrap();
            (inner.map.len(), inner.bytes)
        };
        JitCacheStats {
            entries,
            bytes,
            entry_capacity: self.entry_cap,
            byte_capacity: self.byte_cap,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            oversize_rejects: self.oversize_rejects.load(Ordering::Relaxed),
            integrity_invalidations: self.integrity_invalidations.load(Ordering::Relaxed),
            skips: self.skips.load(Ordering::Relaxed),
            codegen_count: self.hist.count.load(Ordering::Relaxed),
            codegen_mean_ms: self.hist.mean_ms(),
            codegen_p50_ms: self.hist.quantile_ms(0.5),
            codegen_p99_ms: self.hist.quantile_ms(0.99),
        }
    }
}

/// The process-wide artifact cache shared by every compile (and therefore
/// every `fsc-serve` session in the process).
pub fn shared_cache() -> &'static JitCache {
    static SHARED: OnceLock<JitCache> = OnceLock::new();
    SHARED.get_or_init(|| JitCache::new(DEFAULT_JIT_ENTRIES, DEFAULT_JIT_BYTES))
}

// ---------------------------------------------------------------------------
// Per-thread row scratch
// ---------------------------------------------------------------------------

thread_local! {
    static SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Borrow the thread's row-register scratch (return with [`put_scratch`]).
pub fn take_scratch() -> Vec<f64> {
    SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

/// Return a scratch buffer for reuse by later nests on this thread.
pub fn put_scratch(v: Vec<f64>) {
    SCRATCH.with(|s| {
        let mut slot = s.borrow_mut();
        if v.capacity() > slot.capacity() {
            *slot = v;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanProvenance;
    use std::sync::Barrier;

    /// `out[i] = (0.5*in[i] + in[i+1] + arg0*in[i+2]) / arg0` — collapses
    /// into a single scaled chain with a store sink.
    fn chain_program() -> BodyProgram {
        BodyProgram {
            instrs: vec![
                Instr::Const { dst: 0, val: 0.5 },
                Instr::Arg { dst: 1, arg: 0 },
                Instr::BinLoad {
                    dst: 2,
                    kind: BinKind::Mul,
                    a: 0,
                    view: 0,
                    off: 0,
                    load_left: false,
                },
                Instr::BinLoad {
                    dst: 3,
                    kind: BinKind::Add,
                    a: 2,
                    view: 0,
                    off: 1,
                    load_left: false,
                },
                Instr::Load {
                    dst: 4,
                    view: 0,
                    off: 2,
                },
                Instr::MulAdd {
                    dst: 5,
                    a: 1,
                    b: 4,
                    c: 3,
                    kind: MaKind::CPlusMul,
                },
                Instr::Bin {
                    dst: 6,
                    kind: BinKind::Div,
                    a: 5,
                    b: 1,
                },
                Instr::Store {
                    view: 1,
                    off: 0,
                    src: 6,
                },
            ],
            prelude_len: 2,
            num_regs: 7,
            ..BodyProgram::default()
        }
    }

    /// Exercises Un/Cmp/Select/Coord/Bin fragments (no chains).
    fn mixed_program() -> BodyProgram {
        BodyProgram {
            instrs: vec![
                Instr::Const { dst: 0, val: 2.0 },
                Instr::Load {
                    dst: 1,
                    view: 0,
                    off: 0,
                },
                Instr::Un {
                    dst: 2,
                    kind: UnKind::Abs,
                    a: 1,
                },
                Instr::Un {
                    dst: 3,
                    kind: UnKind::Sqrt,
                    a: 2,
                },
                Instr::Coord { dst: 4, dim: 0 },
                Instr::Cmp {
                    dst: 5,
                    kind: CmpKind::Lt,
                    a: 4,
                    b: 0,
                },
                Instr::Select {
                    dst: 6,
                    c: 5,
                    a: 3,
                    b: 1,
                },
                Instr::Bin {
                    dst: 7,
                    kind: BinKind::Max,
                    a: 6,
                    b: 0,
                },
                Instr::Store {
                    view: 1,
                    off: 0,
                    src: 7,
                },
            ],
            prelude_len: 1,
            num_regs: 8,
            ..BodyProgram::default()
        }
    }

    fn run_both(program: &BodyProgram, plan: &ExecPlan, w: usize) -> (Vec<f64>, Vec<f64>) {
        let data: Vec<f64> = (0..w + 4).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let scalars = [1.75f64];
        let out_view_map = [None, Some(0u16)];
        let cursors = [0i64, 0i64];
        let coords = [0i64, 0i64];

        let jit = JitProgram::build(program, plan, JIT_VERSION).expect("stitchable");
        let mut jit_out = vec![0.0f64; w.max(1)];
        {
            let inputs: [&[f64]; 2] = [&data, &[]];
            let mut out0 = jit_out.as_mut_slice();
            let mut outputs: [&mut [f64]; 1] = [&mut out0];
            let pre = jit.prelude_values(&scalars);
            let mut regs = vec![0.0f64; jit.num_regs() as usize * w.max(1)];
            jit.fill_prelude_rows(&mut regs, w.max(1), &pre);
            jit.run_row(
                &mut regs,
                w,
                &inputs,
                &mut outputs,
                &out_view_map,
                &cursors,
                0,
                &coords,
                &scalars,
                &pre,
            );
            let _ = &mut out0;
        }

        let mut vm_out = vec![0.0f64; w.max(1)];
        if w > 0 {
            let inputs: [&[f64]; 2] = [&data, &[]];
            let mut out0 = vm_out.as_mut_slice();
            let mut outputs: [&mut [f64]; 1] = [&mut out0];
            let mut regs = vec![0.0f64; program.num_regs as usize * w];
            program.run_prelude_strip(&mut regs, w, &scalars);
            program.run_strip(
                &mut regs,
                w,
                &inputs,
                &mut outputs,
                &out_view_map,
                &cursors,
                0,
                &coords,
                &scalars,
            );
        }
        (jit_out, vm_out)
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn chain_collapses_to_one_fragment_and_matches_vm_bitwise() {
        let program = chain_program();
        let jit = JitProgram::build(&program, &ExecPlan::default(), JIT_VERSION).unwrap();
        assert_eq!(
            jit.steps_len(),
            1,
            "seed+taps+scale+store stitched into one chain"
        );
        assert_eq!(jit.chained_taps(), 2);
        for w in [1usize, 3, 8, 17] {
            let (j, v) = run_both(&program, &ExecPlan::default(), w);
            assert_eq!(bits(&j), bits(&v), "w={w}");
        }
    }

    #[test]
    fn unroll4_skeleton_is_bit_identical() {
        let program = chain_program();
        let plan4 = ExecPlan {
            unroll: 4,
            ..ExecPlan::default()
        };
        for w in [1usize, 4, 9, 32] {
            let (j, v) = run_both(&program, &plan4, w);
            assert_eq!(bits(&j), bits(&v), "w={w}");
        }
    }

    #[test]
    fn mixed_fragments_match_vm_bitwise() {
        let program = mixed_program();
        for w in [1usize, 7, 16] {
            let (j, v) = run_both(&program, &ExecPlan::default(), w);
            assert_eq!(bits(&j), bits(&v), "w={w}");
        }
    }

    #[test]
    fn degenerate_width_is_a_noop() {
        let (j, _) = run_both(&chain_program(), &ExecPlan::default(), 0);
        assert_eq!(j, vec![0.0]);
    }

    #[test]
    fn multi_store_view_is_skipped() {
        let mut program = chain_program();
        program.instrs.push(Instr::Store {
            view: 1,
            off: 1,
            src: 6,
        });
        assert_eq!(
            JitProgram::build(&program, &ExecPlan::default(), JIT_VERSION).unwrap_err(),
            JitSkip::MultiStoreView
        );
    }

    #[test]
    fn cache_hits_after_first_stitch() {
        let cache = JitCache::new(8, 1 << 20);
        let program = chain_program();
        let plan = ExecPlan::default();
        let a = cache.acquire(&program, &plan);
        assert_eq!(a.source, JitArtifact::Fresh);
        let b = cache.acquire(&program, &plan);
        assert_eq!(b.source, JitArtifact::Cached);
        assert_eq!(a.outcome.unwrap().key(), b.outcome.unwrap().key());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.builds), (1, 1, 1));
    }

    #[test]
    fn plan_knobs_and_version_address_distinct_artifacts() {
        let cache = JitCache::new(8, 1 << 20);
        let program = chain_program();
        let plan = ExecPlan::default();
        assert_eq!(cache.acquire(&program, &plan).source, JitArtifact::Fresh);
        // Provenance alone does not re-key (same knobs, same object)…
        let retuned = plan.clone().with_provenance(PlanProvenance::Tuned);
        assert_eq!(
            cache.acquire(&program, &retuned).source,
            JitArtifact::Cached
        );
        // …but a knob change or a version bump does.
        let tiled = ExecPlan {
            tiles: vec![0, 8],
            ..ExecPlan::default()
        };
        assert_eq!(cache.acquire(&program, &tiled).source, JitArtifact::Fresh);
        assert_eq!(
            cache
                .acquire_versioned(&program, &plan, JIT_VERSION + 1)
                .source,
            JitArtifact::Fresh
        );
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn corrupt_artifact_is_evicted_with_coded_warning_and_rebuilt() {
        let cache = JitCache::new(8, 1 << 20);
        let program = chain_program();
        let plan = ExecPlan::default();
        cache.acquire(&program, &plan);
        cache
            .peek(&program, &plan, JIT_VERSION)
            .unwrap()
            .corrupt_for_test();
        let again = cache.acquire(&program, &plan);
        assert_eq!(again.source, JitArtifact::Fresh);
        assert!(again.warnings.iter().any(|d| d.code == codes::JIT_ARTIFACT));
        assert_eq!(cache.stats().integrity_invalidations, 1);
        // Never a miscompile: the rebuilt object is intact and bit-exact.
        let rebuilt = again.outcome.unwrap();
        assert!(rebuilt.verify_integrity());
        let (j, v) = run_both(&program, &plan, 8);
        assert_eq!(bits(&j), bits(&v));
    }

    #[test]
    fn byte_budget_evicts_fifo_but_never_the_admitted_entry() {
        let program = chain_program();
        let plan = ExecPlan::default();
        let one = JitProgram::build(&program, &plan, JIT_VERSION)
            .unwrap()
            .approx_bytes();
        // Room for one object only.
        let cache = JitCache::new(16, one + one / 2);
        cache.acquire(&program, &plan);
        let plan_b = ExecPlan {
            tiles: vec![0, 4],
            ..ExecPlan::default()
        };
        cache.acquire(&program, &plan_b);
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.evicted_bytes >= one);
        assert_eq!(s.entries, 1);
        assert!(s.bytes <= s.byte_capacity);
        // The survivor is the newly admitted plan_b object.
        assert!(cache.peek(&program, &plan_b, JIT_VERSION).is_some());
        assert!(cache.peek(&program, &plan, JIT_VERSION).is_none());
    }

    #[test]
    fn oversize_object_is_rejected_not_admitted() {
        let cache = JitCache::new(16, 64);
        let program = chain_program();
        let plan = ExecPlan::default();
        let a = cache.acquire(&program, &plan);
        assert!(a.outcome.is_ok(), "oversize still compiles, just uncached");
        let s = cache.stats();
        assert_eq!(s.oversize_rejects, 1);
        assert_eq!(s.entries, 0);
        assert_eq!(cache.acquire(&program, &plan).source, JitArtifact::Fresh);
    }

    #[test]
    fn concurrent_acquires_run_codegen_exactly_once() {
        let cache = Arc::new(JitCache::new(8, 1 << 20));
        let program = Arc::new(chain_program());
        let plan = ExecPlan::default();
        let n = 8;
        let barrier = Arc::new(Barrier::new(n));
        let mut handles = Vec::new();
        for _ in 0..n {
            let (cache, program, plan, barrier) = (
                cache.clone(),
                program.clone(),
                plan.clone(),
                barrier.clone(),
            );
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let a = cache.acquire(&program, &plan);
                (a.source, a.outcome.unwrap().key())
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let key = results[0].1;
        assert!(results.iter().all(|(_, k)| *k == key));
        assert_eq!(cache.stats().builds, 1, "singleflight: one codegen");
    }

    #[test]
    fn purge_drops_entries_but_keeps_counters() {
        let cache = JitCache::new(8, 1 << 20);
        let program = chain_program();
        let plan = ExecPlan::default();
        cache.acquire(&program, &plan);
        cache.acquire(&program, &plan);
        cache.purge();
        let s = cache.stats();
        assert_eq!((s.entries, s.bytes), (0, 0));
        assert_eq!((s.hits, s.builds), (1, 1));
        assert_eq!(cache.acquire(&program, &plan).source, JitArtifact::Fresh);
    }

    #[test]
    fn codegen_histogram_records() {
        let h = CodegenHistogram::default();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(900));
        assert!(h.mean_ms() > 0.0);
        assert!(h.quantile_ms(0.5) > 0.0);
        assert!(h.quantile_ms(0.99) >= h.quantile_ms(0.5));
    }
}
