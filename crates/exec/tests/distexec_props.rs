//! Property tests for the distributed executor's region arithmetic: the
//! face pack/unpack wire format must round-trip arbitrary bit patterns
//! exactly, and the interior/boundary split must tile the owned box exactly
//! once for any bounds and halo shrink — these two invariants are what the
//! end-to-end bit-identity of distributed runs rests on.

use std::collections::HashMap;

use fsc_exec::distexec::{pack_region, region_cells, split_interior_boundary, unpack_region};
use proptest::prelude::*;

/// Column-major strides for the given extents; returns (strides, total).
fn strides_for(extents: &[i64]) -> (Vec<i64>, usize) {
    let mut strides = vec![0i64; extents.len()];
    let mut acc = 1i64;
    for (d, &e) in extents.iter().enumerate() {
        strides[d] = acc;
        acc *= e;
    }
    (strides, acc as usize)
}

/// Whether linear index `lin` decodes to a coordinate inside `region`.
fn in_region(lin: usize, strides: &[i64], extents: &[i64], region: &[(i64, i64)]) -> bool {
    region.iter().enumerate().all(|(d, &(lb, ub))| {
        let c = (lin as i64 / strides[d]) % extents[d];
        c >= lb && c < ub
    })
}

/// Visit every coordinate tuple of a per-dimension half-open region.
fn for_each_coord(region: &[(i64, i64)], mut f: impl FnMut(&[i64])) {
    if region_cells(region) == 0 {
        return;
    }
    let ndims = region.len();
    let mut idx: Vec<i64> = region.iter().map(|&(lb, _)| lb).collect();
    loop {
        f(&idx);
        let mut d = 0;
        loop {
            if d == ndims {
                return;
            }
            idx[d] += 1;
            if idx[d] < region[d].1 {
                break;
            }
            idx[d] = region[d].0;
            d += 1;
        }
    }
}

proptest! {
    /// Pack → unpack over any region of any 1-D/2-D/3-D box is a bitwise
    /// identity on the region and leaves every other cell untouched — for
    /// arbitrary payload bit patterns (negative zero, subnormals, NaNs).
    #[test]
    fn pack_unpack_round_trips_bitwise(
        dims in prop::collection::vec((1i64..7, 0i64..7, 0i64..7), 1..4),
        seed in any::<u64>(),
    ) {
        let extents: Vec<i64> = dims.iter().map(|&(e, _, _)| e).collect();
        let (strides, total) = strides_for(&extents);
        // A random (possibly empty, possibly full) sub-region per dim —
        // face halo regions of any depth are a special case of this.
        let region: Vec<(i64, i64)> = dims
            .iter()
            .map(|&(e, a, w)| {
                let lb = a.min(e - 1);
                (lb, (lb + w).min(e))
            })
            .collect();
        let mix = |i: usize, s: u64| {
            f64::from_bits(s ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1))
        };
        let data: Vec<f64> = (0..total).map(|i| mix(i, seed)).collect();
        let payload = pack_region(&data, &strides, &region);
        prop_assert_eq!(payload.len(), region_cells(&region));
        let mut dst: Vec<f64> = (0..total).map(|i| mix(i, !seed)).collect();
        let before = dst.clone();
        unpack_region(&mut dst, &strides, &region, &payload);
        for i in 0..total {
            if in_region(i, &strides, &extents, &region) {
                prop_assert_eq!(dst[i].to_bits(), data[i].to_bits(), "cell {} in-region", i);
            } else {
                prop_assert_eq!(dst[i].to_bits(), before[i].to_bits(), "cell {} outside", i);
            }
        }
    }

    /// Interior + boundary shells tile the owned box exactly once, for any
    /// box (including empty) and any halo shrink (including shrinks wider
    /// than the box, which collapse the interior to empty).
    #[test]
    fn interior_plus_shells_tile_exactly_once(
        dims in prop::collection::vec((-3i64..6, 0i64..6, 0i64..4, 0i64..4), 1..4),
    ) {
        let own: Vec<(i64, i64)> = dims.iter().map(|&(lb, len, _, _)| (lb, lb + len)).collect();
        let shrink_lo: Vec<i64> = dims.iter().map(|&(_, _, s, _)| s).collect();
        let shrink_hi: Vec<i64> = dims.iter().map(|&(_, _, _, s)| s).collect();
        let (interior, shells) = split_interior_boundary(&own, &shrink_lo, &shrink_hi);
        let mut count: HashMap<Vec<i64>, usize> = HashMap::new();
        for_each_coord(&interior, |c| *count.entry(c.to_vec()).or_default() += 1);
        for shell in &shells {
            for_each_coord(shell, |c| *count.entry(c.to_vec()).or_default() += 1);
        }
        // Exactly the cells of `own`, each exactly once: no gap a halo'd
        // stencil would skip, no overlap that would double-apply an update.
        let mut cells = 0usize;
        let mut missing = 0usize;
        for_each_coord(&own, |c| {
            cells += 1;
            match count.get(c) {
                Some(&1) => {}
                Some(&k) => panic!("cell {c:?} covered {k} times"),
                None => missing += 1,
            }
        });
        prop_assert_eq!(missing, 0, "cells of the box left uncovered");
        prop_assert_eq!(cells, region_cells(&own));
        let covered: usize = count.values().sum();
        prop_assert_eq!(covered, cells, "coverage escapes the owned box");
    }
}
