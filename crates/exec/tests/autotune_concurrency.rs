//! Regression test: a slow calibration sweep in one session must not
//! serialize a concurrent plan-cache hit in another.
//!
//! The bug: the autotuner's in-process cache used to be one global
//! `Mutex<HashMap<PathBuf, PlanCache>>` acquired at the top of
//! `tune_kernels` and held across the *entire* tuning loop — including
//! every timed calibration sweep. Two sessions sharing a cache path were
//! therefore fully serialized: a session whose kernel was already cached
//! (a lookup that should take microseconds) waited behind another
//! session's multi-hundred-millisecond sweep.
//!
//! The fix routes lookups through `SharedPlanCache` (sharded, RCU-style
//! snapshot reads) and holds no lock at all while sweeping. This test
//! pins the behaviour: it starts a deliberately slow tune (large grid,
//! many reps) on one thread, then measures a cache hit for a *different*
//! kernel on the main thread. Before the fix the hit's latency equalled
//! the remaining sweep time (hundreds of ms); after, it is microseconds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fsc_exec::autotune::{self, TuneConfig};
use fsc_exec::kernel::{compile_kernel, CompiledKernel};
use fsc_exec::plan::PlanProvenance;
use fsc_ir::Pass as _;
use fsc_passes::discover::discover_stencils;
use fsc_passes::extract::extract_stencils;
use fsc_passes::merge::merge_adjacent_applies;
use fsc_passes::stencil_to_scf::{lower_stencils, LoweringTarget};

fn average_source(n: usize) -> String {
    format!(
        "
program average
  integer, parameter :: n = {n}
  integer :: i, j
  real(kind=8) :: data(0:n+1, 0:n+1), res(0:n+1, 0:n+1)
  do i = 1, n
    do j = 1, n
      res(j, i) = 0.25 * (data(j, i-1) + data(j, i+1) + data(j-1, i) + data(j+1, i))
    end do
  end do
end program average
"
    )
}

fn compile(src: &str) -> CompiledKernel {
    let mut m = fsc_fortran::compile_to_fir(src).unwrap();
    discover_stencils(&mut m).unwrap();
    merge_adjacent_applies(&mut m).unwrap();
    let mut st = extract_stencils(&mut m).unwrap();
    lower_stencils(&mut st, LoweringTarget::Cpu).unwrap();
    fsc_passes::canonicalize::Canonicalize.run(&mut st).unwrap();
    compile_kernel(&st, "stencil_region_0").unwrap()
}

#[test]
fn slow_tune_does_not_serialize_a_concurrent_cache_hit() {
    let dir = std::env::temp_dir().join(format!("fsc-autotune-conc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cache_path = dir.join("plans.json");
    autotune::reset_in_process_cache();

    // Warm the shared cache with the small kernel's winner.
    let mut warm = compile(&average_source(16));
    let warm_cfg = TuneConfig {
        cache_path: Some(cache_path.clone()),
        no_persist: false,
        reps: 1,
    };
    let report = autotune::tune_one(&mut warm, 1, None, &warm_cfg);
    assert_eq!(report.fresh_tunes(), 1, "warm-up should calibrate once");

    // A deliberately slow tune: a much larger grid with many repetitions,
    // so its calibration sweep spans hundreds of milliseconds.
    let slow_started = Arc::new(AtomicBool::new(false));
    let slow_done = Arc::new(AtomicBool::new(false));
    let slow_cfg = TuneConfig {
        cache_path: Some(cache_path.clone()),
        no_persist: true,
        reps: 400,
    };
    let (started, done) = (slow_started.clone(), slow_done.clone());
    let slow = std::thread::spawn(move || {
        let mut big = compile(&average_source(128));
        started.store(true, Ordering::SeqCst);
        let report = autotune::tune_one(&mut big, 1, None, &slow_cfg);
        done.store(true, Ordering::SeqCst);
        report
    });

    // Wait until the slow tune is underway, then give it time to be deep
    // inside its calibration sweep.
    while !slow_started.load(Ordering::SeqCst) {
        std::hint::spin_loop();
    }
    std::thread::sleep(Duration::from_millis(25));

    // The cached small kernel must resolve without waiting for the sweep.
    let mut hit = compile(&average_source(16));
    let t0 = Instant::now();
    let report = autotune::tune_one(&mut hit, 1, None, &warm_cfg);
    let latency = t0.elapsed();

    assert_eq!(report.cache_hits(), 1, "expected an in-process cache hit");
    assert_eq!(report.entries[0].plan.provenance, PlanProvenance::Cached);
    assert!(
        latency < Duration::from_millis(150),
        "cache hit took {latency:?} — it serialized behind the concurrent \
         calibration sweep (slow tune done: {})",
        slow_done.load(Ordering::SeqCst)
    );

    let slow_report = slow.join().unwrap();
    assert_eq!(slow_report.fresh_tunes(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
