//! IR traversal helpers.
//!
//! The paper's Listing 3 is phrased as "walk the module, gather loops, walk
//! backwards from stores" — these helpers provide exactly those sweeps.

use crate::module::{Module, OpId, RegionId};

/// Pre-order walk over every live op nested (transitively) inside `region`.
pub fn walk_region_preorder(module: &Module, region: RegionId, f: &mut impl FnMut(OpId)) {
    for block in module.region_blocks(region) {
        for op in module.block_ops(block) {
            f(op);
            for nested in module.op(op).regions.clone() {
                walk_region_preorder(module, nested, f);
            }
        }
    }
}

/// Post-order walk (children before parents) over `region`.
pub fn walk_region_postorder(module: &Module, region: RegionId, f: &mut impl FnMut(OpId)) {
    for block in module.region_blocks(region) {
        for op in module.block_ops(block) {
            for nested in module.op(op).regions.clone() {
                walk_region_postorder(module, nested, f);
            }
            f(op);
        }
    }
}

/// Pre-order walk over the whole module.
pub fn walk_module(module: &Module, f: &mut impl FnMut(OpId)) {
    walk_region_preorder(module, module.body, f);
}

/// Collect all live ops in the module whose name equals `name`, pre-order.
pub fn collect_ops_named(module: &Module, name: &str) -> Vec<OpId> {
    let mut out = Vec::new();
    walk_module(module, &mut |op| {
        if module.op(op).name.full() == name {
            out.push(op);
        }
    });
    out
}

/// Collect all live ops inside `op`'s regions (not including `op` itself).
pub fn collect_nested_ops(module: &Module, op: OpId) -> Vec<OpId> {
    let mut out = Vec::new();
    for region in module.op(op).regions.clone() {
        walk_region_preorder(module, region, &mut |o| out.push(o));
    }
    out
}

/// Collect ops in the module matching a predicate, pre-order.
pub fn collect_ops_where(module: &Module, pred: impl Fn(&Module, OpId) -> bool) -> Vec<OpId> {
    let mut out = Vec::new();
    walk_module(module, &mut |op| {
        if pred(module, op) {
            out.push(op);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    /// Build a module shaped like: func { loop { inner } ; tail }.
    fn nested_module() -> (Module, OpId, OpId, OpId, OpId) {
        let mut m = Module::new();
        let top = m.top_block();
        let f = m.create_op("func.func", vec![], vec![], vec![]);
        m.append_op(top, f);
        let fr = m.add_region(f);
        let fb = m.add_block(fr, &[]);
        let lp = m.create_op("fir.do_loop", vec![], vec![], vec![]);
        m.append_op(fb, lp);
        let lr = m.add_region(lp);
        let lb = m.add_block(lr, &[Type::Index]);
        let inner = m.create_op("t.inner", vec![], vec![], vec![]);
        m.append_op(lb, inner);
        let tail = m.create_op("t.tail", vec![], vec![], vec![]);
        m.append_op(fb, tail);
        (m, f, lp, inner, tail)
    }

    #[test]
    fn preorder_visits_parent_first() {
        let (m, f, lp, inner, tail) = nested_module();
        let mut seen = Vec::new();
        walk_module(&m, &mut |op| seen.push(op));
        assert_eq!(seen, vec![f, lp, inner, tail]);
    }

    #[test]
    fn postorder_visits_children_first() {
        let (m, f, lp, inner, tail) = nested_module();
        let mut seen = Vec::new();
        walk_region_postorder(&m, m.body, &mut |op| seen.push(op));
        assert_eq!(seen, vec![inner, lp, tail, f]);
    }

    #[test]
    fn collect_named_finds_nested() {
        let (m, _, lp, _, _) = nested_module();
        assert_eq!(collect_ops_named(&m, "fir.do_loop"), vec![lp]);
        assert!(collect_ops_named(&m, "no.such").is_empty());
    }

    #[test]
    fn collect_nested_excludes_self() {
        let (m, f, lp, inner, tail) = nested_module();
        assert_eq!(collect_nested_ops(&m, f), vec![lp, inner, tail]);
        assert_eq!(collect_nested_ops(&m, lp), vec![inner]);
    }

    #[test]
    fn erased_ops_are_skipped() {
        let (mut m, f, lp, _, tail) = nested_module();
        m.erase_op(lp);
        let mut seen = Vec::new();
        walk_module(&m, &mut |op| seen.push(op));
        assert_eq!(seen, vec![f, tail]);
    }
}
