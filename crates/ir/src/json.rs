//! A minimal JSON value, parser and renderer shared by the plan cache and
//! the compile-server wire protocol.
//!
//! The workspace is offline (no serde), so the handful of places that need
//! JSON — the persistent plan cache and `fsc-serve`'s line-delimited
//! request/response protocol — share this deliberately small
//! implementation: a recursive-descent parser (depth-capped, tolerant of
//! whitespace and key order) and a stable renderer. Objects are backed by
//! a `BTreeMap`, so rendering is deterministic — important both for the
//! plan cache's greppable file layout and for golden protocol tests.

use std::collections::BTreeMap;

/// A JSON value (just enough for the cache and protocol formats).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        JsonParser::new(text).parse()
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an integer, if it is a number with no fractional part
    /// inside the exactly-representable range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Fetch `key` from an object value (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?.get(key)
    }

    /// Render compactly on one line (objects in sorted key order) — the
    /// form the line-delimited server protocol requires.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&render_number(*n)),
            Json::Str(s) => out.push_str(&escape_string(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape_string(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Render a number the way the cache/protocol formats expect: integers
/// without a decimal point, everything else via the shortest round-trip
/// float formatting. Non-finite values degrade to `null`-safe `0`.
fn render_number(n: f64) -> String {
    if !n.is_finite() {
        return "0".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 9e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Escape a string into a quoted JSON literal.
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A small recursive-descent JSON parser (no external deps; depth-capped).
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value(0)?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing garbage at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > 32 {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected end or byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value(depth + 1)?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            out.insert(key, val);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Convenience builder for object values (keeps protocol code readable).
#[derive(Debug, Default)]
pub struct ObjBuilder {
    map: BTreeMap<String, Json>,
}

impl ObjBuilder {
    /// A fresh, empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set `key` to a value.
    pub fn set(mut self, key: &str, value: Json) -> Self {
        self.map.insert(key.to_string(), value);
        self
    }

    /// Set `key` to a string.
    pub fn str(self, key: &str, value: &str) -> Self {
        self.set(key, Json::Str(value.to_string()))
    }

    /// Set `key` to a number.
    pub fn num(self, key: &str, value: f64) -> Self {
        self.set(key, Json::Num(value))
    }

    /// Set `key` to a bool.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.set(key, Json::Bool(value))
    }

    /// Finish into a [`Json::Obj`].
    pub fn build(self) -> Json {
        Json::Obj(self.map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = Json::parse(r#"{"a": "x\"\\\nAé", "b": [1, -2.5e1]}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("a").unwrap().as_str().unwrap(), "x\"\\\nAé");
        let arr = obj.get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_f64().unwrap(), -25.0);
    }

    #[test]
    fn render_parse_round_trip() {
        let v = ObjBuilder::new()
            .str("op", "compile_run")
            .num("id", 7.0)
            .bool("ok", true)
            .set("xs", Json::Arr(vec![Json::Num(1.5), Json::Null]))
            .build();
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // One line, sorted keys: stable for the line-delimited protocol.
        assert!(!text.contains('\n'));
        assert!(text.find("\"id\"").unwrap() < text.find("\"ok\"").unwrap());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.25).render(), "3.25");
        assert_eq!(Json::Num(f64::NAN).render(), "0");
    }

    #[test]
    fn trailing_garbage_and_depth_are_rejected() {
        assert!(Json::parse("{} x").is_err());
        let deep = "[".repeat(40) + &"]".repeat(40);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn get_traverses_objects_only() {
        let v = Json::parse(r#"{"a": {"b": 2}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().get("b").unwrap().as_i64(), Some(2));
        assert!(v.get("missing").is_none());
        assert!(Json::Num(1.0).get("a").is_none());
    }
}
