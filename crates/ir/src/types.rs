//! The IR type system.
//!
//! Types are value-semantic: two types are "the same type" iff they are
//! structurally equal. This replaces MLIR's context-uniqued types; at the IR
//! sizes this compiler handles (thousands of ops), cloning and comparing
//! small enums is cheaper than maintaining an interner, and it keeps the
//! whole stack free of shared mutable state.
//!
//! The enum covers every type the pipeline of the paper touches: the builtin
//! and standard-dialect types (`index`, integers, floats, `memref`,
//! function types), the FIR types Flang emits (`!fir.ref`, `!fir.array`,
//! `!fir.box`, `!fir.llvm_ptr`, `!fir.char`), and the Open Earth stencil
//! dialect types (`!stencil.field`, `!stencil.temp`) with their per-dimension
//! bounds.

use std::fmt;

/// Bounds of one dimension of a stencil field/temp type, inclusive lower and
/// upper index as in `!stencil.temp<[-1,255]x...>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimBound {
    /// Inclusive lower bound of the dimension.
    pub lower: i64,
    /// Inclusive upper bound of the dimension.
    pub upper: i64,
}

impl DimBound {
    /// Create a bound `[lower, upper]`.
    pub fn new(lower: i64, upper: i64) -> Self {
        Self { lower, upper }
    }

    /// Number of elements covered by this bound.
    pub fn extent(&self) -> i64 {
        self.upper - self.lower + 1
    }
}

/// A type in the IR.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// Signless integer of the given bit width (`i1`, `i32`, `i64`, ...).
    Int(u32),
    /// IEEE float of the given bit width (`f32`, `f64`).
    Float(u32),
    /// Platform-sized index type used for loop induction variables.
    Index,
    /// The unit/none type for ops with no meaningful result.
    None,
    /// Ranked memref: shape (with `DYNAMIC` for unknown dims) over an
    /// element type. Corresponds to the MLIR `memref` dialect type.
    MemRef {
        /// Static extents; [`Type::DYNAMIC`] marks a dynamic dimension.
        shape: Vec<i64>,
        /// Element type.
        elem: Box<Type>,
    },
    /// A function type `(inputs) -> results`.
    Function {
        /// Argument types.
        inputs: Vec<Type>,
        /// Result types.
        results: Vec<Type>,
    },
    /// FIR reference to a value in memory: `!fir.ref<T>`.
    FirRef(Box<Type>),
    /// FIR heap pointer: `!fir.heap<T>` (result of `fir.allocmem`).
    FirHeap(Box<Type>),
    /// FIR in-memory array: `!fir.array<e1 x e2 x ... x T>`.
    FirArray {
        /// Static extents; [`Type::DYNAMIC`] marks a dynamic dimension.
        shape: Vec<i64>,
        /// Element type.
        elem: Box<Type>,
    },
    /// FIR boxed (descriptor-carrying) value: `!fir.box<T>`.
    FirBox(Box<Type>),
    /// FIR's own representation of an LLVM pointer: `!fir.llvm_ptr<T>`.
    ///
    /// As §3 of the paper stresses, FIR is isolated from the LLVM dialect's
    /// pointer type; the paper's data hand-off between the Flang-compiled
    /// module and the stencil module works only because the two pointer types
    /// are semantically identical at link time. We keep them distinct types
    /// to reproduce that friction faithfully.
    FirLlvmPtr(Box<Type>),
    /// LLVM-dialect pointer: `!llvm.ptr<T>` (with `None` modelling opaque
    /// pointers, which the paper's flow deliberately avoids).
    LlvmPtr(Option<Box<Type>>),
    /// Stencil dialect input/output field: `!stencil.field<[l,u]x...xT>`.
    StencilField {
        /// Per-dimension inclusive bounds.
        bounds: Vec<DimBound>,
        /// Element type.
        elem: Box<Type>,
    },
    /// Stencil dialect value semantics temporary: `!stencil.temp<...>`.
    StencilTemp {
        /// Per-dimension inclusive bounds.
        bounds: Vec<DimBound>,
        /// Element type.
        elem: Box<Type>,
    },
    /// GPU-dialect async token used to order device operations.
    GpuAsyncToken,
}

impl Type {
    /// Marker for a dynamic dimension extent in shaped types.
    pub const DYNAMIC: i64 = -1;

    /// The boolean type `i1`.
    pub fn bool() -> Type {
        Type::Int(1)
    }

    /// The 32-bit integer type.
    pub fn i32() -> Type {
        Type::Int(32)
    }

    /// The 64-bit integer type.
    pub fn i64() -> Type {
        Type::Int(64)
    }

    /// The 32-bit float type.
    pub fn f32() -> Type {
        Type::Float(32)
    }

    /// The 64-bit float type.
    pub fn f64() -> Type {
        Type::Float(64)
    }

    /// A ranked memref over `elem` with the given shape.
    pub fn memref(shape: Vec<i64>, elem: Type) -> Type {
        Type::MemRef {
            shape,
            elem: Box::new(elem),
        }
    }

    /// A `!fir.ref<T>` type.
    pub fn fir_ref(elem: Type) -> Type {
        Type::FirRef(Box::new(elem))
    }

    /// A `!fir.heap<T>` type.
    pub fn fir_heap(elem: Type) -> Type {
        Type::FirHeap(Box::new(elem))
    }

    /// A `!fir.array<shape x T>` type.
    pub fn fir_array(shape: Vec<i64>, elem: Type) -> Type {
        Type::FirArray {
            shape,
            elem: Box::new(elem),
        }
    }

    /// A `!stencil.field` with the given bounds.
    pub fn stencil_field(bounds: Vec<DimBound>, elem: Type) -> Type {
        Type::StencilField {
            bounds,
            elem: Box::new(elem),
        }
    }

    /// A `!stencil.temp` with the given bounds.
    pub fn stencil_temp(bounds: Vec<DimBound>, elem: Type) -> Type {
        Type::StencilTemp {
            bounds,
            elem: Box::new(elem),
        }
    }

    /// True for integer, index and float types.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int(_) | Type::Float(_) | Type::Index)
    }

    /// True for any float type.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::Float(_))
    }

    /// True for integer or index types.
    pub fn is_int_or_index(&self) -> bool {
        matches!(self, Type::Int(_) | Type::Index)
    }

    /// The element type of a shaped (memref / fir.array / stencil) type.
    pub fn elem_type(&self) -> Option<&Type> {
        match self {
            Type::MemRef { elem, .. }
            | Type::FirArray { elem, .. }
            | Type::StencilField { elem, .. }
            | Type::StencilTemp { elem, .. } => Some(elem),
            Type::FirRef(t) | Type::FirHeap(t) | Type::FirBox(t) | Type::FirLlvmPtr(t) => Some(t),
            Type::LlvmPtr(Some(t)) => Some(t),
            _ => None,
        }
    }

    /// The rank of a shaped type, if this is one.
    pub fn rank(&self) -> Option<usize> {
        match self {
            Type::MemRef { shape, .. } | Type::FirArray { shape, .. } => Some(shape.len()),
            Type::StencilField { bounds, .. } | Type::StencilTemp { bounds, .. } => {
                Some(bounds.len())
            }
            _ => None,
        }
    }

    /// The stencil bounds of a stencil field/temp type.
    pub fn stencil_bounds(&self) -> Option<&[DimBound]> {
        match self {
            Type::StencilField { bounds, .. } | Type::StencilTemp { bounds, .. } => Some(bounds),
            _ => None,
        }
    }

    /// Byte size of a scalar type; shaped types return the element count
    /// times the element size when fully static.
    pub fn byte_size(&self) -> Option<u64> {
        match self {
            Type::Int(w) | Type::Float(w) => Some((*w as u64).div_ceil(8)),
            Type::Index => Some(8),
            Type::MemRef { shape, elem } | Type::FirArray { shape, elem } => {
                if shape.contains(&Type::DYNAMIC) {
                    return None;
                }
                let count: i64 = shape.iter().product();
                elem.byte_size().map(|e| e * count as u64)
            }
            Type::StencilField { bounds, elem } | Type::StencilTemp { bounds, elem } => {
                let count: i64 = bounds.iter().map(DimBound::extent).product();
                elem.byte_size().map(|e| e * count as u64)
            }
            _ => None,
        }
    }
}

fn fmt_shape(f: &mut fmt::Formatter<'_>, shape: &[i64], elem: &Type) -> fmt::Result {
    for d in shape {
        if *d == Type::DYNAMIC {
            write!(f, "?x")?;
        } else {
            write!(f, "{d}x")?;
        }
    }
    write!(f, "{elem}")
}

fn fmt_bounds(f: &mut fmt::Formatter<'_>, bounds: &[DimBound], elem: &Type) -> fmt::Result {
    for b in bounds {
        write!(f, "[{},{}]x", b.lower, b.upper)?;
    }
    write!(f, "{elem}")
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int(w) => write!(f, "i{w}"),
            Type::Float(w) => write!(f, "f{w}"),
            Type::Index => write!(f, "index"),
            Type::None => write!(f, "none"),
            Type::MemRef { shape, elem } => {
                write!(f, "memref<")?;
                fmt_shape(f, shape, elem)?;
                write!(f, ">")
            }
            Type::Function { inputs, results } => {
                write!(f, "(")?;
                for (i, t) in inputs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ") -> (")?;
                for (i, t) in results.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Type::FirRef(t) => write!(f, "!fir.ref<{t}>"),
            Type::FirHeap(t) => write!(f, "!fir.heap<{t}>"),
            Type::FirArray { shape, elem } => {
                write!(f, "!fir.array<")?;
                fmt_shape(f, shape, elem)?;
                write!(f, ">")
            }
            Type::FirBox(t) => write!(f, "!fir.box<{t}>"),
            Type::FirLlvmPtr(t) => write!(f, "!fir.llvm_ptr<{t}>"),
            Type::LlvmPtr(Some(t)) => write!(f, "!llvm.ptr<{t}>"),
            Type::LlvmPtr(None) => write!(f, "!llvm.ptr"),
            Type::StencilField { bounds, elem } => {
                write!(f, "!stencil.field<")?;
                fmt_bounds(f, bounds, elem)?;
                write!(f, ">")
            }
            Type::StencilTemp { bounds, elem } => {
                write!(f, "!stencil.temp<")?;
                fmt_bounds(f, bounds, elem)?;
                write!(f, ">")
            }
            Type::GpuAsyncToken => write!(f, "!gpu.async.token"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_scalars() {
        assert_eq!(Type::i32().to_string(), "i32");
        assert_eq!(Type::f64().to_string(), "f64");
        assert_eq!(Type::Index.to_string(), "index");
        assert_eq!(Type::bool().to_string(), "i1");
    }

    #[test]
    fn display_memref() {
        let t = Type::memref(vec![256, Type::DYNAMIC], Type::f64());
        assert_eq!(t.to_string(), "memref<256x?xf64>");
    }

    #[test]
    fn display_stencil_temp_matches_paper_listing2() {
        // The type printed at line 2 of the paper's Listing 2.
        let t = Type::stencil_temp(
            vec![DimBound::new(-1, 255), DimBound::new(-1, 255)],
            Type::f64(),
        );
        assert_eq!(t.to_string(), "!stencil.temp<[-1,255]x[-1,255]xf64>");
    }

    #[test]
    fn display_fir_types() {
        let t = Type::fir_ref(Type::fir_array(vec![10, 20], Type::f64()));
        assert_eq!(t.to_string(), "!fir.ref<!fir.array<10x20xf64>>");
        assert_eq!(
            Type::FirLlvmPtr(Box::new(Type::f64())).to_string(),
            "!fir.llvm_ptr<f64>"
        );
    }

    #[test]
    fn dim_bound_extent() {
        assert_eq!(DimBound::new(-1, 255).extent(), 257);
        assert_eq!(DimBound::new(0, 254).extent(), 255);
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Type::f64().byte_size(), Some(8));
        assert_eq!(Type::bool().byte_size(), Some(1));
        assert_eq!(Type::memref(vec![4, 4], Type::f32()).byte_size(), Some(64));
        assert_eq!(
            Type::memref(vec![Type::DYNAMIC], Type::f32()).byte_size(),
            None
        );
    }

    #[test]
    fn elem_and_rank() {
        let t = Type::stencil_field(vec![DimBound::new(0, 9)], Type::f64());
        assert_eq!(t.rank(), Some(1));
        assert_eq!(t.elem_type(), Some(&Type::f64()));
        assert!(t.stencil_bounds().is_some());
        assert_eq!(Type::Index.rank(), None);
    }

    #[test]
    fn function_type_display() {
        let t = Type::Function {
            inputs: vec![Type::i64(), Type::f64()],
            results: vec![Type::f64()],
        };
        assert_eq!(t.to_string(), "(i64, f64) -> (f64)");
    }
}
