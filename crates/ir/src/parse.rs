//! Parser for the generic textual form produced by [`crate::print`].
//!
//! The grammar is MLIR's generic op syntax:
//!
//! ```text
//! module   := "module" "{" op* "}"
//! op       := (%res ("," %res)* "=")? "\"name\"" "(" %operand,* ")"
//!             ("(" region ("," region)* ")")? ("{" attr,* "}")?
//!             ":" "(" type,* ")" "->" "(" type,* ")"
//! region   := "{" block* "}"
//! block    := "^bb" N "(" (%arg ":" type),* ")" ":" op*
//! ```
//!
//! A single char-cursor recursive descent handles ops, attributes and the
//! full type grammar (including nested FIR and stencil types), so IR written
//! in tests round-trips: `parse(print(m))` is structurally equal to `m`.

use std::collections::HashMap;

use crate::attributes::Attribute;
use crate::diag::{codes, Diagnostic};
use crate::module::{BlockId, Module, RegionId, ValueId};
use crate::types::{DimBound, Type};
use crate::{IrError, Result};

/// Hard bound on type/attribute/region nesting. Textual IR this deep is
/// never legitimate; without the bound a fuzzer feeding `!fir.ref<` a few
/// thousand times overflows the stack, which aborts instead of erroring.
const MAX_NESTING_DEPTH: usize = 200;

/// Parse a module from its textual form.
pub fn parse_module(text: &str) -> Result<Module> {
    let mut p = Parser::new(text);
    p.skip_ws();
    p.expect_keyword("module")?;
    p.expect_char(b'{')?;
    let mut module = Module::new();
    let top = module.top_block();
    p.parse_ops_into(&mut module, top)?;
    p.expect_char(b'}')?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing input after module"));
    }
    Ok(module)
}

/// Parse a type from text (exposed for tests and attribute parsing).
pub fn parse_type(text: &str) -> Result<Type> {
    let mut p = Parser::new(text);
    let t = p.parse_type()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing input after type"));
    }
    Ok(t)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    values: HashMap<String, ValueId>,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            src: text.as_bytes(),
            pos: 0,
            values: HashMap::new(),
            depth: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        loop {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
            // Line comments.
            if self.src[self.pos..].starts_with(b"//") {
                while !matches!(self.peek(), None | Some(b'\n')) {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    /// 1-based line/column of the cursor, for locating errors.
    fn line_col(&self) -> (u32, u32) {
        let upto = &self.src[..self.pos.min(self.src.len())];
        let line = upto.iter().filter(|&&c| c == b'\n').count() + 1;
        let col = upto
            .iter()
            .rposition(|&c| c == b'\n')
            .map(|nl| self.pos - nl)
            .unwrap_or(self.pos + 1);
        (line as u32, col as u32)
    }

    fn error(&self, msg: &str) -> IrError {
        self.error_code(codes::IRPARSE_SYNTAX, msg)
    }

    fn error_code(&self, code: &'static str, msg: &str) -> IrError {
        let (line, col) = self.line_col();
        IrError::from_diagnostic(
            Diagnostic::error(code, format!("parse error: {msg}")).at_line_col(line, col),
        )
    }

    /// Guard recursive entry points against pathological nesting; call
    /// [`Self::leave`] on every success path that called this.
    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(self.error_code(
                codes::IRPARSE_TOO_DEEP,
                &format!("nesting exceeds {MAX_NESTING_DEPTH} levels"),
            ));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    fn eat_char(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_char(&mut self, c: u8) -> Result<()> {
        if self.eat_char(c) {
            Ok(())
        } else {
            Err(self.error(&format!(
                "expected '{}', found '{}'",
                c as char,
                self.peek().map(|b| b as char).unwrap_or('∅')
            )))
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect_str(&mut self, s: &str) -> Result<()> {
        if self.eat_str(s) {
            Ok(())
        } else {
            Err(self.error(&format!("expected '{s}'")))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        self.skip_ws();
        let ident = self.parse_bare_ident();
        if ident == kw {
            Ok(())
        } else {
            Err(self.error(&format!("expected keyword '{kw}', found '{ident}'")))
        }
    }

    /// Identifier characters also cover dotted names and `_`.
    fn parse_bare_ident(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'.')
        {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn parse_value_name(&mut self) -> Result<String> {
        self.skip_ws();
        self.expect_char(b'%')?;
        let id = self.parse_bare_ident();
        if id.is_empty() {
            return Err(self.error("empty value name"));
        }
        Ok(format!("%{id}"))
    }

    fn lookup_value(&self, name: &str) -> Result<ValueId> {
        self.values.get(name).copied().ok_or_else(|| {
            self.error_code(
                codes::IRPARSE_UNDEFINED_VALUE,
                &format!("use of undefined value {name}"),
            )
        })
    }

    fn parse_integer(&mut self) -> Result<i64> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let s = String::from_utf8_lossy(&self.src[start..self.pos]);
        s.parse().map_err(|_| self.error("expected integer"))
    }

    fn parse_string_literal(&mut self) -> Result<String> {
        self.skip_ws();
        self.expect_char(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(c) => out.push(c as char),
                    None => return Err(self.error("unterminated escape")),
                },
                Some(c) => out.push(c as char),
            }
        }
    }

    // ------------------------------------------------------------------ types

    fn parse_type(&mut self) -> Result<Type> {
        self.enter()?;
        let result = self.parse_type_inner();
        self.leave();
        result
    }

    fn parse_type_inner(&mut self) -> Result<Type> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => self.parse_function_type(),
            Some(b'!') => self.parse_dialect_type(),
            _ => {
                let save = self.pos;
                let ident = self.parse_bare_ident();
                match ident.as_str() {
                    "index" => Ok(Type::Index),
                    "none" => Ok(Type::None),
                    "memref" => {
                        self.expect_char(b'<')?;
                        let (shape, elem) = self.parse_shape_and_elem()?;
                        self.expect_char(b'>')?;
                        Ok(Type::MemRef {
                            shape,
                            elem: Box::new(elem),
                        })
                    }
                    s if s.starts_with('i')
                        && s[1..].chars().all(|c| c.is_ascii_digit())
                        && s.len() > 1 =>
                    {
                        self.parse_scalar_width(s).map(Type::Int)
                    }
                    s if s.starts_with('f')
                        && s[1..].chars().all(|c| c.is_ascii_digit())
                        && s.len() > 1 =>
                    {
                        self.parse_scalar_width(s).map(Type::Float)
                    }
                    _ => {
                        self.pos = save;
                        Err(self
                            .error_code(codes::IRPARSE_TYPE, &format!("unknown type '{ident}'")))
                    }
                }
            }
        }
    }

    /// Parse the width digits of `iN`/`fN`. These used to `unwrap()`, which
    /// made `i99999999999999999999` a process abort instead of a located
    /// error — the first minimized crasher the differential fuzzer found.
    fn parse_scalar_width(&self, ident: &str) -> Result<u32> {
        let width: u32 = ident[1..].parse().map_err(|_| {
            self.error_code(
                codes::IRPARSE_TYPE,
                &format!("scalar width in '{ident}' does not fit in 32 bits"),
            )
        })?;
        if width == 0 || width > 4096 {
            return Err(self.error_code(
                codes::IRPARSE_TYPE,
                &format!("scalar width {width} out of range (1..=4096)"),
            ));
        }
        Ok(width)
    }

    fn parse_function_type(&mut self) -> Result<Type> {
        self.expect_char(b'(')?;
        let mut inputs = Vec::new();
        if !self.eat_char(b')') {
            loop {
                inputs.push(self.parse_type()?);
                if !self.eat_char(b',') {
                    break;
                }
            }
            self.expect_char(b')')?;
        }
        self.expect_str("->")?;
        let mut results = Vec::new();
        if self.eat_char(b'(') {
            if !self.eat_char(b')') {
                loop {
                    results.push(self.parse_type()?);
                    if !self.eat_char(b',') {
                        break;
                    }
                }
                self.expect_char(b')')?;
            }
        } else {
            results.push(self.parse_type()?);
        }
        Ok(Type::Function { inputs, results })
    }

    fn parse_dialect_type(&mut self) -> Result<Type> {
        self.expect_char(b'!')?;
        let name = self.parse_bare_ident();
        match name.as_str() {
            "fir.ref" => {
                self.expect_char(b'<')?;
                let t = self.parse_type()?;
                self.expect_char(b'>')?;
                Ok(Type::fir_ref(t))
            }
            "fir.heap" => {
                self.expect_char(b'<')?;
                let t = self.parse_type()?;
                self.expect_char(b'>')?;
                Ok(Type::fir_heap(t))
            }
            "fir.box" => {
                self.expect_char(b'<')?;
                let t = self.parse_type()?;
                self.expect_char(b'>')?;
                Ok(Type::FirBox(Box::new(t)))
            }
            "fir.llvm_ptr" => {
                self.expect_char(b'<')?;
                let t = self.parse_type()?;
                self.expect_char(b'>')?;
                Ok(Type::FirLlvmPtr(Box::new(t)))
            }
            "fir.array" => {
                self.expect_char(b'<')?;
                let (shape, elem) = self.parse_shape_and_elem()?;
                self.expect_char(b'>')?;
                Ok(Type::FirArray {
                    shape,
                    elem: Box::new(elem),
                })
            }
            "llvm.ptr" => {
                if self.eat_char(b'<') {
                    let t = self.parse_type()?;
                    self.expect_char(b'>')?;
                    Ok(Type::LlvmPtr(Some(Box::new(t))))
                } else {
                    Ok(Type::LlvmPtr(None))
                }
            }
            "stencil.field" => {
                self.expect_char(b'<')?;
                let (bounds, elem) = self.parse_bounds_and_elem()?;
                self.expect_char(b'>')?;
                Ok(Type::StencilField {
                    bounds,
                    elem: Box::new(elem),
                })
            }
            "stencil.temp" => {
                self.expect_char(b'<')?;
                let (bounds, elem) = self.parse_bounds_and_elem()?;
                self.expect_char(b'>')?;
                Ok(Type::StencilTemp {
                    bounds,
                    elem: Box::new(elem),
                })
            }
            "gpu.async.token" => Ok(Type::GpuAsyncToken),
            _ => Err(self.error_code(
                codes::IRPARSE_TYPE,
                &format!("unknown dialect type '!{name}'"),
            )),
        }
    }

    /// Parse `d1 x d2 x ... x elem` where each `d` is an integer or `?`.
    fn parse_shape_and_elem(&mut self) -> Result<(Vec<i64>, Type)> {
        let mut shape = Vec::new();
        loop {
            self.skip_ws();
            let save = self.pos;
            if self.peek() == Some(b'?') {
                self.pos += 1;
                if self.eat_char(b'x') {
                    shape.push(Type::DYNAMIC);
                    continue;
                }
                self.pos = save;
                break;
            }
            if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                let n = self.parse_integer()?;
                if self.peek() == Some(b'x') {
                    self.pos += 1;
                    shape.push(n);
                    continue;
                }
                self.pos = save;
                break;
            }
            break;
        }
        let elem = self.parse_type()?;
        Ok((shape, elem))
    }

    /// Parse `[l,u]x[l,u]x...xelem` for stencil types.
    fn parse_bounds_and_elem(&mut self) -> Result<(Vec<DimBound>, Type)> {
        let mut bounds = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() != Some(b'[') {
                break;
            }
            self.pos += 1;
            let lower = self.parse_integer()?;
            self.expect_char(b',')?;
            let upper = self.parse_integer()?;
            self.expect_char(b']')?;
            self.expect_char(b'x')?;
            bounds.push(DimBound::new(lower, upper));
        }
        let elem = self.parse_type()?;
        Ok((bounds, elem))
    }

    // ------------------------------------------------------------- attributes

    fn parse_attribute(&mut self) -> Result<Attribute> {
        self.enter()?;
        let result = self.parse_attribute_inner();
        self.leave();
        result
    }

    fn parse_attribute_inner(&mut self) -> Result<Attribute> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Attribute::String(self.parse_string_literal()?)),
            Some(b'@') => {
                self.pos += 1;
                Ok(Attribute::Symbol(self.parse_bare_ident()))
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if !self.eat_char(b']') {
                    loop {
                        items.push(self.parse_attribute()?);
                        if !self.eat_char(b',') {
                            break;
                        }
                    }
                    self.expect_char(b']')?;
                }
                Ok(Attribute::Array(items))
            }
            Some(b'#') => {
                self.expect_str("#index<")
                    .map_err(|_| self.error("expected #index<...> attribute"))?;
                let mut items = Vec::new();
                if !self.eat_char(b'>') {
                    loop {
                        items.push(self.parse_integer()?);
                        if !self.eat_char(b',') {
                            break;
                        }
                    }
                    self.expect_char(b'>')?;
                }
                Ok(Attribute::IndexList(items))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number_attr(),
            _ => {
                let save = self.pos;
                let ident_save = {
                    let id = self.parse_bare_ident();
                    self.pos = save;
                    id
                };
                match ident_save.as_str() {
                    "true" => {
                        self.parse_bare_ident();
                        Ok(Attribute::Bool(true))
                    }
                    "false" => {
                        self.parse_bare_ident();
                        Ok(Attribute::Bool(false))
                    }
                    "unit" => {
                        self.parse_bare_ident();
                        Ok(Attribute::Unit)
                    }
                    _ => Ok(Attribute::Type(self.parse_type()?)),
                }
            }
        }
    }

    fn parse_number_attr(&mut self) -> Result<Attribute> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' => {
                    is_float = true;
                    self.pos += 1;
                }
                b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'+' | b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let ty = if self.eat_char(b':') {
            self.parse_type()?
        } else if is_float {
            Type::f64()
        } else {
            Type::i64()
        };
        if is_float || ty.is_float() {
            let v: f64 = text.parse().map_err(|_| self.error("bad float literal"))?;
            Ok(Attribute::Float(v, ty))
        } else {
            let v: i64 = text.parse().map_err(|_| self.error("bad int literal"))?;
            Ok(Attribute::Int(v, ty))
        }
    }

    // -------------------------------------------------------------------- ops

    /// Parse a sequence of ops into `block`, stopping at `}` or `^`.
    fn parse_ops_into(&mut self, module: &mut Module, block: BlockId) -> Result<()> {
        loop {
            self.skip_ws();
            match self.peek() {
                None | Some(b'}') | Some(b'^') => return Ok(()),
                _ => self.parse_op_into(module, block)?,
            }
        }
    }

    fn parse_op_into(&mut self, module: &mut Module, block: BlockId) -> Result<()> {
        // Optional result list.
        let mut result_names = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'%') {
            loop {
                result_names.push(self.parse_value_name()?);
                if !self.eat_char(b',') {
                    break;
                }
            }
            self.expect_char(b'=')?;
        }
        let name = self.parse_string_literal()?;
        self.expect_char(b'(')?;
        let mut operands = Vec::new();
        if !self.eat_char(b')') {
            loop {
                let vn = self.parse_value_name()?;
                operands.push(self.lookup_value(&vn)?);
                if !self.eat_char(b',') {
                    break;
                }
            }
            self.expect_char(b')')?;
        }

        // Optional regions: '(' '{' ... '}' (',' '{' ... '}')* ')'.
        let mut pending_regions = 0usize;
        let regions_start;
        self.skip_ws();
        if self.peek() == Some(b'(') {
            // Could be regions or nothing else: generic form only allows
            // regions here.
            regions_start = Some(self.pos);
            let _ = regions_start;
            self.pos += 1;
            // We parse the regions after creating the op; remember position.
            // Simpler: parse regions into a detached op later. To avoid
            // two-pass parsing we create the op first with a placeholder and
            // fill regions in now. Count handled below.
            pending_regions = 1; // at least one
                                 // rewind: we handle regions inline below via recursion, so
                                 // step back to re-enter uniformly.
            self.pos -= 1;
        }

        // Create op lazily: we need result types from the trailing signature,
        // but regions appear *before* the signature in the generic syntax.
        // Strategy: skip ahead is complex; instead parse regions into a
        // temporary op, then parse the signature, then fix result types.
        let op = module.create_op(name.as_str(), operands.clone(), vec![], vec![]);

        if pending_regions > 0 {
            self.expect_char(b'(')?;
            loop {
                let region = module.add_region(op);
                self.parse_region_into(module, region)?;
                if !self.eat_char(b',') {
                    break;
                }
            }
            self.expect_char(b')')?;
        }

        // Optional attribute dict.
        self.skip_ws();
        if self.peek() == Some(b'{') {
            self.pos += 1;
            if !self.eat_char(b'}') {
                loop {
                    self.skip_ws();
                    let key = self.parse_bare_ident();
                    if key.is_empty() {
                        return Err(self.error("expected attribute name"));
                    }
                    self.expect_char(b'=')?;
                    let value = self.parse_attribute()?;
                    module.op_mut(op).attrs.insert(key, value);
                    if !self.eat_char(b',') {
                        break;
                    }
                }
                self.expect_char(b'}')?;
            }
        }

        // Trailing signature.
        self.expect_char(b':')?;
        let sig = self.parse_function_type()?;
        let (inputs, results) = match sig {
            Type::Function { inputs, results } => (inputs, results),
            _ => unreachable!("parse_function_type returns Function"),
        };
        if inputs.len() != operands.len() {
            return Err(self.error_code(
                codes::IRPARSE_SIGNATURE,
                &format!(
                    "op '{name}' has {} operands but signature lists {}",
                    operands.len(),
                    inputs.len()
                ),
            ));
        }
        if results.len() != result_names.len() {
            return Err(self.error_code(
                codes::IRPARSE_SIGNATURE,
                &format!(
                    "op '{name}' binds {} results but signature lists {}",
                    result_names.len(),
                    results.len()
                ),
            ));
        }
        // Create result values now that we know the types. `create_op` made
        // none, so we emulate by re-creating: simplest is to push results via
        // a tiny helper on Module. We reuse create_op's mechanism by making a
        // fresh op and swapping? Cheaper: Module::add_op_result.
        for (i, ty) in results.into_iter().enumerate() {
            let v = module_add_result(module, op, ty);
            self.values.insert(result_names[i].clone(), v);
        }
        module.append_op(block, op);
        Ok(())
    }

    fn parse_region_into(&mut self, module: &mut Module, region: RegionId) -> Result<()> {
        self.enter()?;
        let result = self.parse_region_into_inner(module, region);
        self.leave();
        result
    }

    fn parse_region_into_inner(&mut self, module: &mut Module, region: RegionId) -> Result<()> {
        self.expect_char(b'{')?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'^') => {
                    self.pos += 1;
                    let _label = self.parse_bare_ident();
                    self.expect_char(b'(')?;
                    let mut arg_names = Vec::new();
                    let mut arg_types = Vec::new();
                    if !self.eat_char(b')') {
                        loop {
                            let vn = self.parse_value_name()?;
                            self.expect_char(b':')?;
                            let ty = self.parse_type()?;
                            arg_names.push(vn);
                            arg_types.push(ty);
                            if !self.eat_char(b',') {
                                break;
                            }
                        }
                        self.expect_char(b')')?;
                    }
                    self.expect_char(b':')?;
                    let blk = module.add_block(region, &arg_types);
                    for (name, &v) in arg_names.iter().zip(module.block_args(blk)) {
                        self.values.insert(name.clone(), v);
                    }
                    self.parse_ops_into(module, blk)?;
                }
                _ => {
                    // Region with an implicit entry block (no header).
                    let blk = module.add_block(region, &[]);
                    self.parse_ops_into(module, blk)?;
                    self.expect_char(b'}')?;
                    return Ok(());
                }
            }
        }
    }
}

/// Append a result value of the given type to an existing op.
///
/// Lives here (not on `Module`) because only the parser needs to create an
/// op before its result types are known.
fn module_add_result(module: &mut Module, op: crate::module::OpId, ty: Type) -> ValueId {
    module.add_op_result(op, ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::print_module;

    #[test]
    fn parse_simple_constant() {
        let text = r#"module {
  %0 = "arith.constant"() {value = 4 : i64} : () -> (i64)
}"#;
        let m = parse_module(text).unwrap();
        assert_eq!(m.live_op_count(), 1);
        let op = m.block_ops(m.top_block())[0];
        assert_eq!(m.op(op).name.full(), "arith.constant");
        assert_eq!(m.op(op).attr("value").unwrap().as_int(), Some(4));
        assert_eq!(m.value_type(m.result(op)), &Type::i64());
    }

    #[test]
    fn parse_nested_region_with_block_args() {
        let text = r#"module {
  "scf.for"() ({
  ^bb0(%iv: index):
    "t.use"(%iv) : (index) -> ()
  }) : () -> ()
}"#;
        let m = parse_module(text).unwrap();
        let lp = m.block_ops(m.top_block())[0];
        assert_eq!(m.op(lp).regions.len(), 1);
        let region = m.op(lp).regions[0];
        let blk = m.region_blocks(region)[0];
        assert_eq!(m.block_args(blk).len(), 1);
        let inner = m.block_ops(blk)[0];
        assert_eq!(m.op(inner).operands, vec![m.block_args(blk)[0]]);
    }

    #[test]
    fn roundtrip_print_parse_print() {
        let text = r#"module {
  %0 = "arith.constant"() {value = 2.5e-1 : f64} : () -> (f64)
  %1, %2 = "t.pair"(%0) ({
  ^bb0(%a: index, %b: f64):
    "t.inner"(%a, %b) {offset = #index<0, -1>, name = "data"} : (index, f64) -> ()
  }) : (f64) -> (i64, f64)
}"#;
        let m1 = parse_module(text).unwrap();
        let p1 = print_module(&m1);
        let m2 = parse_module(&p1).unwrap();
        let p2 = print_module(&m2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn parse_stencil_types() {
        let t = parse_type("!stencil.temp<[-1,255]x[-1,255]xf64>").unwrap();
        assert_eq!(t.to_string(), "!stencil.temp<[-1,255]x[-1,255]xf64>");
        let t = parse_type("!fir.ref<!fir.array<10x?xf64>>").unwrap();
        assert_eq!(t.to_string(), "!fir.ref<!fir.array<10x?xf64>>");
        let t = parse_type("memref<256x256xf64>").unwrap();
        assert_eq!(t.to_string(), "memref<256x256xf64>");
        let t = parse_type("!llvm.ptr<f64>").unwrap();
        assert_eq!(t.to_string(), "!llvm.ptr<f64>");
        let t = parse_type("!llvm.ptr").unwrap();
        assert_eq!(t.to_string(), "!llvm.ptr");
    }

    #[test]
    fn parse_function_type_forms() {
        let t = parse_type("(i64, f64) -> (f64)").unwrap();
        assert_eq!(t.to_string(), "(i64, f64) -> (f64)");
        let t = parse_type("() -> ()").unwrap();
        assert_eq!(t.to_string(), "() -> ()");
    }

    #[test]
    fn undefined_value_is_an_error() {
        let text = r#"module {
  "t.use"(%nope) : (i64) -> ()
}"#;
        let err = parse_module(text).unwrap_err();
        assert!(err.message.contains("undefined value"), "{err}");
    }

    #[test]
    fn signature_mismatch_is_an_error() {
        let text = r#"module {
  %0 = "t.c"() : () -> ()
}"#;
        let err = parse_module(text).unwrap_err();
        assert!(err.message.contains("results"), "{err}");
    }

    #[test]
    fn parse_attr_kinds() {
        let text = r#"module {
  "t.x"() {s = "str", b = true, u = unit, sym = @foo, arr = [1 : i64, 2 : i64], ty = f64, idx = #index<1, 2, 3>} : () -> ()
}"#;
        let m = parse_module(text).unwrap();
        let op = m.block_ops(m.top_block())[0];
        assert_eq!(m.op(op).attr("s").unwrap().as_str(), Some("str"));
        assert_eq!(m.op(op).attr("b").unwrap().as_bool(), Some(true));
        assert_eq!(m.op(op).attr("u"), Some(&Attribute::Unit));
        assert_eq!(m.op(op).attr("sym").unwrap().as_symbol(), Some("foo"));
        assert_eq!(m.op(op).attr("arr").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(m.op(op).attr("ty").unwrap().as_type(), Some(&Type::f64()));
        assert_eq!(
            m.op(op).attr("idx").unwrap().as_index_list(),
            Some(&[1, 2, 3][..])
        );
    }

    // ----- regression tests from minimized fuzzer crashers -----

    /// Crasher: `i<huge>` overflowed the width `unwrap()` and aborted.
    #[test]
    fn huge_scalar_width_is_a_located_error_not_a_panic() {
        let err = parse_type("i99999999999999999999").unwrap_err();
        let d = err.primary().expect("structured diagnostic");
        assert_eq!(d.code, crate::diag::codes::IRPARSE_TYPE);
        assert!(err.message.contains("32 bits"), "{err}");

        let err = parse_type("f4294967295").unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
        assert!(parse_type("f0").is_err());
        assert!(parse_type("i64").is_ok());
    }

    /// Crasher: unbounded recursion on `!fir.ref<!fir.ref<...` overflowed
    /// the stack. Must be a clean E0305 instead.
    #[test]
    fn pathological_nesting_is_bounded() {
        let deep = "!fir.ref<".repeat(5000) + "f64" + &">".repeat(5000);
        let err = parse_type(&deep).unwrap_err();
        assert_eq!(
            err.primary().map(|d| d.code),
            Some(crate::diag::codes::IRPARSE_TOO_DEEP),
            "{err}"
        );
        // Attribute arrays recurse through parse_attribute.
        let attr_bomb = format!(
            "module {{\n  \"t.x\"() {{a = {}1{}}} : () -> ()\n}}",
            "[".repeat(5000),
            "]".repeat(5000)
        );
        assert!(parse_module(&attr_bomb).is_err());
    }

    /// Truncated and garbage inputs must all produce located errors.
    #[test]
    fn truncated_and_garbage_ir_errors_cleanly() {
        for src in [
            "",
            "module",
            "module {",
            "module {\n  \"t.c\"(",
            "module {\n  \"t.c\"() : () -> (",
            "module {\n  %0 = \"t.c\"() : () -> (i64",
            "module {\n  \"t.c\"() {k = } : () -> ()\n}",
            "module {\n  \"t.c\"() : (zzz) -> ()\n}",
            "module { @@@@ }",
            "module {\n  \"unterminated",
        ] {
            let err = parse_module(src).unwrap_err();
            assert!(
                err.message.contains("parse error") || err.message.contains("expected"),
                "input {src:?} gave unexpected error {err}"
            );
        }
    }

    /// Errors carry a 1-based line *and column* now.
    #[test]
    fn errors_carry_line_and_column() {
        let text = "module {\n  \"t.use\"(%nope) : (i64) -> ()\n}";
        let err = parse_module(text).unwrap_err();
        let d = err.primary().expect("diagnostic");
        assert_eq!(d.code, crate::diag::codes::IRPARSE_UNDEFINED_VALUE);
        let span = d.span.expect("span");
        assert_eq!(span.line, 2);
        assert!(span.col > 1, "column should be past line start: {span}");
        assert!(err.message.contains("line 2:"), "{err}");
    }

    #[test]
    fn comments_are_skipped() {
        let text = r#"module {
  // a comment
  %0 = "t.c"() : () -> (i64) // trailing
}"#;
        let m = parse_module(text).unwrap();
        assert_eq!(m.live_op_count(), 1);
    }
}
