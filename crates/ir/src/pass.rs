//! Pass infrastructure: the [`Pass`] trait, a [`PassManager`] with optional
//! verification between passes, and a [`PassRegistry`] that resolves textual
//! pipelines such as the paper's Listing 4
//! (`"scf-parallel-loop-tiling{...},canonicalize,..."`).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crate::module::Module;
use crate::verifier::verify_module;
use crate::{IrError, Result};

/// Errors produced while running passes (alias of the crate error type).
pub type PassError = IrError;

/// Whether a pass changed the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassResult {
    /// The IR was modified.
    Changed,
    /// No modification was made.
    Unchanged,
}

/// A module-level transformation.
pub trait Pass {
    /// Stable pass name (used in pipelines and reports).
    fn name(&self) -> &str;

    /// Run over the module.
    fn run(&self, module: &mut Module) -> Result<PassResult>;
}

/// Options parsed from a pipeline entry like
/// `scf-parallel-loop-tiling{parallel-loop-tile-sizes=32,32,1}`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassOptions {
    entries: BTreeMap<String, String>,
}

impl PassOptions {
    /// Look up a raw option string.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(|s| s.as_str())
    }

    /// Parse an option as a comma/colon separated list of integers.
    pub fn get_int_list(&self, key: &str) -> Option<Vec<i64>> {
        self.get(key).map(|s| {
            s.split([',', ':'])
                .filter(|p| !p.is_empty())
                .filter_map(|p| p.trim().parse().ok())
                .collect()
        })
    }

    /// Parse a boolean option (`true`/`false`/`1`/`0`).
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key)? {
            "true" | "1" => Some(true),
            "false" | "0" => Some(false),
            _ => None,
        }
    }

    /// Insert an option (used by tests and builders).
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.entries.insert(key.into(), value.into());
    }
}

/// Factory producing a pass from parsed options.
pub type PassFactory = fn(&PassOptions) -> Box<dyn Pass>;

/// Registry resolving pass names to factories.
#[derive(Default)]
pub struct PassRegistry {
    factories: BTreeMap<String, PassFactory>,
}

impl PassRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a pass factory under `name`.
    pub fn register(&mut self, name: &str, factory: PassFactory) {
        self.factories.insert(name.to_string(), factory);
    }

    /// Registered pass names.
    pub fn names(&self) -> Vec<&str> {
        self.factories.keys().map(|s| s.as_str()).collect()
    }

    /// Build a pass manager from a textual pipeline:
    /// `name1,name2{opt=a,b opt2=c},name3`.
    ///
    /// Commas *inside* braces belong to option values, and mlir-opt's
    /// anchored nesting — `func.func(p1,p2)`, `gpu.module(...)`,
    /// `builtin.module(...)` — is flattened (our passes walk the whole
    /// module themselves), matching the paper's Listing 4 syntax.
    pub fn parse_pipeline(&self, pipeline: &str) -> Result<PassManager> {
        let mut pm = PassManager::new();
        self.parse_into(pipeline, &mut pm)?;
        Ok(pm)
    }

    fn parse_into(&self, pipeline: &str, pm: &mut PassManager) -> Result<()> {
        for entry in split_top_level(pipeline) {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            // Anchored nesting: `anchor(inner-pipeline)`.
            if let Some(paren) = entry.find('(') {
                let anchor = &entry[..paren];
                if matches!(anchor, "func.func" | "gpu.module" | "builtin.module")
                    && entry.ends_with(')')
                {
                    self.parse_into(&entry[paren + 1..entry.len() - 1], pm)?;
                    continue;
                }
            }
            let (name, opts) = parse_entry(entry)?;
            let factory = self
                .factories
                .get(&name)
                .ok_or_else(|| IrError::new(format!("unknown pass '{name}' in pipeline")))?;
            pm.add_boxed(factory(&opts));
        }
        Ok(())
    }
}

/// Split a pipeline string on commas that are not inside `{...}` or `(...)`.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '{' | '(' => {
                depth += 1;
                cur.push(c);
            }
            '}' | ')' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

/// Parse `name{key=value key2=v1,v2}` into name + options. Options are
/// space-separated; values may contain commas.
fn parse_entry(entry: &str) -> Result<(String, PassOptions)> {
    let mut opts = PassOptions::default();
    if let Some(brace) = entry.find('{') {
        if !entry.ends_with('}') {
            return Err(IrError::new(format!("malformed pipeline entry '{entry}'")));
        }
        let name = entry[..brace].trim().to_string();
        let body = &entry[brace + 1..entry.len() - 1];
        for kv in body.split_whitespace() {
            match kv.split_once('=') {
                Some((k, v)) => opts.set(k.trim(), v.trim()),
                None => opts.set(kv.trim(), "true"),
            }
        }
        Ok((name, opts))
    } else {
        Ok((entry.trim().to_string(), opts))
    }
}

/// Timing and change information for one executed pass.
#[derive(Debug, Clone)]
pub struct PassStat {
    /// Pass name.
    pub name: String,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Whether the pass reported a change.
    pub changed: bool,
}

/// An ordered pipeline of passes.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify_each: bool,
}

impl PassManager {
    /// Empty pass manager.
    pub fn new() -> Self {
        Self {
            passes: Vec::new(),
            verify_each: false,
        }
    }

    /// Run the structural verifier after every pass (catches pass bugs at
    /// the pass that introduced them).
    pub fn enable_verifier(&mut self) -> &mut Self {
        self.verify_each = true;
        self
    }

    /// Append a pass.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Append an already-boxed pass.
    pub fn add_boxed(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Names of the scheduled passes, in order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Decompose into the owned pass list, so a wrapper (e.g. the hardened
    /// pipeline in `fsc-passes`) can drive registry-built passes with its
    /// own snapshot/verify/rollback protocol.
    pub fn into_passes(self) -> Vec<Box<dyn Pass>> {
        self.passes
    }

    /// Run all passes in order; returns per-pass statistics.
    pub fn run(&self, module: &mut Module) -> Result<Vec<PassStat>> {
        let mut stats = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            let start = Instant::now();
            let result = pass.run(module).map_err(|e| {
                IrError::new(format!("pass '{}' failed: {}", pass.name(), e.message))
            })?;
            if self.verify_each {
                verify_module(module).map_err(|e| {
                    IrError::new(format!(
                        "verifier failed after pass '{}': {}",
                        pass.name(),
                        e.message
                    ))
                })?;
            }
            stats.push(PassStat {
                name: pass.name().to_string(),
                duration: start.elapsed(),
                changed: result == PassResult::Changed,
            });
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Attribute;

    struct AddMarker;
    impl Pass for AddMarker {
        fn name(&self) -> &str {
            "add-marker"
        }
        fn run(&self, module: &mut Module) -> Result<PassResult> {
            let top = module.top_block();
            let op = module.create_op("test.marker", vec![], vec![], vec![]);
            module.append_op(top, op);
            Ok(PassResult::Changed)
        }
    }

    struct Nop;
    impl Pass for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn run(&self, _m: &mut Module) -> Result<PassResult> {
            Ok(PassResult::Unchanged)
        }
    }

    #[test]
    fn manager_runs_in_order_and_reports() {
        let mut pm = PassManager::new();
        pm.add(AddMarker).add(Nop);
        let mut m = Module::new();
        let stats = pm.run(&mut m).unwrap();
        assert_eq!(stats.len(), 2);
        assert!(stats[0].changed);
        assert!(!stats[1].changed);
        assert_eq!(m.live_op_count(), 1);
    }

    #[test]
    fn registry_resolves_pipeline_with_options() {
        fn make_nop(_o: &PassOptions) -> Box<dyn Pass> {
            Box::new(Nop)
        }
        fn make_marker(_o: &PassOptions) -> Box<dyn Pass> {
            Box::new(AddMarker)
        }
        let mut reg = PassRegistry::new();
        reg.register("nop", make_nop);
        reg.register("add-marker", make_marker);
        let pm = reg.parse_pipeline("nop,add-marker{x=1},nop").unwrap();
        assert_eq!(pm.pass_names(), vec!["nop", "add-marker", "nop"]);
        assert!(reg.parse_pipeline("does-not-exist").is_err());
    }

    #[test]
    fn pipeline_options_with_commas_parse_like_listing4() {
        // From the paper: scf-parallel-loop-tiling{parallel-loop-tile-sizes=32,32,1}
        let (name, opts) =
            parse_entry("scf-parallel-loop-tiling{parallel-loop-tile-sizes=32,32,1}").unwrap();
        assert_eq!(name, "scf-parallel-loop-tiling");
        assert_eq!(
            opts.get_int_list("parallel-loop-tile-sizes"),
            Some(vec![32, 32, 1])
        );
        // And the split function must not break inside braces.
        let parts = split_top_level("a,b{x=1,2},c");
        assert_eq!(parts, vec!["a", "b{x=1,2}", "c"]);
    }

    #[test]
    fn bool_and_flag_options() {
        let (_, opts) =
            parse_entry("finalize-memref-to-llvm{index-bitwidth=64 use-opaque-pointers=false}")
                .unwrap();
        assert_eq!(opts.get("index-bitwidth"), Some("64"));
        assert_eq!(opts.get_bool("use-opaque-pointers"), Some(false));
        let (_, opts) = parse_entry("p{flag}").unwrap();
        assert_eq!(opts.get_bool("flag"), Some(true));
    }

    #[test]
    fn verifier_between_passes_catches_breakage() {
        struct Breaker;
        impl Pass for Breaker {
            fn name(&self) -> &str {
                "breaker"
            }
            fn run(&self, module: &mut Module) -> Result<PassResult> {
                // Create a user of a value defined by a detached op: invalid.
                let top = module.top_block();
                let c = module.create_op(
                    "t.c",
                    vec![],
                    vec![crate::Type::i64()],
                    vec![("value", Attribute::int(0))],
                );
                let v = module.result(c);
                let u = module.create_op("t.use", vec![v], vec![], vec![]);
                module.append_op(top, u);
                Ok(PassResult::Changed)
            }
        }
        let mut pm = PassManager::new();
        pm.enable_verifier();
        pm.add(Breaker);
        let mut m = Module::new();
        let err = pm.run(&mut m).unwrap_err();
        assert!(err.message.contains("verifier failed after pass"), "{err}");
    }
}
