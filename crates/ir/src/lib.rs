//! # fsc-ir — an arena-based SSA IR framework
//!
//! This crate is a from-scratch, pure-Rust substitute for the slice of
//! MLIR/xDSL infrastructure that the SC23 paper *"Fortran performance
//! optimisation and auto-parallelisation by leveraging MLIR-based domain
//! specific abstractions in Flang"* depends on.
//!
//! The design mirrors MLIR's recursive structure:
//!
//! * a [`Module`] owns arenas of operations, blocks, regions and values;
//! * an [`OpId`] refers to an operation with a dialect-qualified name
//!   (e.g. `fir.store`, `stencil.apply`), operands, results, attributes and
//!   nested regions;
//! * a [`RegionId`] holds an ordered list of [`BlockId`]s, each with block
//!   arguments and an ordered list of operations;
//! * [`Type`]s and [`Attribute`]s are plain value-semantic enums (we trade
//!   MLIR's uniqued contexts for simplicity — our IRs are small enough that
//!   structural equality is cheap).
//!
//! On top of this sit a [`builder::OpBuilder`] for construction, a generic
//! textual [`print`](crate::print)er and [`parse`](crate::parse)r that round-trip, a structural
//! [`verifier`], a [`pass::PassManager`], and rewrite helpers used by the
//! stencil discovery and lowering passes.
//!
//! Unlike MLIR there is no dynamic dialect loading: the dialect *semantics*
//! (op builders, verifiers, canonicalisation patterns) live in the
//! `fsc-dialects` and `fsc-passes` crates, while this crate stays agnostic
//! and treats every op generically — exactly the property that lets the
//! paper's passes mix `fir`, `stencil` and standard dialects in one module.

pub mod attributes;
pub mod builder;
pub mod diag;
pub mod json;
pub mod module;
pub mod parse;
pub mod pass;
pub mod print;
pub mod rewrite;
pub mod types;
pub mod verifier;
pub mod walk;

pub use attributes::Attribute;
pub use builder::OpBuilder;
pub use diag::{Diagnostic, Severity, Span};
pub use module::{BlockId, Module, OpId, OpName, RegionId, ValueDef, ValueId};
pub use pass::{Pass, PassError, PassManager, PassResult};
pub use types::Type;

/// A located error produced anywhere in the compiler stack.
///
/// `message` is the legacy flat rendering; `diagnostics` carries the
/// structured, source-located form (possibly several per error — the
/// frontend recovers at statement boundaries and reports every problem it
/// finds). Code that only has a string keeps working via [`IrError::new`];
/// code that has structure should build with [`IrError::from_diagnostic`]
/// or [`IrError::from_diagnostics`] so downstream layers (pipeline
/// degradation reports, distributed rank errors) can surface codes and
/// spans instead of prose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Structured diagnostics backing this error (may be empty for legacy
    /// string-only errors).
    pub diagnostics: Vec<Diagnostic>,
}

impl IrError {
    /// Create a new error with the given message and no structured
    /// diagnostics.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Create an error backed by one structured diagnostic; the flat
    /// message is the diagnostic's rendering.
    pub fn from_diagnostic(diag: Diagnostic) -> Self {
        Self {
            message: diag.render(),
            diagnostics: vec![diag],
        }
    }

    /// Create an error backed by a batch of diagnostics (e.g. everything
    /// parser recovery collected for one file). Panics never: an empty
    /// batch degrades to a generic message.
    pub fn from_diagnostics(diags: Vec<Diagnostic>) -> Self {
        let message = if diags.is_empty() {
            "unknown error".to_string()
        } else {
            diag::render_all(&diags)
        };
        Self {
            message,
            diagnostics: diags,
        }
    }

    /// The first error-severity diagnostic, if any — the "primary" cause.
    pub fn primary(&self) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
            .or(self.diagnostics.first())
    }
}

impl From<Diagnostic> for IrError {
    fn from(diag: Diagnostic) -> Self {
        Self::from_diagnostic(diag)
    }
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for IrError {}

/// Convenience alias used across the IR crates.
pub type Result<T> = std::result::Result<T, IrError>;
