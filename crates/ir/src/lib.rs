//! # fsc-ir — an arena-based SSA IR framework
//!
//! This crate is a from-scratch, pure-Rust substitute for the slice of
//! MLIR/xDSL infrastructure that the SC23 paper *"Fortran performance
//! optimisation and auto-parallelisation by leveraging MLIR-based domain
//! specific abstractions in Flang"* depends on.
//!
//! The design mirrors MLIR's recursive structure:
//!
//! * a [`Module`] owns arenas of operations, blocks, regions and values;
//! * an [`OpId`] refers to an operation with a dialect-qualified name
//!   (e.g. `fir.store`, `stencil.apply`), operands, results, attributes and
//!   nested regions;
//! * a [`RegionId`] holds an ordered list of [`BlockId`]s, each with block
//!   arguments and an ordered list of operations;
//! * [`Type`]s and [`Attribute`]s are plain value-semantic enums (we trade
//!   MLIR's uniqued contexts for simplicity — our IRs are small enough that
//!   structural equality is cheap).
//!
//! On top of this sit a [`builder::OpBuilder`] for construction, a generic
//! textual [`print`](crate::print)er and [`parse`](crate::parse)r that round-trip, a structural
//! [`verifier`], a [`pass::PassManager`], and rewrite helpers used by the
//! stencil discovery and lowering passes.
//!
//! Unlike MLIR there is no dynamic dialect loading: the dialect *semantics*
//! (op builders, verifiers, canonicalisation patterns) live in the
//! `fsc-dialects` and `fsc-passes` crates, while this crate stays agnostic
//! and treats every op generically — exactly the property that lets the
//! paper's passes mix `fir`, `stencil` and standard dialects in one module.

pub mod attributes;
pub mod builder;
pub mod module;
pub mod parse;
pub mod pass;
pub mod print;
pub mod rewrite;
pub mod types;
pub mod verifier;
pub mod walk;

pub use attributes::Attribute;
pub use builder::OpBuilder;
pub use module::{BlockId, Module, OpId, OpName, RegionId, ValueDef, ValueId};
pub use pass::{Pass, PassError, PassManager, PassResult};
pub use types::Type;

/// A located error produced anywhere in the compiler stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrError {
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl IrError {
    /// Create a new error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for IrError {}

/// Convenience alias used across the IR crates.
pub type Result<T> = std::result::Result<T, IrError>;
