//! The [`Module`] arena: operations, blocks, regions and SSA values.
//!
//! A module owns four flat arenas indexed by copyable ids. Erasure is by
//! tombstoning (`alive = false`); iteration APIs skip dead entities. This
//! keeps ids stable across rewrites, which matters because the paper's
//! stencil-discovery pass gathers ids in one sweep (loops, stores, reads)
//! and mutates the IR afterwards.

use std::collections::BTreeMap;
use std::fmt;

use crate::attributes::Attribute;
use crate::types::Type;

/// Identifier of an operation inside a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u32);

/// Identifier of a basic block inside a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Identifier of a region inside a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

/// Identifier of an SSA value inside a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Fully qualified operation name such as `fir.store` or `stencil.apply`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpName(String);

impl OpName {
    /// Create an op name from its full `dialect.op` spelling.
    pub fn new(full: impl Into<String>) -> Self {
        Self(full.into())
    }

    /// The full `dialect.op` name.
    pub fn full(&self) -> &str {
        &self.0
    }

    /// The dialect prefix (`fir` in `fir.store`). Names without a dot are
    /// treated as belonging to the `builtin` dialect.
    pub fn dialect(&self) -> &str {
        self.0.split_once('.').map_or("builtin", |(d, _)| d)
    }

    /// The op suffix (`store` in `fir.store`).
    pub fn op(&self) -> &str {
        self.0.split_once('.').map_or(self.0.as_str(), |(_, o)| o)
    }
}

impl fmt::Display for OpName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for OpName {
    fn from(s: &str) -> Self {
        OpName::new(s)
    }
}

/// Where an SSA value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDef {
    /// The `index`-th result of operation `op`.
    OpResult {
        /// Producing operation.
        op: OpId,
        /// Result position.
        index: u32,
    },
    /// The `index`-th argument of block `block`.
    BlockArg {
        /// Owning block.
        block: BlockId,
        /// Argument position.
        index: u32,
    },
}

#[derive(Debug, Clone)]
struct ValueData {
    def: ValueDef,
    ty: Type,
}

/// Payload of one operation. Exposed read-only through [`Module::op`].
#[derive(Debug, Clone)]
pub struct OpData {
    /// Dialect-qualified name.
    pub name: OpName,
    /// SSA operands, in order.
    pub operands: Vec<ValueId>,
    /// SSA results, in order.
    pub results: Vec<ValueId>,
    /// Attribute dictionary (sorted for deterministic printing).
    pub attrs: BTreeMap<String, Attribute>,
    /// Nested regions, in order.
    pub regions: Vec<RegionId>,
    /// The block the op currently lives in, if attached.
    pub parent: Option<BlockId>,
    alive: bool,
}

impl OpData {
    /// Fetch an attribute by name.
    pub fn attr(&self, name: &str) -> Option<&Attribute> {
        self.attrs.get(name)
    }

    /// Whether the op is still live (not erased).
    pub fn is_alive(&self) -> bool {
        self.alive
    }
}

#[derive(Debug, Clone)]
struct BlockData {
    args: Vec<ValueId>,
    ops: Vec<OpId>,
    parent: Option<RegionId>,
    alive: bool,
}

#[derive(Debug, Clone)]
struct RegionData {
    blocks: Vec<BlockId>,
    parent: Option<OpId>,
    alive: bool,
}

/// An IR module: the owner of all IR entities plus a distinguished top-level
/// region (with a single entry block) that holds module-scope operations
/// such as `func.func`.
#[derive(Debug, Clone)]
pub struct Module {
    ops: Vec<OpData>,
    blocks: Vec<BlockData>,
    regions: Vec<RegionData>,
    values: Vec<ValueData>,
    /// The module-level region.
    pub body: RegionId,
}

impl Default for Module {
    fn default() -> Self {
        Self::new()
    }
}

impl Module {
    /// Create an empty module with one top-level region containing one block.
    pub fn new() -> Self {
        let mut m = Module {
            ops: Vec::new(),
            blocks: Vec::new(),
            regions: Vec::new(),
            values: Vec::new(),
            body: RegionId(0),
        };
        let region = m.new_region(None);
        m.body = region;
        m.add_block(region, &[]);
        m
    }

    /// The single entry block of the module-level region.
    pub fn top_block(&self) -> BlockId {
        self.regions[self.body.0 as usize].blocks[0]
    }

    // ---------------------------------------------------------------- regions

    fn new_region(&mut self, parent: Option<OpId>) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(RegionData {
            blocks: Vec::new(),
            parent,
            alive: true,
        });
        id
    }

    /// Append a fresh (empty) region to an operation.
    pub fn add_region(&mut self, op: OpId) -> RegionId {
        let region = self.new_region(Some(op));
        self.ops[op.0 as usize].regions.push(region);
        region
    }

    /// Blocks of a region, in order, live only.
    pub fn region_blocks(&self, region: RegionId) -> Vec<BlockId> {
        self.regions[region.0 as usize]
            .blocks
            .iter()
            .copied()
            .filter(|b| self.blocks[b.0 as usize].alive)
            .collect()
    }

    /// The operation owning a region (none for the module body).
    pub fn region_parent(&self, region: RegionId) -> Option<OpId> {
        self.regions[region.0 as usize].parent
    }

    // ----------------------------------------------------------------- blocks

    /// Append a new block with the given argument types to a region.
    pub fn add_block(&mut self, region: RegionId, arg_types: &[Type]) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockData {
            args: Vec::new(),
            ops: Vec::new(),
            parent: Some(region),
            alive: true,
        });
        for (i, ty) in arg_types.iter().enumerate() {
            let v = self.new_value(
                ValueDef::BlockArg {
                    block: id,
                    index: i as u32,
                },
                ty.clone(),
            );
            self.blocks[id.0 as usize].args.push(v);
        }
        self.regions[region.0 as usize].blocks.push(id);
        id
    }

    /// Add one more argument to an existing block, returning its value.
    pub fn add_block_arg(&mut self, block: BlockId, ty: Type) -> ValueId {
        let index = self.blocks[block.0 as usize].args.len() as u32;
        let v = self.new_value(ValueDef::BlockArg { block, index }, ty);
        self.blocks[block.0 as usize].args.push(v);
        v
    }

    /// The argument values of a block.
    pub fn block_args(&self, block: BlockId) -> &[ValueId] {
        &self.blocks[block.0 as usize].args
    }

    /// Live operations of a block, in order.
    pub fn block_ops(&self, block: BlockId) -> Vec<OpId> {
        self.blocks[block.0 as usize]
            .ops
            .iter()
            .copied()
            .filter(|o| self.ops[o.0 as usize].alive)
            .collect()
    }

    /// The region a block belongs to.
    pub fn block_parent(&self, block: BlockId) -> Option<RegionId> {
        self.blocks[block.0 as usize].parent
    }

    /// The last live operation of a block (its terminator if the dialect
    /// requires one).
    pub fn block_terminator(&self, block: BlockId) -> Option<OpId> {
        self.block_ops(block).last().copied()
    }

    // ----------------------------------------------------------------- values

    fn new_value(&mut self, def: ValueDef, ty: Type) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueData { def, ty });
        id
    }

    /// The type of a value.
    pub fn value_type(&self, v: ValueId) -> &Type {
        &self.values[v.0 as usize].ty
    }

    /// Overwrite the type of a value (used by type-conversion passes).
    pub fn set_value_type(&mut self, v: ValueId, ty: Type) {
        self.values[v.0 as usize].ty = ty;
    }

    /// Where the value is defined.
    pub fn value_def(&self, v: ValueId) -> ValueDef {
        self.values[v.0 as usize].def
    }

    /// The op producing this value, if it is an op result.
    pub fn defining_op(&self, v: ValueId) -> Option<OpId> {
        match self.value_def(v) {
            ValueDef::OpResult { op, .. } => Some(op),
            ValueDef::BlockArg { .. } => None,
        }
    }

    // -------------------------------------------------------------------- ops

    /// Create a detached operation. Results are created according to
    /// `result_types`. Attach it with [`Module::append_op`] or
    /// [`Module::insert_op_before`].
    pub fn create_op(
        &mut self,
        name: impl Into<OpName>,
        operands: Vec<ValueId>,
        result_types: Vec<Type>,
        attrs: Vec<(&str, Attribute)>,
    ) -> OpId {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(OpData {
            name: name.into(),
            operands,
            results: Vec::new(),
            attrs: attrs.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
            regions: Vec::new(),
            parent: None,
            alive: true,
        });
        for (i, ty) in result_types.into_iter().enumerate() {
            let v = self.new_value(
                ValueDef::OpResult {
                    op: id,
                    index: i as u32,
                },
                ty,
            );
            self.ops[id.0 as usize].results.push(v);
        }
        id
    }

    /// Append an extra result value of type `ty` to an existing op.
    ///
    /// Used by the textual parser, where result types are only known after
    /// the op's regions have been parsed.
    pub fn add_op_result(&mut self, op: OpId, ty: Type) -> ValueId {
        let index = self.ops[op.0 as usize].results.len() as u32;
        let v = self.new_value(ValueDef::OpResult { op, index }, ty);
        self.ops[op.0 as usize].results.push(v);
        v
    }

    /// Read-only access to an operation.
    pub fn op(&self, op: OpId) -> &OpData {
        &self.ops[op.0 as usize]
    }

    /// Mutable access to an operation's name/operands/attributes.
    pub fn op_mut(&mut self, op: OpId) -> &mut OpData {
        &mut self.ops[op.0 as usize]
    }

    /// Shorthand: the single result of an op (panics if not exactly one).
    pub fn result(&self, op: OpId) -> ValueId {
        let r = &self.ops[op.0 as usize].results;
        assert_eq!(
            r.len(),
            1,
            "op {} has {} results",
            self.op(op).name,
            r.len()
        );
        r[0]
    }

    /// Append an op at the end of a block.
    pub fn append_op(&mut self, block: BlockId, op: OpId) {
        assert!(
            self.ops[op.0 as usize].parent.is_none(),
            "op already attached"
        );
        self.ops[op.0 as usize].parent = Some(block);
        self.blocks[block.0 as usize].ops.push(op);
    }

    /// Insert `new` directly before `anchor` in the anchor's block.
    pub fn insert_op_before(&mut self, anchor: OpId, new: OpId) {
        let block = self.ops[anchor.0 as usize]
            .parent
            .expect("anchor not attached");
        assert!(
            self.ops[new.0 as usize].parent.is_none(),
            "op already attached"
        );
        let ops = &mut self.blocks[block.0 as usize].ops;
        let pos = ops
            .iter()
            .position(|&o| o == anchor)
            .expect("anchor not in block");
        ops.insert(pos, new);
        self.ops[new.0 as usize].parent = Some(block);
    }

    /// Insert `new` directly after `anchor` in the anchor's block.
    pub fn insert_op_after(&mut self, anchor: OpId, new: OpId) {
        let block = self.ops[anchor.0 as usize]
            .parent
            .expect("anchor not attached");
        assert!(
            self.ops[new.0 as usize].parent.is_none(),
            "op already attached"
        );
        let ops = &mut self.blocks[block.0 as usize].ops;
        let pos = ops
            .iter()
            .position(|&o| o == anchor)
            .expect("anchor not in block");
        ops.insert(pos + 1, new);
        self.ops[new.0 as usize].parent = Some(block);
    }

    /// Detach an op from its block without erasing it (it can be re-attached).
    pub fn detach_op(&mut self, op: OpId) {
        if let Some(block) = self.ops[op.0 as usize].parent.take() {
            self.blocks[block.0 as usize].ops.retain(|&o| o != op);
        }
    }

    /// Erase an op and everything nested inside its regions.
    pub fn erase_op(&mut self, op: OpId) {
        self.detach_op(op);
        self.ops[op.0 as usize].alive = false;
        let regions = self.ops[op.0 as usize].regions.clone();
        for region in regions {
            self.erase_region_contents(region);
            self.regions[region.0 as usize].alive = false;
        }
    }

    fn erase_region_contents(&mut self, region: RegionId) {
        let blocks = self.regions[region.0 as usize].blocks.clone();
        for block in blocks {
            let ops = self.blocks[block.0 as usize].ops.clone();
            for op in ops {
                if self.ops[op.0 as usize].alive {
                    self.ops[op.0 as usize].alive = false;
                    let rs = self.ops[op.0 as usize].regions.clone();
                    for r in rs {
                        self.erase_region_contents(r);
                        self.regions[r.0 as usize].alive = false;
                    }
                }
            }
            self.blocks[block.0 as usize].alive = false;
        }
    }

    /// Whether an op is live.
    pub fn is_alive(&self, op: OpId) -> bool {
        self.ops[op.0 as usize].alive
    }

    // -------------------------------------------------------------- use lists

    /// All live ops (anywhere in the module) that use `value` as an operand,
    /// together with the operand positions.
    pub fn uses(&self, value: ValueId) -> Vec<(OpId, usize)> {
        let mut out = Vec::new();
        for (i, op) in self.ops.iter().enumerate() {
            if !op.alive {
                continue;
            }
            for (pos, &operand) in op.operands.iter().enumerate() {
                if operand == value {
                    out.push((OpId(i as u32), pos));
                }
            }
        }
        out
    }

    /// True if the value has no live uses.
    pub fn is_unused(&self, value: ValueId) -> bool {
        self.uses(value).is_empty()
    }

    /// Replace every use of `old` by `new` across the whole module.
    pub fn replace_all_uses(&mut self, old: ValueId, new: ValueId) {
        for op in self.ops.iter_mut().filter(|o| o.alive) {
            for operand in op.operands.iter_mut() {
                if *operand == old {
                    *operand = new;
                }
            }
        }
    }

    /// Iterate over all live ops in creation order (no structural order).
    pub fn all_live_ops(&self) -> impl Iterator<Item = OpId> + '_ {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.alive)
            .map(|(i, _)| OpId(i as u32))
    }

    /// Number of live operations in the module (diagnostic / test helper).
    pub fn live_op_count(&self) -> usize {
        self.ops.iter().filter(|o| o.alive).count()
    }

    /// Find the enclosing op of `op` (the op owning the region that owns the
    /// block `op` lives in).
    pub fn parent_op(&self, op: OpId) -> Option<OpId> {
        let block = self.ops[op.0 as usize].parent?;
        let region = self.blocks[block.0 as usize].parent?;
        self.regions[region.0 as usize].parent
    }

    /// Walk up the parent chain collecting enclosing ops, innermost first.
    pub fn ancestors(&self, op: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        let mut cur = self.parent_op(op);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent_op(p);
        }
        out
    }

    /// Find module-level ops with the given name (e.g. all `func.func`).
    pub fn top_level_ops_named(&self, name: &str) -> Vec<OpId> {
        self.block_ops(self.top_block())
            .into_iter()
            .filter(|&o| self.op(o).name.full() == name)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_name_parts() {
        let n = OpName::new("fir.store");
        assert_eq!(n.dialect(), "fir");
        assert_eq!(n.op(), "store");
        assert_eq!(n.full(), "fir.store");
        let m = OpName::new("module");
        assert_eq!(m.dialect(), "builtin");
        assert_eq!(m.op(), "module");
    }

    #[test]
    fn create_and_attach_op() {
        let mut m = Module::new();
        let top = m.top_block();
        let c = m.create_op(
            "arith.constant",
            vec![],
            vec![Type::i64()],
            vec![("value", Attribute::int(4))],
        );
        m.append_op(top, c);
        assert_eq!(m.block_ops(top), vec![c]);
        assert_eq!(m.value_type(m.result(c)), &Type::i64());
        assert_eq!(m.defining_op(m.result(c)), Some(c));
    }

    #[test]
    fn insert_before_and_after() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = m.create_op("t.a", vec![], vec![], vec![]);
        let b = m.create_op("t.b", vec![], vec![], vec![]);
        let c = m.create_op("t.c", vec![], vec![], vec![]);
        m.append_op(top, b);
        m.insert_op_before(b, a);
        m.insert_op_after(b, c);
        assert_eq!(m.block_ops(top), vec![a, b, c]);
    }

    #[test]
    fn erase_recursive() {
        let mut m = Module::new();
        let top = m.top_block();
        let outer = m.create_op("scf.for", vec![], vec![], vec![]);
        m.append_op(top, outer);
        let region = m.add_region(outer);
        let body = m.add_block(region, &[Type::Index]);
        let inner = m.create_op("t.inner", vec![], vec![], vec![]);
        m.append_op(body, inner);
        assert_eq!(m.live_op_count(), 2);
        m.erase_op(outer);
        assert_eq!(m.live_op_count(), 0);
        assert!(!m.is_alive(inner));
        assert!(m.block_ops(top).is_empty());
    }

    #[test]
    fn replace_all_uses_and_use_lists() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = m.create_op("t.a", vec![], vec![Type::i64()], vec![]);
        let b = m.create_op("t.b", vec![], vec![Type::i64()], vec![]);
        m.append_op(top, a);
        m.append_op(top, b);
        let va = m.result(a);
        let vb = m.result(b);
        let user = m.create_op("t.use", vec![va, va], vec![], vec![]);
        m.append_op(top, user);
        assert_eq!(m.uses(va).len(), 2);
        assert!(m.is_unused(vb));
        m.replace_all_uses(va, vb);
        assert!(m.is_unused(va));
        assert_eq!(m.uses(vb), vec![(user, 0), (user, 1)]);
    }

    #[test]
    fn parent_chain() {
        let mut m = Module::new();
        let top = m.top_block();
        let f = m.create_op("func.func", vec![], vec![], vec![]);
        m.append_op(top, f);
        let region = m.add_region(f);
        let entry = m.add_block(region, &[]);
        let lp = m.create_op("fir.do_loop", vec![], vec![], vec![]);
        m.append_op(entry, lp);
        let lr = m.add_region(lp);
        let lb = m.add_block(lr, &[Type::Index]);
        let body_op = m.create_op("t.x", vec![], vec![], vec![]);
        m.append_op(lb, body_op);
        assert_eq!(m.parent_op(body_op), Some(lp));
        assert_eq!(m.ancestors(body_op), vec![lp, f]);
        assert_eq!(m.parent_op(f), None);
    }

    #[test]
    fn block_args_and_terminator() {
        let mut m = Module::new();
        let f = m.create_op("func.func", vec![], vec![], vec![]);
        let region = m.add_region(f);
        let b = m.add_block(region, &[Type::Index, Type::f64()]);
        assert_eq!(m.block_args(b).len(), 2);
        let extra = m.add_block_arg(b, Type::i64());
        assert_eq!(m.block_args(b).len(), 3);
        assert_eq!(m.value_type(extra), &Type::i64());
        assert_eq!(m.block_terminator(b), None);
        let t = m.create_op("func.return", vec![], vec![], vec![]);
        m.append_op(b, t);
        assert_eq!(m.block_terminator(b), Some(t));
    }

    #[test]
    fn detach_and_reattach() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = m.create_op("t.a", vec![], vec![], vec![]);
        m.append_op(top, a);
        m.detach_op(a);
        assert!(m.block_ops(top).is_empty());
        assert!(m.is_alive(a));
        m.append_op(top, a);
        assert_eq!(m.block_ops(top), vec![a]);
    }

    #[test]
    fn top_level_ops_named() {
        let mut m = Module::new();
        let top = m.top_block();
        for _ in 0..3 {
            let f = m.create_op("func.func", vec![], vec![], vec![]);
            m.append_op(top, f);
        }
        let g = m.create_op("fir.global", vec![], vec![], vec![]);
        m.append_op(top, g);
        assert_eq!(m.top_level_ops_named("func.func").len(), 3);
        assert_eq!(m.top_level_ops_named("fir.global").len(), 1);
    }
}
