//! Structural IR verification.
//!
//! Checks the SSA invariants that MLIR's verifier would enforce:
//!
//! * every operand is visible at its use — defined earlier in the same
//!   block, a block argument of an enclosing block, or defined earlier in an
//!   enclosing region (structured-control-flow dominance);
//! * ops marked isolated-from-above (`func.func`, `builtin.module`,
//!   `gpu.module`) must not capture outside values;
//! * parent links are consistent.
//!
//! Dialect-specific invariants (e.g. "`stencil.apply` regions end in
//! `stencil.return`") are layered on via [`OpCheck`] callbacks registered by
//! the dialect crate.

use std::collections::HashSet;

use crate::module::{Module, OpId, RegionId, ValueId};
use crate::{IrError, Result};

/// A dialect-provided per-op check.
pub type OpCheck = fn(&Module, OpId) -> Result<()>;

/// Op names whose regions may not reference values from enclosing scopes.
const ISOLATED_FROM_ABOVE: &[&str] = &["func.func", "builtin.module", "gpu.module"];

/// Verify the whole module; returns the first violation found.
pub fn verify_module(module: &Module) -> Result<()> {
    verify_module_with(module, &[])
}

/// Verify with extra dialect-level op checks.
pub fn verify_module_with(module: &Module, checks: &[OpCheck]) -> Result<()> {
    let mut scope: HashSet<ValueId> = HashSet::new();
    verify_region(module, module.body, &mut scope, checks)
}

fn verify_region(
    module: &Module,
    region: RegionId,
    scope: &mut HashSet<ValueId>,
    checks: &[OpCheck],
) -> Result<()> {
    let added_at_entry = scope.len();
    let _ = added_at_entry;
    for block in module.region_blocks(region) {
        let mut local: Vec<ValueId> = Vec::new();
        for &arg in module.block_args(block) {
            scope.insert(arg);
            local.push(arg);
        }
        for op in module.block_ops(block) {
            let data = module.op(op);
            if data.parent != Some(block) {
                return Err(IrError::new(format!(
                    "op '{}' has inconsistent parent link",
                    data.name
                )));
            }
            for &operand in &data.operands {
                if !scope.contains(&operand) {
                    return Err(IrError::new(format!(
                        "operand of '{}' does not dominate its use",
                        data.name
                    )));
                }
            }
            for check in checks {
                check(module, op)?;
            }
            let isolated = ISOLATED_FROM_ABOVE.contains(&data.name.full());
            for nested in data.regions.clone() {
                if isolated {
                    let mut inner: HashSet<ValueId> = HashSet::new();
                    verify_region(module, nested, &mut inner, checks)?;
                } else {
                    verify_region(module, nested, scope, checks)?;
                }
            }
            for &r in &module.op(op).results {
                scope.insert(r);
                local.push(r);
            }
        }
        // Values defined in this block stay visible to *later* sibling blocks
        // only through block arguments; with structured control flow we never
        // have later sibling blocks referencing them, so removing them keeps
        // the check strict.
        for v in local {
            scope.remove(&v);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    #[test]
    fn accepts_well_formed_module() {
        let mut m = Module::new();
        let top = m.top_block();
        let c = m.create_op("arith.constant", vec![], vec![Type::i64()], vec![]);
        m.append_op(top, c);
        let v = m.result(c);
        let u = m.create_op("t.use", vec![v], vec![], vec![]);
        m.append_op(top, u);
        verify_module(&m).unwrap();
    }

    #[test]
    fn rejects_use_before_def() {
        let mut m = Module::new();
        let top = m.top_block();
        let c = m.create_op("arith.constant", vec![], vec![Type::i64()], vec![]);
        let v = m.result(c);
        let u = m.create_op("t.use", vec![v], vec![], vec![]);
        m.append_op(top, u);
        m.append_op(top, c); // def after use
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("dominate"), "{err}");
    }

    #[test]
    fn nested_region_sees_enclosing_values() {
        let mut m = Module::new();
        let top = m.top_block();
        let c = m.create_op("arith.constant", vec![], vec![Type::i64()], vec![]);
        m.append_op(top, c);
        let v = m.result(c);
        let lp = m.create_op("scf.for", vec![], vec![], vec![]);
        m.append_op(top, lp);
        let r = m.add_region(lp);
        let b = m.add_block(r, &[Type::Index]);
        let u = m.create_op("t.use", vec![v], vec![], vec![]);
        m.append_op(b, u);
        verify_module(&m).unwrap();
    }

    #[test]
    fn isolated_op_must_not_capture() {
        let mut m = Module::new();
        let top = m.top_block();
        let c = m.create_op("arith.constant", vec![], vec![Type::i64()], vec![]);
        m.append_op(top, c);
        let v = m.result(c);
        let f = m.create_op("func.func", vec![], vec![], vec![]);
        m.append_op(top, f);
        let r = m.add_region(f);
        let b = m.add_block(r, &[]);
        let u = m.create_op("t.use", vec![v], vec![], vec![]);
        m.append_op(b, u);
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("dominate"), "{err}");
    }

    #[test]
    fn custom_op_check_runs() {
        fn no_foo(module: &Module, op: OpId) -> Result<()> {
            if module.op(op).name.full() == "t.foo" {
                return Err(IrError::new("t.foo is forbidden"));
            }
            Ok(())
        }
        let mut m = Module::new();
        let top = m.top_block();
        let f = m.create_op("t.foo", vec![], vec![], vec![]);
        m.append_op(top, f);
        assert!(verify_module_with(&m, &[no_foo]).is_err());
    }
}
