//! [`OpBuilder`]: ergonomic op construction at an insertion point.
//!
//! Dialect crates extend the builder with their own helper traits (e.g.
//! `ArithOps::const_f64`), so this type deliberately only knows the generic
//! create-and-insert protocol.

use crate::attributes::Attribute;
use crate::module::{BlockId, Module, OpId, OpName, ValueId};
use crate::types::Type;

/// Insertion position for newly built ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertPoint {
    /// Append at the end of the block.
    EndOf(BlockId),
    /// Insert immediately before the given op.
    Before(OpId),
    /// Insert immediately after the given op. Consecutive inserts keep their
    /// relative order (the anchor advances to the op just inserted).
    After(OpId),
}

/// A builder that creates operations at a movable insertion point.
pub struct OpBuilder<'m> {
    module: &'m mut Module,
    point: InsertPoint,
}

impl<'m> OpBuilder<'m> {
    /// Builder appending at the end of `block`.
    pub fn at_end(module: &'m mut Module, block: BlockId) -> Self {
        Self {
            module,
            point: InsertPoint::EndOf(block),
        }
    }

    /// Builder inserting before `op`.
    pub fn before(module: &'m mut Module, op: OpId) -> Self {
        Self {
            module,
            point: InsertPoint::Before(op),
        }
    }

    /// Builder inserting after `op`.
    pub fn after(module: &'m mut Module, op: OpId) -> Self {
        Self {
            module,
            point: InsertPoint::After(op),
        }
    }

    /// Move the insertion point.
    pub fn set_point(&mut self, point: InsertPoint) {
        self.point = point;
    }

    /// Access the underlying module.
    pub fn module(&mut self) -> &mut Module {
        self.module
    }

    /// Read-only module access.
    pub fn module_ref(&self) -> &Module {
        self.module
    }

    /// Create an op and insert it at the current point.
    pub fn op(
        &mut self,
        name: impl Into<OpName>,
        operands: Vec<ValueId>,
        result_types: Vec<Type>,
        attrs: Vec<(&str, Attribute)>,
    ) -> OpId {
        let op = self.module.create_op(name, operands, result_types, attrs);
        self.insert(op);
        op
    }

    /// Create an op with a single result and return `(op, result)`.
    pub fn op1(
        &mut self,
        name: impl Into<OpName>,
        operands: Vec<ValueId>,
        result_type: Type,
        attrs: Vec<(&str, Attribute)>,
    ) -> (OpId, ValueId) {
        let op = self.op(name, operands, vec![result_type], attrs);
        (op, self.module.result(op))
    }

    /// Insert an already-created (detached) op at the current point.
    pub fn insert(&mut self, op: OpId) {
        match self.point {
            InsertPoint::EndOf(block) => self.module.append_op(block, op),
            InsertPoint::Before(anchor) => self.module.insert_op_before(anchor, op),
            InsertPoint::After(anchor) => {
                self.module.insert_op_after(anchor, op);
                self.point = InsertPoint::After(op);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_in_order_at_end() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let x = b.op("t.x", vec![], vec![], vec![]);
        let y = b.op("t.y", vec![], vec![], vec![]);
        assert_eq!(m.block_ops(top), vec![x, y]);
    }

    #[test]
    fn builds_before_anchor() {
        let mut m = Module::new();
        let top = m.top_block();
        let anchor = m.create_op("t.anchor", vec![], vec![], vec![]);
        m.append_op(top, anchor);
        let mut b = OpBuilder::before(&mut m, anchor);
        let x = b.op("t.x", vec![], vec![], vec![]);
        let y = b.op("t.y", vec![], vec![], vec![]);
        assert_eq!(m.block_ops(top), vec![x, y, anchor]);
    }

    #[test]
    fn builds_after_anchor_preserving_order() {
        let mut m = Module::new();
        let top = m.top_block();
        let anchor = m.create_op("t.anchor", vec![], vec![], vec![]);
        m.append_op(top, anchor);
        let mut b = OpBuilder::after(&mut m, anchor);
        let x = b.op("t.x", vec![], vec![], vec![]);
        let y = b.op("t.y", vec![], vec![], vec![]);
        assert_eq!(m.block_ops(top), vec![anchor, x, y]);
    }

    #[test]
    fn op1_returns_result() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let (op, v) = b.op1("t.c", vec![], Type::f64(), vec![]);
        assert_eq!(m.result(op), v);
        assert_eq!(m.value_type(v), &Type::f64());
    }
}
