//! Operation attributes.
//!
//! Attributes are compile-time-constant metadata attached to operations,
//! mirroring MLIR attributes. The stencil dialect's `#stencil.index<0, -1>`
//! offset attribute from the paper's Listing 2 is modelled by
//! [`Attribute::IndexList`].

use std::fmt;

use crate::types::Type;

/// A constant attribute value attached to an operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Attribute {
    /// An integer constant together with its type (e.g. `4 : i64`).
    Int(i64, Type),
    /// A floating point constant together with its type.
    Float(f64, Type),
    /// A string attribute.
    String(String),
    /// A boolean attribute.
    Bool(bool),
    /// A unit attribute — presence is the information.
    Unit,
    /// A type attribute.
    Type(Type),
    /// A reference to a symbol (function name etc.): `@name`.
    Symbol(String),
    /// An array of nested attributes.
    Array(Vec<Attribute>),
    /// A list of integers, used for stencil offsets (`#stencil.index<0, -1>`),
    /// bounds, tile sizes and similar shapes.
    IndexList(Vec<i64>),
}

impl Attribute {
    /// Integer attribute with `i64` type.
    pub fn int(v: i64) -> Attribute {
        Attribute::Int(v, Type::i64())
    }

    /// Index-typed integer attribute.
    pub fn index(v: i64) -> Attribute {
        Attribute::Int(v, Type::Index)
    }

    /// `f64` float attribute.
    pub fn float(v: f64) -> Attribute {
        Attribute::Float(v, Type::f64())
    }

    /// String attribute.
    pub fn string(v: impl Into<String>) -> Attribute {
        Attribute::String(v.into())
    }

    /// Symbol reference attribute.
    pub fn symbol(v: impl Into<String>) -> Attribute {
        Attribute::Symbol(v.into())
    }

    /// Extract an integer value if this is an [`Attribute::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Attribute::Int(v, _) => Some(*v),
            _ => None,
        }
    }

    /// Extract a float value if this is an [`Attribute::Float`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Attribute::Float(v, _) => Some(*v),
            _ => None,
        }
    }

    /// Extract the string if this is an [`Attribute::String`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attribute::String(s) => Some(s),
            _ => None,
        }
    }

    /// Extract the symbol name if this is an [`Attribute::Symbol`].
    pub fn as_symbol(&self) -> Option<&str> {
        match self {
            Attribute::Symbol(s) => Some(s),
            _ => None,
        }
    }

    /// Extract the boolean if this is an [`Attribute::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Attribute::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract the index list if this is an [`Attribute::IndexList`].
    pub fn as_index_list(&self) -> Option<&[i64]> {
        match self {
            Attribute::IndexList(v) => Some(v),
            _ => None,
        }
    }

    /// Extract the type if this is an [`Attribute::Type`].
    pub fn as_type(&self) -> Option<&Type> {
        match self {
            Attribute::Type(t) => Some(t),
            _ => None,
        }
    }

    /// Extract nested attributes if this is an [`Attribute::Array`].
    pub fn as_array(&self) -> Option<&[Attribute]> {
        match self {
            Attribute::Array(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attribute::Int(v, t) => write!(f, "{v} : {t}"),
            Attribute::Float(v, t) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.6e} : {t}")
                } else {
                    write!(f, "{v} : {t}")
                }
            }
            Attribute::String(s) => write!(f, "{s:?}"),
            Attribute::Bool(b) => write!(f, "{b}"),
            Attribute::Unit => write!(f, "unit"),
            Attribute::Type(t) => write!(f, "{t}"),
            Attribute::Symbol(s) => write!(f, "@{s}"),
            Attribute::Array(items) => {
                write!(f, "[")?;
                for (i, a) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "]")
            }
            Attribute::IndexList(items) => {
                write!(f, "#index<")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ">")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        assert_eq!(Attribute::int(42).as_int(), Some(42));
        assert_eq!(Attribute::float(0.25).as_float(), Some(0.25));
        assert_eq!(Attribute::string("hi").as_str(), Some("hi"));
        assert_eq!(Attribute::symbol("f").as_symbol(), Some("f"));
        assert_eq!(Attribute::Bool(true).as_bool(), Some(true));
        assert_eq!(
            Attribute::IndexList(vec![0, -1]).as_index_list(),
            Some(&[0, -1][..])
        );
        assert_eq!(Attribute::Type(Type::f64()).as_type(), Some(&Type::f64()));
    }

    #[test]
    fn wrong_accessor_returns_none() {
        assert_eq!(Attribute::int(1).as_float(), None);
        assert_eq!(Attribute::float(1.0).as_int(), None);
        assert_eq!(Attribute::Unit.as_str(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Attribute::int(7).to_string(), "7 : i64");
        assert_eq!(Attribute::index(3).to_string(), "3 : index");
        assert_eq!(Attribute::symbol("apply_0").to_string(), "@apply_0");
        assert_eq!(
            Attribute::IndexList(vec![0, -1]).to_string(),
            "#index<0, -1>"
        );
        assert_eq!(Attribute::string("x").to_string(), "\"x\"");
    }

    #[test]
    fn float_display_is_scientific_for_round_values() {
        // Mirrors MLIR's printing of 2.500000e-01 in the paper listing.
        let s = Attribute::Float(1.0, Type::f64()).to_string();
        assert!(s.contains('e'), "expected scientific form, got {s}");
    }

    #[test]
    fn array_display() {
        let a = Attribute::Array(vec![Attribute::int(1), Attribute::int(2)]);
        assert_eq!(a.to_string(), "[1 : i64, 2 : i64]");
    }
}
