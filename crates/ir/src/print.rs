//! Textual printing of IR modules in MLIR's *generic* operation form.
//!
//! The generic form (`"dialect.op"(%operands) ({regions}) {attrs} : type`)
//! round-trips through [`crate::parse`], which the test suite leans on, and
//! matches the notation used in the paper's Listing 2.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::module::{BlockId, Module, OpId, RegionId, ValueId};

/// Print the whole module.
pub fn print_module(module: &Module) -> String {
    let mut p = Printer::new(module);
    let mut out = String::new();
    out.push_str("module {\n");
    for op in module.block_ops(module.top_block()) {
        p.print_op(&mut out, op, 1);
    }
    out.push_str("}\n");
    out
}

/// Print a single op (and everything nested inside it).
pub fn print_op(module: &Module, op: OpId) -> String {
    let mut p = Printer::new(module);
    let mut out = String::new();
    p.print_op(&mut out, op, 0);
    out
}

struct Printer<'m> {
    module: &'m Module,
    names: HashMap<ValueId, String>,
    next_value: usize,
    next_block: usize,
}

impl<'m> Printer<'m> {
    fn new(module: &'m Module) -> Self {
        Self {
            module,
            names: HashMap::new(),
            next_value: 0,
            next_block: 0,
        }
    }

    fn value_name(&mut self, v: ValueId) -> String {
        if let Some(n) = self.names.get(&v) {
            return n.clone();
        }
        let n = format!("%{}", self.next_value);
        self.next_value += 1;
        self.names.insert(v, n.clone());
        n
    }

    fn print_op(&mut self, out: &mut String, op: OpId, indent: usize) {
        let data = self.module.op(op);
        let pad = "  ".repeat(indent);
        out.push_str(&pad);
        if !data.results.is_empty() {
            let names: Vec<String> = data.results.iter().map(|&r| self.value_name(r)).collect();
            let _ = write!(out, "{} = ", names.join(", "));
        }
        let _ = write!(out, "\"{}\"(", data.name);
        let operand_names: Vec<String> =
            data.operands.iter().map(|&o| self.value_name(o)).collect();
        out.push_str(&operand_names.join(", "));
        out.push(')');

        if !data.regions.is_empty() {
            out.push_str(" (");
            for (i, &region) in data.regions.clone().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                self.print_region(out, region, indent);
            }
            out.push(')');
        }

        if !data.attrs.is_empty() {
            out.push_str(" {");
            let attrs = data.attrs.clone();
            for (i, (k, v)) in attrs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{k} = {v}");
            }
            out.push('}');
        }

        // Trailing function-style type signature.
        let operand_tys: Vec<String> = data
            .operands
            .iter()
            .map(|&o| self.module.value_type(o).to_string())
            .collect();
        let result_tys: Vec<String> = data
            .results
            .iter()
            .map(|&r| self.module.value_type(r).to_string())
            .collect();
        let _ = writeln!(
            out,
            " : ({}) -> ({})",
            operand_tys.join(", "),
            result_tys.join(", ")
        );
    }

    fn print_region(&mut self, out: &mut String, region: RegionId, indent: usize) {
        out.push_str("{\n");
        for block in self.module.region_blocks(region) {
            self.print_block(out, block, indent + 1);
        }
        out.push_str(&"  ".repeat(indent));
        out.push('}');
    }

    fn print_block(&mut self, out: &mut String, block: BlockId, indent: usize) {
        let args = self.module.block_args(block).to_vec();
        let label = self.next_block;
        self.next_block += 1;
        let pad = "  ".repeat(indent);
        // Always print the header: unambiguous for the parser.
        let _ = write!(out, "{pad}^bb{label}(");
        for (i, &arg) in args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let name = self.value_name(arg);
            let _ = write!(out, "{name}: {}", self.module.value_type(arg));
        }
        out.push_str("):\n");
        for op in self.module.block_ops(block) {
            self.print_op(out, op, indent + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Attribute;
    use crate::types::Type;

    #[test]
    fn prints_constant_with_attr_and_type() {
        let mut m = Module::new();
        let top = m.top_block();
        let c = m.create_op(
            "arith.constant",
            vec![],
            vec![Type::i64()],
            vec![("value", Attribute::int(4))],
        );
        m.append_op(top, c);
        let s = print_module(&m);
        assert!(
            s.contains("%0 = \"arith.constant\"() {value = 4 : i64} : () -> (i64)"),
            "{s}"
        );
    }

    #[test]
    fn prints_nested_region_with_block_args() {
        let mut m = Module::new();
        let top = m.top_block();
        let lp = m.create_op("scf.for", vec![], vec![], vec![]);
        m.append_op(top, lp);
        let r = m.add_region(lp);
        let b = m.add_block(r, &[Type::Index]);
        let iv = m.block_args(b)[0];
        let u = m.create_op("t.use", vec![iv], vec![], vec![]);
        m.append_op(b, u);
        let s = print_module(&m);
        assert!(s.contains("\"scf.for\"() ({"), "{s}");
        assert!(s.contains("^bb0(%0: index):"), "{s}");
        assert!(s.contains("\"t.use\"(%0) : (index) -> ()"), "{s}");
    }

    #[test]
    fn shared_values_get_one_name() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = m.create_op("t.a", vec![], vec![Type::f64()], vec![]);
        m.append_op(top, a);
        let va = m.result(a);
        let u = m.create_op("t.u", vec![va, va], vec![], vec![]);
        m.append_op(top, u);
        let s = print_module(&m);
        assert!(s.contains("\"t.u\"(%0, %0)"), "{s}");
    }

    #[test]
    fn multiple_results_comma_separated() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = m.create_op("t.pair", vec![], vec![Type::f64(), Type::i64()], vec![]);
        m.append_op(top, a);
        let s = print_module(&m);
        assert!(s.contains("%0, %1 = \"t.pair\"()"), "{s}");
    }
}
