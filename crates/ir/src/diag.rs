//! Structured, source-located diagnostics shared by every compiler layer.
//!
//! One [`Diagnostic`] describes one thing that went wrong (or is worth
//! saying) about some input: a severity, a *stable* error code from the
//! registry below, a human message, an optional source [`Span`], and
//! follow-up notes. The frontend accumulates them (parser error recovery
//! reports many per file), the pass pipeline attaches them to rollback
//! reports, and the MPI substrate threads them through rank failures so a
//! distributed run surfaces the originating compiler error instead of a
//! bare panic string.
//!
//! Error codes are append-only: tests (and the golden diagnostics suite
//! under `tests/diagnostics/`) key on them, so a code's meaning never
//! changes; new failure modes get new codes.

use std::fmt;

/// A location in source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Span {
    /// New span at `line:col` (both 1-based).
    pub fn new(line: u32, col: u32) -> Self {
        Self { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Compilation cannot produce a correct result.
    Error,
    /// Suspicious but not fatal.
    Warning,
    /// Attached context (also used for degradation attestations).
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        })
    }
}

/// A single structured diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Stable code from the registry (e.g. `E0101`).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Source location, when one is known.
    pub span: Option<Span>,
    /// Follow-up notes (rendered indented under the main line).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A new error diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Error,
            code,
            message: message.into(),
            span: None,
            notes: Vec::new(),
        }
    }

    /// A new warning diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Warning,
            ..Self::error(code, message)
        }
    }

    /// A new note diagnostic.
    pub fn note_diag(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Note,
            ..Self::error(code, message)
        }
    }

    /// Attach a source location.
    pub fn at(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attach a source location from 1-based line/column.
    pub fn at_line_col(self, line: u32, col: u32) -> Self {
        self.at(Span::new(line, col))
    }

    /// Append a follow-up note.
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Render in the stable single-header format used by the golden suite:
    ///
    /// ```text
    /// error[E0101] line 3:14: expected ')' in argument list
    ///   note: argument lists are comma separated
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self.span {
            Some(s) => {
                out.push_str(&format!(
                    "{}[{}] line {}: {}",
                    self.severity, self.code, s, self.message
                ));
            }
            None => {
                out.push_str(&format!(
                    "{}[{}]: {}",
                    self.severity, self.code, self.message
                ));
            }
        }
        for n in &self.notes {
            out.push_str("\n  note: ");
            out.push_str(n);
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Render a batch of diagnostics, one per line block, in input order.
pub fn render_all(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(Diagnostic::render)
        .collect::<Vec<_>>()
        .join("\n")
}

/// The stable error-code registry.
///
/// Grouped by compiler layer; codes are append-only (see module docs).
pub mod codes {
    /// Lexer: unexpected character.
    pub const LEX_UNEXPECTED_CHAR: &str = "E0001";
    /// Lexer: malformed numeric or logical literal.
    pub const LEX_BAD_LITERAL: &str = "E0002";
    /// Parser: unexpected token.
    pub const PARSE_UNEXPECTED_TOKEN: &str = "E0101";
    /// Parser: a specific token/keyword was required.
    pub const PARSE_EXPECTED: &str = "E0102";
    /// Parser: unit/block not closed (`end` missing).
    pub const PARSE_UNTERMINATED: &str = "E0103";
    /// Parser: no program units in the file.
    pub const PARSE_EMPTY_SOURCE: &str = "E0104";
    /// Parser: malformed declaration.
    pub const PARSE_BAD_DECL: &str = "E0105";
    /// Sema: name used but not declared.
    pub const SEMA_UNDECLARED: &str = "E0201";
    /// Sema: name declared twice.
    pub const SEMA_DUPLICATE: &str = "E0202";
    /// Sema: array rank mismatch.
    pub const SEMA_RANK_MISMATCH: &str = "E0203";
    /// Sema: type misuse (logical arithmetic, non-integer do variable, ...).
    pub const SEMA_TYPE: &str = "E0204";
    /// Sema: constant expression cannot be folded.
    pub const SEMA_CONST_FOLD: &str = "E0205";
    /// Sema: allocate/deallocate misuse.
    pub const SEMA_ALLOC: &str = "E0206";
    /// Sema: intrinsic called with the wrong number of arguments.
    pub const SEMA_INTRINSIC_ARITY: &str = "E0207";
    /// Sema: call target does not exist.
    pub const SEMA_UNKNOWN_CALL: &str = "E0208";
    /// Textual IR parser: syntax error.
    pub const IRPARSE_SYNTAX: &str = "E0301";
    /// Textual IR parser: use of an undefined SSA value.
    pub const IRPARSE_UNDEFINED_VALUE: &str = "E0302";
    /// Textual IR parser: operand/result count disagrees with signature.
    pub const IRPARSE_SIGNATURE: &str = "E0303";
    /// Textual IR parser: malformed or unknown type.
    pub const IRPARSE_TYPE: &str = "E0304";
    /// Textual IR parser: nesting exceeds the parser's depth bound.
    pub const IRPARSE_TOO_DEEP: &str = "E0305";
    /// Verifier: structural SSA violation.
    pub const VERIFY_STRUCTURAL: &str = "E0401";
    /// Verifier: dialect invariant violation.
    pub const VERIFY_DIALECT: &str = "E0402";
    /// Pass returned an error.
    pub const PASS_FAILED: &str = "E0501";
    /// Pass panicked (caught by the hardened pipeline).
    pub const PASS_PANICKED: &str = "E0502";
    /// Verifier rejected the module a pass produced.
    pub const PASS_BROKE_IR: &str = "E0503";
    /// Frontend lowering error.
    pub const LOWER: &str = "E0601";
    /// Kernel compilation error.
    pub const KERNEL: &str = "E0602";
    /// Runtime execution error.
    pub const EXEC: &str = "E0701";
    /// Pass option rejected (out-of-range or malformed value).
    pub const PASS_BAD_OPTION: &str = "E0504";
    /// Plan cache unreadable (missing/corrupt/unsupported version) —
    /// execution falls back to default plans.
    pub const PLAN_CACHE: &str = "E0702";
    /// Autotune calibration failed or was skipped — default plan kept.
    pub const AUTOTUNE: &str = "E0703";
    /// A cached jit artifact failed its integrity check; it was evicted
    /// and the kernel was recompiled fresh (warning — never a miscompile).
    pub const JIT_ARTIFACT: &str = "E0704";
    /// Jit stitching skipped this nest; it runs on the fused VM tier
    /// (warning — degradation, not failure).
    pub const JIT_FALLBACK: &str = "E0705";
    /// Process grid does not divide the interior extent of a decomposed
    /// dimension.
    pub const DMP_DECOMPOSITION: &str = "E0505";
    /// Process grid is oversubscribed: more ranks than interior cells on a
    /// halo-carrying decomposed dimension, so most ranks would idle while
    /// the rest cannot hold a full halo. (A single rank is always legal —
    /// it trivially owns the whole, possibly empty, domain.)
    pub const DMP_OVERSUBSCRIBED: &str = "E0506";
    /// Compile server at capacity: the request was rejected by admission
    /// control instead of being queued (retry with backoff).
    pub const SERVER_BUSY: &str = "E0801";
    /// Compile server received a malformed or unsupported request.
    pub const SERVER_PROTOCOL: &str = "E0802";
    /// Compile server deadline exceeded: the request's compile/run budget
    /// ran out before a result was produced. The singleflight slot is
    /// reclaimed so waiting requests are promoted, never wedged.
    pub const SERVER_DEADLINE: &str = "E0803";
    /// Compile server worker crashed (panicked outside any catch_unwind)
    /// while holding the request; the supervisor answered the client and
    /// respawned the worker.
    pub const SERVER_WORKER_CRASH: &str = "E0804";
    /// Memory budget exhausted: a buffer allocation would exceed the
    /// request's byte ledger (or the host refused the reservation), so the
    /// request fails with a coded error instead of aborting the process.
    pub const MEM_BUDGET: &str = "E0805";
    /// Compile server rejected a request at admission: its static memory
    /// estimate could not be reserved against the server-wide budget, even
    /// after memory-pressure degradation and a bounded parking wait.
    pub const SERVER_MEM_REJECT: &str = "E0806";
    /// Extent arithmetic overflowed while computing a buffer or view size
    /// (element counts near `usize::MAX`); the computation is rejected with
    /// a coded error instead of wrapping silently.
    pub const EXTENT_OVERFLOW: &str = "E0807";

    /// One-line description of a code, for docs and `--explain`-style
    /// output. Returns `None` for unknown codes.
    pub fn describe(code: &str) -> Option<&'static str> {
        Some(match code {
            "E0001" => "unexpected character in source",
            "E0002" => "malformed literal",
            "E0101" => "unexpected token",
            "E0102" => "expected a specific token or keyword",
            "E0103" => "unterminated construct (missing end)",
            "E0104" => "no program units in source",
            "E0105" => "malformed declaration",
            "E0201" => "name used but not declared",
            "E0202" => "name declared twice",
            "E0203" => "array rank mismatch",
            "E0204" => "type misuse",
            "E0205" => "constant expression cannot be folded",
            "E0206" => "allocate/deallocate misuse",
            "E0207" => "intrinsic arity mismatch",
            "E0208" => "call to unknown subroutine",
            "E0301" => "textual IR syntax error",
            "E0302" => "use of undefined SSA value in textual IR",
            "E0303" => "textual IR signature mismatch",
            "E0304" => "malformed or unknown type in textual IR",
            "E0305" => "textual IR nesting exceeds depth bound",
            "E0401" => "structural SSA verification failure",
            "E0402" => "dialect invariant verification failure",
            "E0501" => "pass returned an error",
            "E0502" => "pass panicked",
            "E0503" => "pass produced IR the verifier rejects",
            "E0504" => "pass option rejected",
            "E0505" => "process grid does not divide a decomposed extent",
            "E0506" => "more ranks than cells on a halo-carrying dimension",
            "E0601" => "frontend lowering error",
            "E0602" => "kernel compilation error",
            "E0701" => "runtime execution error",
            "E0702" => "plan cache unreadable; default plans used",
            "E0703" => "autotune calibration failed; default plan kept",
            "E0704" => "jit artifact failed integrity check; recompiled fresh",
            "E0705" => "jit stitching skipped; nest runs on the fused VM",
            "E0801" => "compile server at capacity; request rejected",
            "E0802" => "malformed or unsupported server request",
            "E0803" => "compile server deadline exceeded; slot reclaimed",
            "E0804" => "compile server worker crashed; worker respawned",
            "E0805" => "allocation denied: memory budget exhausted",
            "E0806" => "compile server rejected request: memory reservation unavailable",
            "E0807" => "extent arithmetic overflow in size computation",
            _ => return None,
        })
    }

    /// Every registered code, for exhaustiveness tests.
    pub const ALL: &[&str] = &[
        "E0001", "E0002", "E0101", "E0102", "E0103", "E0104", "E0105", "E0201", "E0202", "E0203",
        "E0204", "E0205", "E0206", "E0207", "E0208", "E0301", "E0302", "E0303", "E0304", "E0305",
        "E0401", "E0402", "E0501", "E0502", "E0503", "E0504", "E0505", "E0506", "E0601", "E0602",
        "E0701", "E0702", "E0703", "E0704", "E0705", "E0801", "E0802", "E0803", "E0804", "E0805",
        "E0806", "E0807",
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_with_span_and_notes() {
        let d = Diagnostic::error(codes::PARSE_EXPECTED, "expected ')'")
            .at_line_col(3, 14)
            .note("argument lists are comma separated");
        assert_eq!(
            d.render(),
            "error[E0102] line 3:14: expected ')'\n  note: argument lists are comma separated"
        );
    }

    #[test]
    fn render_without_span() {
        let d = Diagnostic::warning(codes::PASS_FAILED, "pass skipped");
        assert_eq!(d.render(), "warning[E0501]: pass skipped");
    }

    #[test]
    fn every_code_is_described_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for &c in codes::ALL {
            assert!(codes::describe(c).is_some(), "{c} lacks a description");
            assert!(seen.insert(c), "{c} listed twice");
        }
        assert!(codes::describe("E9999").is_none());
    }

    #[test]
    fn readme_registry_covers_every_code() {
        // The README's error-code table is the human-facing registry;
        // adding a code without documenting it there fails here.
        let readme = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"));
        for &c in codes::ALL {
            assert!(
                readme.contains(&format!("`{c}`")),
                "{c} is registered but missing from the README error-code table"
            );
        }
    }

    #[test]
    fn render_all_joins_in_order() {
        let a = Diagnostic::error(codes::SEMA_UNDECLARED, "a");
        let b = Diagnostic::error(codes::SEMA_DUPLICATE, "b");
        let s = render_all(&[a, b]);
        assert!(s.starts_with("error[E0201]"));
        assert!(s.contains("\nerror[E0202]"));
    }
}
