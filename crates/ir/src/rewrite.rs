//! Rewrite utilities: cloning with value remapping, op motion, region
//! surgery and dead-code sweeping.
//!
//! These are the moves the paper's transformations are built from:
//! * stencil *discovery* moves arithmetic out of FIR loop bodies into a new
//!   `stencil.apply` region and deletes emptied loops;
//! * stencil *extraction* outlines a subgraph into a fresh function in a
//!   separate module (a clone-with-remap across modules);
//! * fusion splices one apply region into another.

use std::collections::HashMap;

use crate::module::{BlockId, Module, OpId, ValueId};

/// A mapping from values in a source context to values in a destination
/// context, used when cloning or outlining IR.
pub type ValueMap = HashMap<ValueId, ValueId>;

/// Clone `op` (with all nested regions) into `dest_block` of `dest`,
/// remapping operand values through `map`. Result values of cloned ops are
/// added to `map` so later clones see them. Returns the new op id.
///
/// `src` and `dest` may be the same module (pass the same module for an
/// intra-module clone) — the implementation only reads from `src_snapshot`,
/// a pre-cloned copy, to avoid aliasing issues.
pub fn clone_op_into(
    src_snapshot: &Module,
    src_op: OpId,
    dest: &mut Module,
    dest_block: BlockId,
    map: &mut ValueMap,
) -> OpId {
    let data = src_snapshot.op(src_op);
    let operands: Vec<ValueId> = data
        .operands
        .iter()
        .map(|v| *map.get(v).unwrap_or(v))
        .collect();
    let result_types: Vec<_> = data
        .results
        .iter()
        .map(|&r| src_snapshot.value_type(r).clone())
        .collect();
    let attrs: Vec<(&str, _)> = data
        .attrs
        .iter()
        .map(|(k, v)| (k.as_str(), v.clone()))
        .collect();
    let name = data.name.clone();
    let src_results = data.results.clone();
    let src_regions = data.regions.clone();

    let new_op = dest.create_op(name, operands, result_types, attrs);
    dest.append_op(dest_block, new_op);
    for (i, &src_r) in src_results.iter().enumerate() {
        let dest_r = dest.op(new_op).results[i];
        map.insert(src_r, dest_r);
    }
    for src_region in src_regions {
        let dest_region = dest.add_region(new_op);
        for src_block in src_snapshot.region_blocks(src_region) {
            let arg_types: Vec<_> = src_snapshot
                .block_args(src_block)
                .iter()
                .map(|&a| src_snapshot.value_type(a).clone())
                .collect();
            let dest_blk = dest.add_block(dest_region, &arg_types);
            let src_args = src_snapshot.block_args(src_block).to_vec();
            let dest_args = dest.block_args(dest_blk).to_vec();
            for (sa, da) in src_args.iter().zip(dest_args.iter()) {
                map.insert(*sa, *da);
            }
            for inner in src_snapshot.block_ops(src_block) {
                clone_op_into(src_snapshot, inner, dest, dest_blk, map);
            }
        }
    }
    new_op
}

/// Move `op` (keeping its regions intact) so it becomes the last op of
/// `dest_block` in the same module.
pub fn move_op_to_end(module: &mut Module, op: OpId, dest_block: BlockId) {
    module.detach_op(op);
    module.append_op(dest_block, op);
}

/// Move `op` so it sits immediately before `anchor` in the same module.
pub fn move_op_before(module: &mut Module, op: OpId, anchor: OpId) {
    module.detach_op(op);
    module.insert_op_before(anchor, op);
}

/// Replace `op` with `replacement_values` (one per result) and erase it.
pub fn replace_op(module: &mut Module, op: OpId, replacement_values: &[ValueId]) {
    let results = module.op(op).results.clone();
    assert_eq!(
        results.len(),
        replacement_values.len(),
        "replacement count mismatch for {}",
        module.op(op).name
    );
    for (old, new) in results.iter().zip(replacement_values) {
        module.replace_all_uses(*old, *new);
    }
    module.erase_op(op);
}

/// If `value`'s defining op sits after `anchor` in the same block, move it
/// (and transitively its operand definitions) to just before `anchor`.
/// No-op when the definition already dominates the anchor or lives in a
/// different block.
pub fn hoist_def_before(m: &mut Module, value: ValueId, anchor: OpId) {
    let Some(def) = m.defining_op(value) else {
        return;
    };
    let anchor_block = m.op(anchor).parent;
    if m.op(def).parent != anchor_block || anchor_block.is_none() {
        return;
    }
    let block = anchor_block.unwrap();
    let ops = m.block_ops(block);
    let def_pos = ops.iter().position(|&o| o == def);
    let anchor_pos = ops.iter().position(|&o| o == anchor);
    if let (Some(d), Some(a)) = (def_pos, anchor_pos) {
        if d > a {
            for operand in m.op(def).operands.clone() {
                hoist_def_before(m, operand, anchor);
            }
            move_op_before(m, def, anchor);
        }
    }
}

/// Names of ops that may be removed when their results are unused.
/// Anything with memory or control side effects must not be listed here.
pub fn is_pure(name: &str) -> bool {
    matches!(
        name.split_once('.').map_or("", |(d, _)| d),
        "arith" | "math" | "index"
    ) || matches!(
        name,
        "fir.convert"
            | "fir.no_reassoc"
            | "fir.coordinate_of"
            | "fir.load"
            | "stencil.access"
            | "stencil.index"
            | "stencil.load"
            | "memref.load"
    )
}

/// Sweep the module erasing pure ops whose results are all unused, repeating
/// until a fixed point. Returns the number of erased ops.
pub fn erase_dead_pure_ops(module: &mut Module) -> usize {
    let mut erased = 0;
    loop {
        let candidates: Vec<OpId> = module
            .all_live_ops()
            .filter(|&op| {
                let data = module.op(op);
                data.parent.is_some()
                    && is_pure(data.name.full())
                    && !data.results.is_empty()
                    && data.results.iter().all(|&r| module.is_unused(r))
            })
            .collect();
        if candidates.is_empty() {
            return erased;
        }
        for op in candidates {
            module.erase_op(op);
            erased += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Attribute;
    use crate::types::Type;

    #[test]
    fn clone_remaps_operands_and_results() {
        let mut src = Module::new();
        let top = src.top_block();
        let a = src.create_op(
            "arith.constant",
            vec![],
            vec![Type::f64()],
            vec![("value", Attribute::float(1.0))],
        );
        src.append_op(top, a);
        let va = src.result(a);
        let add = src.create_op("arith.addf", vec![va, va], vec![Type::f64()], vec![]);
        src.append_op(top, add);

        let snapshot = src.clone();
        let mut dest = Module::new();
        let dtop = dest.top_block();
        let mut map = ValueMap::new();
        let ca = clone_op_into(&snapshot, a, &mut dest, dtop, &mut map);
        let cadd = clone_op_into(&snapshot, add, &mut dest, dtop, &mut map);
        let cva = dest.result(ca);
        assert_eq!(dest.op(cadd).operands, vec![cva, cva]);
    }

    #[test]
    fn clone_carries_regions_and_block_args() {
        let mut src = Module::new();
        let top = src.top_block();
        let lp = src.create_op("scf.for", vec![], vec![], vec![]);
        src.append_op(top, lp);
        let r = src.add_region(lp);
        let b = src.add_block(r, &[Type::Index]);
        let iv = src.block_args(b)[0];
        let use_iv = src.create_op("t.use", vec![iv], vec![], vec![]);
        src.append_op(b, use_iv);

        let snapshot = src.clone();
        let mut dest = Module::new();
        let dtop = dest.top_block();
        let mut map = ValueMap::new();
        let clp = clone_op_into(&snapshot, lp, &mut dest, dtop, &mut map);
        let dregion = dest.op(clp).regions[0];
        let dblock = dest.region_blocks(dregion)[0];
        let dargs = dest.block_args(dblock).to_vec();
        assert_eq!(dargs.len(), 1);
        let dops = dest.block_ops(dblock);
        assert_eq!(dops.len(), 1);
        assert_eq!(dest.op(dops[0]).operands, vec![dargs[0]]);
    }

    #[test]
    fn replace_op_rewires_uses() {
        let mut m = Module::new();
        let top = m.top_block();
        let a = m.create_op("t.a", vec![], vec![Type::i64()], vec![]);
        let b = m.create_op("t.b", vec![], vec![Type::i64()], vec![]);
        m.append_op(top, a);
        m.append_op(top, b);
        let va = m.result(a);
        let vb = m.result(b);
        let user = m.create_op("t.use", vec![va], vec![], vec![]);
        m.append_op(top, user);
        replace_op(&mut m, a, &[vb]);
        assert!(!m.is_alive(a));
        assert_eq!(m.op(user).operands, vec![vb]);
    }

    #[test]
    fn dead_pure_sweep_is_transitive() {
        let mut m = Module::new();
        let top = m.top_block();
        // c -> neg -> (unused); both should go in one sweep call.
        let c = m.create_op("arith.constant", vec![], vec![Type::f64()], vec![]);
        m.append_op(top, c);
        let vc = m.result(c);
        let neg = m.create_op("arith.negf", vec![vc], vec![Type::f64()], vec![]);
        m.append_op(top, neg);
        assert_eq!(erase_dead_pure_ops(&mut m), 2);
        assert_eq!(m.live_op_count(), 0);
    }

    #[test]
    fn dead_sweep_keeps_side_effecting_ops() {
        let mut m = Module::new();
        let top = m.top_block();
        let c = m.create_op(
            "fir.alloca",
            vec![],
            vec![Type::fir_ref(Type::f64())],
            vec![],
        );
        m.append_op(top, c);
        assert_eq!(erase_dead_pure_ops(&mut m), 0);
        assert_eq!(m.live_op_count(), 1);
    }

    #[test]
    fn move_ops_between_blocks() {
        let mut m = Module::new();
        let top = m.top_block();
        let f = m.create_op("func.func", vec![], vec![], vec![]);
        m.append_op(top, f);
        let r = m.add_region(f);
        let inner = m.add_block(r, &[]);
        let x = m.create_op("t.x", vec![], vec![], vec![]);
        m.append_op(top, x);
        move_op_to_end(&mut m, x, inner);
        assert_eq!(m.block_ops(inner), vec![x]);
        assert_eq!(m.block_ops(top), vec![f]);
    }
}
