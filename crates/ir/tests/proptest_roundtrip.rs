//! Property tests: every printable type and attribute must survive the
//! textual round-trip, and random well-formed modules must re-print
//! identically after parsing.

use fsc_ir::parse::{parse_module, parse_type};
use fsc_ir::print::print_module;
use fsc_ir::types::DimBound;
use fsc_ir::{Attribute, Module, OpBuilder, Type};
use proptest::prelude::*;

fn scalar_type() -> impl Strategy<Value = Type> {
    prop_oneof![
        Just(Type::Index),
        Just(Type::None),
        prop_oneof![Just(1u32), Just(8), Just(16), Just(32), Just(64)].prop_map(Type::Int),
        prop_oneof![Just(32u32), Just(64)].prop_map(Type::Float),
    ]
}

fn shaped_type() -> impl Strategy<Value = Type> {
    let dims = prop::collection::vec(prop_oneof![1i64..64, Just(Type::DYNAMIC)], 1..4);
    let bounds = prop::collection::vec((-8i64..8, 8i64..64), 1..4).prop_map(|v| {
        v.into_iter()
            .map(|(l, u)| DimBound::new(l, u))
            .collect::<Vec<_>>()
    });
    prop_oneof![
        (
            dims.clone(),
            scalar_type().prop_filter("elem", |t| t.is_scalar())
        )
            .prop_map(|(shape, elem)| Type::memref(shape, elem)),
        (dims, prop_oneof![Just(Type::f64()), Just(Type::f32())])
            .prop_map(|(shape, elem)| Type::fir_array(shape, elem)),
        (bounds.clone(), Just(Type::f64())).prop_map(|(b, e)| Type::stencil_field(b, e)),
        (bounds, Just(Type::f64())).prop_map(|(b, e)| Type::stencil_temp(b, e)),
    ]
}

fn any_type() -> impl Strategy<Value = Type> {
    prop_oneof![
        scalar_type(),
        shaped_type(),
        shaped_type().prop_map(Type::fir_ref),
        shaped_type().prop_map(Type::fir_heap),
        scalar_type().prop_map(|t| Type::FirLlvmPtr(Box::new(t))),
        scalar_type().prop_map(|t| Type::LlvmPtr(Some(Box::new(t)))),
        Just(Type::LlvmPtr(None)),
    ]
}

proptest! {
    #[test]
    fn type_display_parses_back(ty in any_type()) {
        let text = ty.to_string();
        let parsed = parse_type(&text).unwrap();
        prop_assert_eq!(parsed, ty);
    }

    #[test]
    fn int_attribute_roundtrip(v in any::<i32>()) {
        let mut m = Module::new();
        let top = m.top_block();
        let op = m.create_op(
            "t.c",
            vec![],
            vec![Type::i64()],
            vec![("value", Attribute::Int(v as i64, Type::i64()))],
        );
        m.append_op(top, op);
        let text = print_module(&m);
        let m2 = parse_module(&text).unwrap();
        let op2 = m2.block_ops(m2.top_block())[0];
        prop_assert_eq!(m2.op(op2).attr("value").unwrap().as_int(), Some(v as i64));
    }

    #[test]
    fn index_list_attribute_roundtrip(items in prop::collection::vec(-64i64..64, 0..6)) {
        let mut m = Module::new();
        let top = m.top_block();
        let op = m.create_op(
            "t.c",
            vec![],
            vec![],
            vec![("offset", Attribute::IndexList(items.clone()))],
        );
        m.append_op(top, op);
        let text = print_module(&m);
        let m2 = parse_module(&text).unwrap();
        let op2 = m2.block_ops(m2.top_block())[0];
        prop_assert_eq!(
            m2.op(op2).attr("offset").unwrap().as_index_list().unwrap().to_vec(),
            items
        );
    }

    /// Random straight-line modules: chains of ops over random types, each
    /// consuming previous results — must round-trip print→parse→print.
    #[test]
    fn straight_line_module_roundtrip(
        types in prop::collection::vec(scalar_type().prop_filter("no none", |t| *t != Type::None), 1..8),
        use_prev in prop::collection::vec(any::<bool>(), 1..8),
    ) {
        let mut m = Module::new();
        let top = m.top_block();
        let mut last = None;
        for (i, ty) in types.iter().enumerate() {
            let mut b = OpBuilder::at_end(&mut m, top);
            let operands = match (last, use_prev.get(i)) {
                (Some(v), Some(true)) => vec![v],
                _ => vec![],
            };
            let (_, v) = b.op1("test.node", operands, ty.clone(), vec![]);
            last = Some(v);
        }
        let p1 = print_module(&m);
        let m2 = parse_module(&p1).unwrap();
        let p2 = print_module(&m2);
        prop_assert_eq!(p1, p2);
    }
}
