//! # fsc-baselines — the comparator implementations of §4
//!
//! The paper compares its stencil flow against four hand-built references;
//! this crate provides each as an honest, independently written
//! implementation:
//!
//! * [`cray`] — the "Cray compiler" tier: hand-optimised native Rust
//!   kernels over flat slices, written so LLVM auto-vectorises the
//!   unit-stride inner loops. This models a mature vendor compiler's
//!   single-core output (§4.2 notes Cray "undertakes considerably more
//!   vectorisation" than the stencil flow).
//! * [`openmp`] — the hand-written OpenMP versions of Figures 3–4: the same
//!   native kernels work-shared over a rayon pool (the programmer *did*
//!   modify the code, unlike the automatic stencil path).
//! * [`openacc`] — the hand-ported OpenACC GPU baseline of Figure 5:
//!   executes the native kernel for correctness and charges the V100 model
//!   under unified (managed) memory, which is how the paper's OpenACC port
//!   behaved ("numerous data access stalls" from unified memory).
//! * [`mpi`] — the hand-parallelised MPI version of Figure 6, running real
//!   message passing on the `fsc-mpisim` rank runtime with a 2-D
//!   decomposition and per-iteration halo swaps.

pub mod cray;
pub mod mpi;
pub mod openacc;
pub mod openmp;
