//! The "Cray compiler" tier: hand-optimised native kernels.
//!
//! Flat-slice arithmetic with precomputed neighbour offsets and unit-stride
//! inner loops over contiguous rows — the code shape a mature vectorising
//! Fortran compiler produces. This is the fastest CPU comparator, matching
//! the paper's finding that the Cray compiler beats both Flang and the
//! stencil flow on a single core.

use fsc_workloads::grid::Grid3;
use fsc_workloads::pw_advection;

/// One Gauss–Seidel sweep (interior of `un` from `u`), vectorisable form.
pub fn gs_sweep(u: &Grid3, un: &mut Grid3) {
    let n = u.n;
    let e = u.e;
    let sx = 1usize;
    let sy = e;
    let sz = e * e;
    let inv6 = 1.0 / 6.0;
    let src = &u.data;
    for k in 1..=n {
        for j in 1..=n {
            let row = j * sy + k * sz;
            let dst_row = &mut un.data[row + 1..row + 1 + n];
            // Unit-stride over i: every operand is a contiguous slice.
            for (i, d) in dst_row.iter_mut().enumerate() {
                let c = row + 1 + i;
                *d = (src[c - sx]
                    + src[c + sx]
                    + src[c - sy]
                    + src[c + sy]
                    + src[c - sz]
                    + src[c + sz])
                    * inv6;
            }
        }
    }
}

/// The full Gauss–Seidel benchmark on this tier.
pub fn gs_run(n: usize, iters: usize) -> Grid3 {
    let mut u = Grid3::new(n);
    u.init_analytic();
    let mut un = Grid3::new(n);
    for _ in 0..iters {
        gs_sweep(&u, &mut un);
        copy_interior(&un, &mut u);
    }
    u
}

/// Interior copy (the double-buffer swap loop).
pub fn copy_interior(src: &Grid3, dst: &mut Grid3) {
    let n = src.n;
    let e = src.e;
    for k in 1..=n {
        for j in 1..=n {
            let row = j * e + k * e * e;
            dst.data[row + 1..row + 1 + n].copy_from_slice(&src.data[row + 1..row + 1 + n]);
        }
    }
}

/// The PW advection source terms, vectorisable form.
pub fn pw_run(u: &Grid3, v: &Grid3, w: &Grid3) -> (Grid3, Grid3, Grid3) {
    let n = u.n;
    let e = u.e;
    let (sx, sy, sz) = (1usize, e, e * e);
    let (tcx, tcy) = (pw_advection::TCX, pw_advection::TCY);
    let (tzc1, tzc2) = (pw_advection::TZC1, pw_advection::TZC2);
    let mut su = Grid3::new(n);
    let mut sv = Grid3::new(n);
    let mut sw = Grid3::new(n);
    let (ud, vd, wd) = (&u.data, &v.data, &w.data);
    for k in 1..=n {
        for j in 1..=n {
            let row = j * sy + k * sz;
            for i in 1..=n {
                let c = row + i;
                let su_v = tcx
                    * (ud[c - sx] * (ud[c] + ud[c - sx]) - ud[c + sx] * (ud[c] + ud[c + sx]))
                    + tcy * (vd[c] * (ud[c - sy] + ud[c]) - vd[c + sy] * (ud[c] + ud[c + sy]))
                    + tzc1 * wd[c] * (ud[c - sz] + ud[c])
                    - tzc2 * wd[c + sz] * (ud[c] + ud[c + sz]);
                let sv_v = tcx * (ud[c] * (vd[c - sx] + vd[c]) - ud[c + sx] * (vd[c] + vd[c + sx]))
                    + tcy * (vd[c - sy] * (vd[c] + vd[c - sy]) - vd[c + sy] * (vd[c] + vd[c + sy]))
                    + tzc1 * wd[c] * (vd[c - sz] + vd[c])
                    - tzc2 * wd[c + sz] * (vd[c] + vd[c + sz]);
                let sw_v = tcx * (ud[c] * (wd[c - sx] + wd[c]) - ud[c + sx] * (wd[c] + wd[c + sx]))
                    + tcy * (vd[c] * (wd[c - sy] + wd[c]) - vd[c + sy] * (wd[c] + wd[c + sy]))
                    + tzc1 * wd[c - sz] * (wd[c] + wd[c - sz])
                    - tzc2 * wd[c + sz] * (wd[c] + wd[c + sz]);
                su.data[c] = su_v;
                sv.data[c] = sv_v;
                sw.data[c] = sw_v;
            }
        }
    }
    (su, sv, sw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_workloads::gauss_seidel;
    use fsc_workloads::verify::assert_fields_match;

    #[test]
    fn gs_matches_reference() {
        let fast = gs_run(8, 4);
        let slow = gauss_seidel::reference(8, 4);
        assert_fields_match(&fast.data, &slow.data, 1e-13, "cray gs vs reference");
    }

    #[test]
    fn pw_matches_reference() {
        let (u, v, w) = pw_advection::initial_fields(6);
        let (su1, sv1, sw1) = pw_run(&u, &v, &w);
        let (su2, sv2, sw2) = pw_advection::reference(&u, &v, &w);
        assert_fields_match(&su1.data, &su2.data, 1e-13, "su");
        assert_fields_match(&sv1.data, &sv2.data, 1e-13, "sv");
        assert_fields_match(&sw1.data, &sw2.data, 1e-13, "sw");
    }

    #[test]
    fn copy_interior_leaves_halo() {
        let mut a = Grid3::new(4);
        a.init_analytic();
        let mut b = Grid3::new(4);
        copy_interior(&a, &mut b);
        assert_eq!(b.at(2, 2, 2), a.at(2, 2, 2));
        assert_eq!(b.at(0, 0, 0), 0.0, "halo untouched");
    }
}
