//! The hand-parallelised MPI baseline of Figure 6: Gauss–Seidel with a
//! rank decomposition and per-iteration halo swaps, written the way an HPC
//! programmer ports the serial code by hand.
//!
//! Runs with *real* message passing on the [`fsc_mpisim::runtime`] rank
//! runtime (used for correctness validation at small scale), plus an
//! analytic scaling estimator that combines measured per-cell compute speed
//! with the Slingshot cost model for the node counts of Figure 6 that this
//! machine cannot host.

use fsc_mpisim::fault::{FaultPlan, FaultStats};
use fsc_mpisim::resilient::{run_resilient, ResilientConfig, ResilientCtx};
use fsc_mpisim::runtime::{run_ranks, RankCtx};
use fsc_mpisim::{CostModel, MpiSimError, ProcessGrid};
use fsc_workloads::grid::{init_value, Grid3};

/// Run hand-MPI Gauss–Seidel over `ranks` ranks (1-D decomposition along
/// `k`), returning the assembled global field.
pub fn gs_run(n: usize, iters: usize, ranks: usize) -> Grid3 {
    assert!(
        ranks >= 1 && n.is_multiple_of(ranks),
        "n must divide by ranks"
    );
    let nk = n / ranks; // interior k-planes per rank
    let e = n + 2;
    let plane = e * e;

    let locals = run_ranks(ranks, move |ctx: &mut RankCtx| {
        gs_rank_body(ctx, n, nk, iters)
    })
    .expect("hand-MPI rank group failed");

    assemble_1d(locals, n, nk, e, plane)
}

/// Assemble rank-local slabs (1-D k decomposition) into the global field:
/// rank r owns global k-planes [1 + r*nk, 1 + (r+1)*nk).
fn assemble_1d(locals: Vec<Vec<f64>>, n: usize, nk: usize, _e: usize, plane: usize) -> Grid3 {
    let mut u = Grid3::new(n);
    u.init_analytic();
    for (r, local) in locals.into_iter().enumerate() {
        for lk in 0..nk {
            let gk = 1 + r * nk + lk;
            let src = (lk + 1) * plane;
            let dst = gk * plane;
            u.data[dst..dst + plane].copy_from_slice(&local[src..src + plane]);
        }
    }
    u
}

/// Outcome of a resilient distributed run: the assembled field plus the
/// fault-injection / recovery attestation.
#[derive(Debug)]
pub struct ResilientGsRun {
    /// The assembled global field.
    pub grid: Grid3,
    /// Counters merged across all ranks.
    pub stats: FaultStats,
    /// Per-rank counters (rank order).
    pub per_rank: Vec<FaultStats>,
}

/// Run hand-MPI Gauss–Seidel on the **resilient** context: same math and
/// decomposition as [`gs_run`], but every halo message travels through the
/// sequenced/acked/checksummed protocol under the injected `plan`, ranks
/// checkpoint every `cfg.checkpoint_interval` iterations, and a planned
/// rank crash restores from checkpoint and replays. The final grid is
/// bit-identical to the fault-free run for any recoverable plan.
pub fn gs_run_resilient(
    n: usize,
    iters: usize,
    ranks: usize,
    plan: FaultPlan,
    cfg: ResilientConfig,
) -> Result<ResilientGsRun, MpiSimError> {
    if ranks < 1 || !n.is_multiple_of(ranks) {
        return Err(MpiSimError::InvalidConfig(format!(
            "n = {n} must divide by ranks = {ranks}"
        )));
    }
    if plan.crash.is_some() && cfg.checkpoint_interval == 0 {
        return Err(MpiSimError::InvalidConfig(
            "a crash plan requires a non-zero checkpoint interval".into(),
        ));
    }
    let nk = n / ranks;
    let e = n + 2;
    let plane = e * e;
    let results = run_resilient(ranks, plan, cfg, move |ctx| {
        gs_rank_body_resilient(ctx, n, nk, iters, cfg.checkpoint_interval)
    })?;
    let mut locals = Vec::with_capacity(ranks);
    let mut per_rank = Vec::with_capacity(ranks);
    let mut stats = FaultStats::default();
    for (local, s) in results {
        locals.push(local);
        stats.merge(&s);
        per_rank.push(s);
    }
    Ok(ResilientGsRun {
        grid: assemble_1d(locals, n, nk, e, plane),
        stats,
        per_rank,
    })
}

/// Per-rank body of the resilient run: identical arithmetic to
/// [`gs_rank_body`], with checkpoints at the top of every
/// `checkpoint_interval`-th iteration and crash/restore handling.
fn gs_rank_body_resilient(
    ctx: &mut ResilientCtx,
    n: usize,
    nk: usize,
    iters: usize,
    checkpoint_interval: usize,
) -> Result<Vec<f64>, MpiSimError> {
    let e = n + 2;
    let plane = e * e;
    let rank = ctx.rank();
    let size = ctx.size();
    let mut u = vec![0.0f64; (nk + 2) * plane];
    let mut un = vec![0.0f64; (nk + 2) * plane];
    let gk0 = rank * nk;
    for lk in 0..nk + 2 {
        let gk = gk0 + lk;
        for j in 0..e {
            for i in 0..e {
                u[lk * plane + j * e + i] = init_value(i, j, gk);
            }
        }
    }

    let inv6 = 1.0 / 6.0;
    let mut it = 0usize;
    while it < iters {
        if checkpoint_interval > 0 && it.is_multiple_of(checkpoint_interval) {
            ctx.save_checkpoint(it, std::slice::from_ref(&u));
        }
        if ctx.crash_pending(it) {
            let (restored_it, state) = ctx.crash_and_restore(it)?;
            it = restored_it;
            u = state.into_iter().next().expect("checkpointed grid");
            continue;
        }
        // Halo swap along k (identical tags to the raw body; the resilient
        // streams sequence repeated iterations on the same tag).
        if rank > 0 {
            ctx.send(rank - 1, 0, u[plane..2 * plane].to_vec());
        }
        if rank + 1 < size {
            ctx.send(rank + 1, 1, u[nk * plane..(nk + 1) * plane].to_vec());
        }
        if rank > 0 {
            let lower = ctx.recv(rank - 1, 1)?;
            u[..plane].copy_from_slice(&lower);
        }
        if rank + 1 < size {
            let upper = ctx.recv(rank + 1, 0)?;
            u[(nk + 1) * plane..].copy_from_slice(&upper);
        }
        for lk in 1..=nk {
            for j in 1..=n {
                for i in 1..=n {
                    let c = lk * plane + j * e + i;
                    un[c] =
                        (u[c - 1] + u[c + 1] + u[c - e] + u[c + e] + u[c - plane] + u[c + plane])
                            * inv6;
                }
            }
        }
        for lk in 1..=nk {
            for j in 1..=n {
                let row = lk * plane + j * e;
                u[row + 1..row + 1 + n].copy_from_slice(&un[row + 1..row + 1 + n]);
            }
        }
        ctx.barrier()?;
        it += 1;
    }
    Ok(u)
}

/// Per-rank body: local slab of `nk` interior planes with one halo plane on
/// each side, initialised to the analytic field, iterated with halo swaps.
fn gs_rank_body(ctx: &mut RankCtx, n: usize, nk: usize, iters: usize) -> Vec<f64> {
    let e = n + 2;
    let plane = e * e;
    let rank = ctx.rank;
    let size = ctx.size;
    // Local storage: nk + 2 planes of e² cells. Local plane lk corresponds
    // to global k = rank*nk + lk (lk = 0 is the halo/boundary plane).
    let mut u = vec![0.0f64; (nk + 2) * plane];
    let mut un = vec![0.0f64; (nk + 2) * plane];
    let gk0 = rank * nk;
    for lk in 0..nk + 2 {
        let gk = gk0 + lk;
        for j in 0..e {
            for i in 0..e {
                u[lk * plane + j * e + i] = init_value(i, j, gk);
            }
        }
    }

    let inv6 = 1.0 / 6.0;
    for _ in 0..iters {
        // Halo swap along k: send boundary interior planes to neighbours.
        if rank > 0 {
            ctx.send(rank - 1, 0, u[plane..2 * plane].to_vec());
        }
        if rank + 1 < size {
            ctx.send(rank + 1, 1, u[nk * plane..(nk + 1) * plane].to_vec());
        }
        if rank > 0 {
            let lower = ctx.recv(rank - 1, 1);
            u[..plane].copy_from_slice(&lower);
        }
        if rank + 1 < size {
            let upper = ctx.recv(rank + 1, 0);
            u[(nk + 1) * plane..].copy_from_slice(&upper);
        }
        // Local sweep (interior i,j; all local interior k planes).
        for lk in 1..=nk {
            for j in 1..=n {
                for i in 1..=n {
                    let c = lk * plane + j * e + i;
                    un[c] =
                        (u[c - 1] + u[c + 1] + u[c - e] + u[c + e] + u[c - plane] + u[c + plane])
                            * inv6;
                }
            }
        }
        // Copy interior back.
        for lk in 1..=nk {
            for j in 1..=n {
                let row = lk * plane + j * e;
                u[row + 1..row + 1 + n].copy_from_slice(&un[row + 1..row + 1 + n]);
            }
        }
        ctx.barrier();
    }
    u
}

/// Run hand-MPI Gauss–Seidel with the paper's **2-D decomposition** ("we
/// decompose the 3D space into two dimensions", §4.4): a `pj × pk` process
/// grid over the j and k dimensions, halo swaps with up to four
/// neighbours per iteration, real message passing.
pub fn gs_run_2d(n: usize, iters: usize, pj: usize, pk: usize) -> Grid3 {
    assert!(pj >= 1 && pk >= 1 && n.is_multiple_of(pj) && n.is_multiple_of(pk));
    let (nj, nk) = (n / pj, n / pk);
    let e = n + 2;

    let locals = run_ranks(pj * pk, move |ctx: &mut RankCtx| {
        gs_rank_body_2d(ctx, n, nj, nk, pj, pk, iters)
    })
    .expect("hand-MPI rank group failed");

    // Assemble the global interior.
    let mut u = Grid3::new(n);
    u.init_analytic();
    let lj = nj + 2;
    for (r, local) in locals.into_iter().enumerate() {
        let (rj, rk) = (r % pj, r / pj);
        for dk in 0..nk {
            for dj in 0..nj {
                let gj = 1 + rj * nj + dj;
                let gk = 1 + rk * nk + dk;
                let src = (dj + 1) * e + (dk + 1) * e * lj;
                let dst = gj * e + gk * e * e;
                u.data[dst + 1..dst + 1 + n].copy_from_slice(&local[src + 1..src + 1 + n]);
            }
        }
    }
    u
}

/// Per-rank body for the 2-D decomposition. Local layout: full `i` extent
/// (`e = n+2`), `nj+2` j-rows, `nk+2` k-planes.
#[allow(clippy::too_many_arguments)]
fn gs_rank_body_2d(
    ctx: &mut RankCtx,
    n: usize,
    nj: usize,
    nk: usize,
    pj: usize,
    pk: usize,
    iters: usize,
) -> Vec<f64> {
    let e = n + 2;
    let lj = nj + 2;
    let row = e;
    let plane = e * lj;
    let rank = ctx.rank;
    let (rj, rk) = (rank % pj, rank / pj);
    let (gj0, gk0) = (rj * nj, rk * nk);

    let mut u = vec![0.0f64; plane * (nk + 2)];
    let mut un = vec![0.0f64; plane * (nk + 2)];
    let idx = |i: usize, dj: usize, dk: usize| i + dj * row + dk * plane;
    for dk in 0..nk + 2 {
        for dj in 0..nj + 2 {
            for i in 0..e {
                u[idx(i, dj, dk)] = init_value(i, gj0 + dj, gk0 + dk);
            }
        }
    }

    // Neighbour ranks (±j = ±1 in rank space, ±k = ±pj).
    let nbr = |dj: i64, dk: i64| -> Option<usize> {
        let tj = rj as i64 + dj;
        let tk = rk as i64 + dk;
        (tj >= 0 && tj < pj as i64 && tk >= 0 && tk < pk as i64)
            .then_some((tk * pj as i64 + tj) as usize)
    };

    let inv6 = 1.0 / 6.0;
    for _ in 0..iters {
        // j-direction halo swap: (i, k-interior) faces.
        let gather_j = |u: &[f64], dj: usize| -> Vec<f64> {
            let mut out = Vec::with_capacity(e * nk);
            for dk in 1..=nk {
                out.extend_from_slice(&u[idx(0, dj, dk)..idx(0, dj, dk) + e]);
            }
            out
        };
        let scatter_j = |u: &mut Vec<f64>, dj: usize, data: &[f64]| {
            for dk in 1..=nk {
                let base = idx(0, dj, dk);
                u[base..base + e].copy_from_slice(&data[(dk - 1) * e..dk * e]);
            }
        };
        if let Some(p) = nbr(-1, 0) {
            ctx.send(p, 10, gather_j(&u, 1));
        }
        if let Some(p) = nbr(1, 0) {
            ctx.send(p, 11, gather_j(&u, nj));
        }
        if let Some(p) = nbr(-1, 0) {
            let d = ctx.recv(p, 11);
            scatter_j(&mut u, 0, &d);
        }
        if let Some(p) = nbr(1, 0) {
            let d = ctx.recv(p, 10);
            scatter_j(&mut u, nj + 1, &d);
        }
        // k-direction halo swap: whole local planes.
        if let Some(p) = nbr(0, -1) {
            ctx.send(p, 20, u[plane..2 * plane].to_vec());
        }
        if let Some(p) = nbr(0, 1) {
            ctx.send(p, 21, u[nk * plane..(nk + 1) * plane].to_vec());
        }
        if let Some(p) = nbr(0, -1) {
            let d = ctx.recv(p, 21);
            u[..plane].copy_from_slice(&d);
        }
        if let Some(p) = nbr(0, 1) {
            let d = ctx.recv(p, 20);
            u[(nk + 1) * plane..].copy_from_slice(&d);
        }
        // Sweep + copy-back over the local interior.
        for dk in 1..=nk {
            for dj in 1..=nj {
                for i in 1..=n {
                    let c = idx(i, dj, dk);
                    un[c] = (u[c - 1]
                        + u[c + 1]
                        + u[c - row]
                        + u[c + row]
                        + u[c - plane]
                        + u[c + plane])
                        * inv6;
                }
            }
        }
        for dk in 1..=nk {
            for dj in 1..=nj {
                let base = idx(1, dj, dk);
                u[base..base + n].copy_from_slice(&un[base..base + n]);
            }
        }
        ctx.barrier();
    }
    u
}

/// Analytic strong-scaling estimate for Figure 6: seconds per iteration for
/// a global `n³` grid over `grid` ranks, given a measured per-cell compute
/// time (seconds) for the implementation being scaled.
pub fn modeled_iteration_time(
    n: u64,
    grid: &ProcessGrid,
    cost: &CostModel,
    per_cell_seconds: f64,
) -> f64 {
    let ranks = grid.size() as u64;
    let local_cells = n.pow(3) / ranks;
    let compute = local_cells as f64 * per_cell_seconds;
    // Halo message size: the slab face exchanged along each decomposed dim.
    // For a d-dim decomposition of the cube the face is n² / (ranks along
    // the *other* decomposed dims).
    let mut neighbors = 0usize;
    let mut max_face = 0u64;
    for (d, &s) in grid.shape.iter().enumerate() {
        if s > 1 {
            neighbors += 2;
            let other: i64 = grid
                .shape
                .iter()
                .enumerate()
                .filter(|&(dd, _)| dd != d)
                .map(|(_, &x)| x)
                .product();
            let face = n * n / other.max(1) as u64;
            max_face = max_face.max(face);
        }
    }
    let comm = cost.halo_exchange_time(max_face * 8, neighbors, cost.offnode_fraction(grid));
    compute + comm
}

/// Analytic per-iteration time of the same decomposition on the resilient
/// transport with **zero** injected faults: every halo message additionally
/// carries a sequence/checksum header (negligible) and is acknowledged, so
/// the steady-state overhead is one ack per halo message per iteration.
/// Checkpoints are local memory copies and amortise to noise at realistic
/// intervals, so they are not charged here.
pub fn modeled_resilient_iteration_time(
    n: u64,
    grid: &ProcessGrid,
    cost: &CostModel,
    per_cell_seconds: f64,
) -> f64 {
    let plain = modeled_iteration_time(n, grid, cost, per_cell_seconds);
    let neighbors = grid.shape.iter().filter(|&&s| s > 1).count() * 2;
    let stats = FaultStats {
        acks_sent: neighbors as u64,
        ..Default::default()
    };
    plain + cost.resilience_time(&stats, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_workloads::gauss_seidel;
    use fsc_workloads::verify::assert_fields_match;

    #[test]
    fn distributed_matches_serial_reference() {
        let dist = gs_run(8, 3, 4);
        let serial = gauss_seidel::reference(8, 3);
        assert_fields_match(&dist.data, &serial.data, 1e-13, "mpi gs vs serial");
    }

    #[test]
    fn single_rank_degenerates_to_serial() {
        let dist = gs_run(6, 2, 1);
        let serial = gauss_seidel::reference(6, 2);
        assert_fields_match(&dist.data, &serial.data, 1e-13, "1-rank gs");
    }

    #[test]
    fn two_ranks_match() {
        let dist = gs_run(8, 5, 2);
        let serial = gauss_seidel::reference(8, 5);
        assert_fields_match(&dist.data, &serial.data, 1e-13, "2-rank gs");
    }

    #[test]
    fn two_d_decomposition_matches_serial() {
        let dist = gs_run_2d(8, 3, 2, 2);
        let serial = gauss_seidel::reference(8, 3);
        assert_fields_match(&dist.data, &serial.data, 1e-13, "2d mpi gs");
    }

    #[test]
    fn asymmetric_two_d_grid_matches() {
        let dist = gs_run_2d(12, 2, 3, 2);
        let serial = gauss_seidel::reference(12, 2);
        assert_fields_match(&dist.data, &serial.data, 1e-13, "3x2 mpi gs");
    }

    #[test]
    fn resilient_zero_faults_matches_raw_and_serial() {
        let out = gs_run_resilient(8, 4, 4, FaultPlan::none(7), ResilientConfig::default())
            .expect("fault-free resilient run");
        let raw = gs_run(8, 4, 4);
        let serial = gauss_seidel::reference(8, 4);
        assert_fields_match(&out.grid.data, &raw.data, 0.0, "resilient vs raw (bitwise)");
        assert_fields_match(&out.grid.data, &serial.data, 1e-13, "resilient vs serial");
        assert_eq!(out.stats.injected(), 0, "no faults were planned");
        assert_eq!(out.stats.restores, 0);
        assert!(out.stats.data_msgs > 0, "halo traffic must be counted");
        assert_eq!(out.per_rank.len(), 4);
    }

    #[test]
    fn resilient_survives_drops_dups_and_a_crash_bit_identically() {
        let mut plan = FaultPlan::lossy(42, 0.08);
        plan.corrupt_prob = 0.02;
        plan.delay_prob = 0.05;
        plan.max_delay_ms = 3;
        plan = plan.with_crash(2, 5);
        let cfg = ResilientConfig {
            checkpoint_interval: 3,
            ..Default::default()
        };
        let out = gs_run_resilient(8, 8, 4, plan, cfg).expect("resilient run under faults");
        let clean = gs_run(8, 8, 4);
        assert_fields_match(
            &out.grid.data,
            &clean.data,
            0.0,
            "faulty run must be bit-identical to fault-free",
        );
        assert!(out.stats.injected() > 0, "plan must actually inject faults");
        assert!(out.stats.retries > 0, "drops must force retransmits");
        assert_eq!(out.stats.injected_crashes, 1, "exactly one rank crash");
        assert_eq!(out.stats.restores, 1, "crash must restore from checkpoint");
        assert!(
            out.stats.replayed_iterations > 0,
            "crash at 5 with checkpoints every 3 must replay iterations"
        );
        assert_eq!(out.per_rank[2].restores, 1, "rank 2 is the crash victim");
    }

    #[test]
    fn resilient_rejects_crash_without_checkpoints() {
        let plan = FaultPlan::none(1).with_crash(0, 2);
        let cfg = ResilientConfig {
            checkpoint_interval: 0,
            ..Default::default()
        };
        let err = gs_run_resilient(4, 4, 2, plan, cfg).unwrap_err();
        assert!(matches!(err, MpiSimError::InvalidConfig(_)));
    }

    #[test]
    fn resilient_rejects_indivisible_decomposition() {
        let err =
            gs_run_resilient(7, 2, 3, FaultPlan::none(0), ResilientConfig::default()).unwrap_err();
        assert!(matches!(err, MpiSimError::InvalidConfig(_)));
    }

    #[test]
    fn modeled_time_shrinks_with_ranks_then_flattens() {
        let cost = CostModel::default();
        let per_cell = 1e-9;
        let t128 = modeled_iteration_time(2048, &ProcessGrid::new(vec![128]), &cost, per_cell);
        let t1024 = modeled_iteration_time(2048, &ProcessGrid::new(vec![128, 8]), &cost, per_cell);
        let t8192 = modeled_iteration_time(2048, &ProcessGrid::new(vec![128, 64]), &cost, per_cell);
        assert!(t1024 < t128, "more ranks must be faster: {t1024} vs {t128}");
        assert!(t8192 < t1024);
        // But not perfectly: efficiency decays.
        let speedup = t128 / t8192;
        assert!(speedup < 64.0, "communication must erode perfect scaling");
        assert!(speedup > 8.0, "but scaling should still be substantial");
    }
}
