//! The hand-parallelised MPI baseline of Figure 6: Gauss–Seidel with a
//! rank decomposition and per-iteration halo swaps, written the way an HPC
//! programmer ports the serial code by hand.
//!
//! Runs with *real* message passing on the [`fsc_mpisim::runtime`] rank
//! runtime (used for correctness validation at small scale), plus an
//! analytic scaling estimator that combines measured per-cell compute speed
//! with the Slingshot cost model for the node counts of Figure 6 that this
//! machine cannot host.

use fsc_mpisim::runtime::{run_ranks, RankCtx};
use fsc_mpisim::{CostModel, ProcessGrid};
use fsc_workloads::grid::{init_value, Grid3};

/// Run hand-MPI Gauss–Seidel over `ranks` ranks (1-D decomposition along
/// `k`), returning the assembled global field.
pub fn gs_run(n: usize, iters: usize, ranks: usize) -> Grid3 {
    assert!(
        ranks >= 1 && n.is_multiple_of(ranks),
        "n must divide by ranks"
    );
    let nk = n / ranks; // interior k-planes per rank
    let e = n + 2;
    let plane = e * e;

    let locals = run_ranks(ranks, move |ctx: &mut RankCtx| {
        gs_rank_body(ctx, n, nk, iters)
    });

    // Assemble: rank r owns global k-planes [1 + r*nk, 1 + (r+1)*nk).
    let mut u = Grid3::new(n);
    u.init_analytic();
    for (r, local) in locals.into_iter().enumerate() {
        for lk in 0..nk {
            let gk = 1 + r * nk + lk;
            let src = (lk + 1) * plane;
            let dst = gk * plane;
            u.data[dst..dst + plane].copy_from_slice(&local[src..src + plane]);
        }
    }
    u
}

/// Per-rank body: local slab of `nk` interior planes with one halo plane on
/// each side, initialised to the analytic field, iterated with halo swaps.
fn gs_rank_body(ctx: &mut RankCtx, n: usize, nk: usize, iters: usize) -> Vec<f64> {
    let e = n + 2;
    let plane = e * e;
    let rank = ctx.rank;
    let size = ctx.size;
    // Local storage: nk + 2 planes of e² cells. Local plane lk corresponds
    // to global k = rank*nk + lk (lk = 0 is the halo/boundary plane).
    let mut u = vec![0.0f64; (nk + 2) * plane];
    let mut un = vec![0.0f64; (nk + 2) * plane];
    let gk0 = rank * nk;
    for lk in 0..nk + 2 {
        let gk = gk0 + lk;
        for j in 0..e {
            for i in 0..e {
                u[lk * plane + j * e + i] = init_value(i, j, gk);
            }
        }
    }

    let inv6 = 1.0 / 6.0;
    for _ in 0..iters {
        // Halo swap along k: send boundary interior planes to neighbours.
        if rank > 0 {
            ctx.send(rank - 1, 0, u[plane..2 * plane].to_vec());
        }
        if rank + 1 < size {
            ctx.send(rank + 1, 1, u[nk * plane..(nk + 1) * plane].to_vec());
        }
        if rank > 0 {
            let lower = ctx.recv(rank - 1, 1);
            u[..plane].copy_from_slice(&lower);
        }
        if rank + 1 < size {
            let upper = ctx.recv(rank + 1, 0);
            u[(nk + 1) * plane..].copy_from_slice(&upper);
        }
        // Local sweep (interior i,j; all local interior k planes).
        for lk in 1..=nk {
            for j in 1..=n {
                for i in 1..=n {
                    let c = lk * plane + j * e + i;
                    un[c] =
                        (u[c - 1] + u[c + 1] + u[c - e] + u[c + e] + u[c - plane] + u[c + plane])
                            * inv6;
                }
            }
        }
        // Copy interior back.
        for lk in 1..=nk {
            for j in 1..=n {
                let row = lk * plane + j * e;
                u[row + 1..row + 1 + n].copy_from_slice(&un[row + 1..row + 1 + n]);
            }
        }
        ctx.barrier();
    }
    u
}

/// Run hand-MPI Gauss–Seidel with the paper's **2-D decomposition** ("we
/// decompose the 3D space into two dimensions", §4.4): a `pj × pk` process
/// grid over the j and k dimensions, halo swaps with up to four
/// neighbours per iteration, real message passing.
pub fn gs_run_2d(n: usize, iters: usize, pj: usize, pk: usize) -> Grid3 {
    assert!(pj >= 1 && pk >= 1 && n.is_multiple_of(pj) && n.is_multiple_of(pk));
    let (nj, nk) = (n / pj, n / pk);
    let e = n + 2;

    let locals = run_ranks(pj * pk, move |ctx: &mut RankCtx| {
        gs_rank_body_2d(ctx, n, nj, nk, pj, pk, iters)
    });

    // Assemble the global interior.
    let mut u = Grid3::new(n);
    u.init_analytic();
    let lj = nj + 2;
    for (r, local) in locals.into_iter().enumerate() {
        let (rj, rk) = (r % pj, r / pj);
        for dk in 0..nk {
            for dj in 0..nj {
                let gj = 1 + rj * nj + dj;
                let gk = 1 + rk * nk + dk;
                let src = (dj + 1) * e + (dk + 1) * e * lj;
                let dst = gj * e + gk * e * e;
                u.data[dst + 1..dst + 1 + n].copy_from_slice(&local[src + 1..src + 1 + n]);
            }
        }
    }
    u
}

/// Per-rank body for the 2-D decomposition. Local layout: full `i` extent
/// (`e = n+2`), `nj+2` j-rows, `nk+2` k-planes.
#[allow(clippy::too_many_arguments)]
fn gs_rank_body_2d(
    ctx: &mut RankCtx,
    n: usize,
    nj: usize,
    nk: usize,
    pj: usize,
    pk: usize,
    iters: usize,
) -> Vec<f64> {
    let e = n + 2;
    let lj = nj + 2;
    let row = e;
    let plane = e * lj;
    let rank = ctx.rank;
    let (rj, rk) = (rank % pj, rank / pj);
    let (gj0, gk0) = (rj * nj, rk * nk);

    let mut u = vec![0.0f64; plane * (nk + 2)];
    let mut un = vec![0.0f64; plane * (nk + 2)];
    let idx = |i: usize, dj: usize, dk: usize| i + dj * row + dk * plane;
    for dk in 0..nk + 2 {
        for dj in 0..nj + 2 {
            for i in 0..e {
                u[idx(i, dj, dk)] = init_value(i, gj0 + dj, gk0 + dk);
            }
        }
    }

    // Neighbour ranks (±j = ±1 in rank space, ±k = ±pj).
    let nbr = |dj: i64, dk: i64| -> Option<usize> {
        let tj = rj as i64 + dj;
        let tk = rk as i64 + dk;
        (tj >= 0 && tj < pj as i64 && tk >= 0 && tk < pk as i64)
            .then_some((tk * pj as i64 + tj) as usize)
    };

    let inv6 = 1.0 / 6.0;
    for _ in 0..iters {
        // j-direction halo swap: (i, k-interior) faces.
        let gather_j = |u: &[f64], dj: usize| -> Vec<f64> {
            let mut out = Vec::with_capacity(e * nk);
            for dk in 1..=nk {
                out.extend_from_slice(&u[idx(0, dj, dk)..idx(0, dj, dk) + e]);
            }
            out
        };
        let scatter_j = |u: &mut Vec<f64>, dj: usize, data: &[f64]| {
            for dk in 1..=nk {
                let base = idx(0, dj, dk);
                u[base..base + e].copy_from_slice(&data[(dk - 1) * e..dk * e]);
            }
        };
        if let Some(p) = nbr(-1, 0) {
            ctx.send(p, 10, gather_j(&u, 1));
        }
        if let Some(p) = nbr(1, 0) {
            ctx.send(p, 11, gather_j(&u, nj));
        }
        if let Some(p) = nbr(-1, 0) {
            let d = ctx.recv(p, 11);
            scatter_j(&mut u, 0, &d);
        }
        if let Some(p) = nbr(1, 0) {
            let d = ctx.recv(p, 10);
            scatter_j(&mut u, nj + 1, &d);
        }
        // k-direction halo swap: whole local planes.
        if let Some(p) = nbr(0, -1) {
            ctx.send(p, 20, u[plane..2 * plane].to_vec());
        }
        if let Some(p) = nbr(0, 1) {
            ctx.send(p, 21, u[nk * plane..(nk + 1) * plane].to_vec());
        }
        if let Some(p) = nbr(0, -1) {
            let d = ctx.recv(p, 21);
            u[..plane].copy_from_slice(&d);
        }
        if let Some(p) = nbr(0, 1) {
            let d = ctx.recv(p, 20);
            u[(nk + 1) * plane..].copy_from_slice(&d);
        }
        // Sweep + copy-back over the local interior.
        for dk in 1..=nk {
            for dj in 1..=nj {
                for i in 1..=n {
                    let c = idx(i, dj, dk);
                    un[c] = (u[c - 1]
                        + u[c + 1]
                        + u[c - row]
                        + u[c + row]
                        + u[c - plane]
                        + u[c + plane])
                        * inv6;
                }
            }
        }
        for dk in 1..=nk {
            for dj in 1..=nj {
                let base = idx(1, dj, dk);
                u[base..base + n].copy_from_slice(&un[base..base + n]);
            }
        }
        ctx.barrier();
    }
    u
}

/// Analytic strong-scaling estimate for Figure 6: seconds per iteration for
/// a global `n³` grid over `grid` ranks, given a measured per-cell compute
/// time (seconds) for the implementation being scaled.
pub fn modeled_iteration_time(
    n: u64,
    grid: &ProcessGrid,
    cost: &CostModel,
    per_cell_seconds: f64,
) -> f64 {
    let ranks = grid.size() as u64;
    let local_cells = n.pow(3) / ranks;
    let compute = local_cells as f64 * per_cell_seconds;
    // Halo message size: the slab face exchanged along each decomposed dim.
    // For a d-dim decomposition of the cube the face is n² / (ranks along
    // the *other* decomposed dims).
    let mut neighbors = 0usize;
    let mut max_face = 0u64;
    for (d, &s) in grid.shape.iter().enumerate() {
        if s > 1 {
            neighbors += 2;
            let other: i64 = grid
                .shape
                .iter()
                .enumerate()
                .filter(|&(dd, _)| dd != d)
                .map(|(_, &x)| x)
                .product();
            let face = n * n / other.max(1) as u64;
            max_face = max_face.max(face);
        }
    }
    let comm = cost.halo_exchange_time(max_face * 8, neighbors, cost.offnode_fraction(grid));
    compute + comm
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_workloads::gauss_seidel;
    use fsc_workloads::verify::assert_fields_match;

    #[test]
    fn distributed_matches_serial_reference() {
        let dist = gs_run(8, 3, 4);
        let serial = gauss_seidel::reference(8, 3);
        assert_fields_match(&dist.data, &serial.data, 1e-13, "mpi gs vs serial");
    }

    #[test]
    fn single_rank_degenerates_to_serial() {
        let dist = gs_run(6, 2, 1);
        let serial = gauss_seidel::reference(6, 2);
        assert_fields_match(&dist.data, &serial.data, 1e-13, "1-rank gs");
    }

    #[test]
    fn two_ranks_match() {
        let dist = gs_run(8, 5, 2);
        let serial = gauss_seidel::reference(8, 5);
        assert_fields_match(&dist.data, &serial.data, 1e-13, "2-rank gs");
    }

    #[test]
    fn two_d_decomposition_matches_serial() {
        let dist = gs_run_2d(8, 3, 2, 2);
        let serial = gauss_seidel::reference(8, 3);
        assert_fields_match(&dist.data, &serial.data, 1e-13, "2d mpi gs");
    }

    #[test]
    fn asymmetric_two_d_grid_matches() {
        let dist = gs_run_2d(12, 2, 3, 2);
        let serial = gauss_seidel::reference(12, 2);
        assert_fields_match(&dist.data, &serial.data, 1e-13, "3x2 mpi gs");
    }

    #[test]
    fn modeled_time_shrinks_with_ranks_then_flattens() {
        let cost = CostModel::default();
        let per_cell = 1e-9;
        let t128 = modeled_iteration_time(2048, &ProcessGrid::new(vec![128]), &cost, per_cell);
        let t1024 = modeled_iteration_time(2048, &ProcessGrid::new(vec![128, 8]), &cost, per_cell);
        let t8192 = modeled_iteration_time(2048, &ProcessGrid::new(vec![128, 64]), &cost, per_cell);
        assert!(t1024 < t128, "more ranks must be faster: {t1024} vs {t128}");
        assert!(t8192 < t1024);
        // But not perfectly: efficiency decays.
        let speedup = t128 / t8192;
        assert!(speedup < 64.0, "communication must erode perfect scaling");
        assert!(speedup > 8.0, "but scaling should still be substantial");
    }
}
