//! The hand-ported OpenACC baseline of Figure 5.
//!
//! The paper's port used `!$acc` directives with the Nvidia compiler and
//! unified (managed) memory. Here the kernel executes through the native
//! CPU implementation for correctness while the V100 model charges time
//! under [`fsc_gpusim::Strategy::UnifiedManaged`] — resident data with
//! per-launch page-revalidation stalls, which is exactly the overhead the
//! paper profiled in its OpenACC runs.

use fsc_gpusim::{BufferUse, GpuSession, KernelLoad, Strategy, V100Model};
use fsc_workloads::grid::Grid3;
use fsc_workloads::{gauss_seidel, pw_advection};

use crate::cray;

/// Result of a modeled GPU run.
#[derive(Debug)]
pub struct AccRun {
    /// Final field(s) — correctness artefact.
    pub fields: Vec<Grid3>,
    /// Modeled GPU seconds.
    pub modeled_seconds: f64,
    /// Cells processed per kernel launch.
    pub cells_per_launch: u64,
    /// Launches performed.
    pub launches: u64,
}

impl AccRun {
    /// Throughput in million cells per second.
    pub fn mcells_per_sec(&self) -> f64 {
        (self.cells_per_launch * self.launches) as f64 / self.modeled_seconds / 1e6
    }
}

fn grid_bytes(n: usize) -> u64 {
    ((n + 2) as u64).pow(3) * 8
}

/// Gauss–Seidel under OpenACC/managed memory.
pub fn gs_run(n: usize, iters: usize, model: V100Model) -> AccRun {
    let mut session = GpuSession::new(model);
    let cells = (n as u64).pow(3);
    let load = KernelLoad {
        cells,
        flops: cells * gauss_seidel::FLOPS_PER_CELL,
        bytes_read: cells * 7 * 8,
        bytes_written: cells * 8,
    };
    let copy_load = KernelLoad {
        cells,
        flops: 0,
        bytes_read: cells * 8,
        bytes_written: cells * 8,
    };
    let bufs = [
        BufferUse {
            id: 0,
            bytes: grid_bytes(n),
            read: true,
            written: true,
        },
        BufferUse {
            id: 1,
            bytes: grid_bytes(n),
            read: true,
            written: true,
        },
    ];
    let mut u = Grid3::new(n);
    u.init_analytic();
    let mut un = Grid3::new(n);
    // The `!$acc parallel loop` tile chosen by the Nvidia compiler.
    let block = [128, 1, 1];
    for _ in 0..iters {
        cray::gs_sweep(&u, &mut un);
        session.launch(load, block, Strategy::UnifiedManaged, &bufs);
        cray::copy_interior(&un, &mut u);
        session.launch(copy_load, block, Strategy::UnifiedManaged, &bufs);
    }
    session.host_access(0, grid_bytes(n));
    AccRun {
        fields: vec![u],
        modeled_seconds: session.elapsed(),
        cells_per_launch: cells,
        launches: iters as u64 * 2,
    }
}

/// PW advection under OpenACC/managed memory; `launches` repeats the kernel
/// (the benchmark is a kernel called repeatedly from a larger code).
pub fn pw_run(n: usize, launches: usize, model: V100Model) -> AccRun {
    let mut session = GpuSession::new(model);
    let cells = (n as u64).pow(3);
    let load = KernelLoad {
        cells,
        flops: cells * pw_advection::FLOPS_PER_CELL,
        bytes_read: cells * 21 * 8,
        bytes_written: cells * 3 * 8,
    };
    let bufs: Vec<BufferUse> = (0..6)
        .map(|id| BufferUse {
            id,
            bytes: grid_bytes(n),
            read: id < 3,
            written: id >= 3,
        })
        .collect();
    let (u, v, w) = pw_advection::initial_fields(n);
    let mut out = (Grid3::new(n), Grid3::new(n), Grid3::new(n));
    let block = [128, 1, 1];
    for _ in 0..launches {
        out = cray::pw_run(&u, &v, &w);
        session.launch(load, block, Strategy::UnifiedManaged, &bufs);
    }
    for id in 3..6 {
        session.host_access(id, grid_bytes(n));
    }
    AccRun {
        fields: vec![out.0, out.1, out.2],
        modeled_seconds: session.elapsed(),
        cells_per_launch: cells,
        launches: launches as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_workloads::verify::assert_fields_match;

    #[test]
    fn gs_correctness_preserved() {
        let run = gs_run(6, 3, V100Model::default());
        let reference = gauss_seidel::reference(6, 3);
        assert_fields_match(&run.fields[0].data, &reference.data, 1e-13, "acc gs");
        assert!(run.modeled_seconds > 0.0);
        assert!(run.mcells_per_sec() > 0.0);
    }

    #[test]
    fn steady_state_cheaper_than_first_launch() {
        // Large enough that the first-touch migration dominates a single
        // iteration; once resident, iterations only pay revalidation stalls.
        let one = gs_run(64, 1, V100Model::default()).modeled_seconds;
        let ten = gs_run(64, 10, V100Model::default()).modeled_seconds;
        assert!(ten < 6.0 * one, "ten={ten} one={one}");
    }

    #[test]
    fn pw_run_reports_launches() {
        let run = pw_run(6, 4, V100Model::default());
        assert_eq!(run.launches, 4);
        assert_eq!(run.cells_per_launch, 216);
        let (u, v, w) = pw_advection::initial_fields(6);
        let (su, _, _) = pw_advection::reference(&u, &v, &w);
        assert_fields_match(&run.fields[0].data, &su.data, 1e-13, "acc pw su");
    }
}
