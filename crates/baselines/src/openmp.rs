//! Hand-written OpenMP baselines (Figures 3–4): the native kernels of
//! [`crate::cray`], work-shared over the slowest (`k`) dimension on a rayon
//! pool — i.e. the code a programmer writes after adding
//! `!$omp parallel do` to the Fortran loops and compiling with a mature
//! compiler.

use rayon::prelude::*;

use fsc_workloads::grid::Grid3;
use fsc_workloads::pw_advection;

/// Build a pool with `threads` workers (0 = rayon default).
pub fn pool(threads: usize) -> rayon::ThreadPool {
    let mut b = rayon::ThreadPoolBuilder::new();
    if threads > 0 {
        b = b.num_threads(threads);
    }
    b.build().expect("thread pool")
}

/// One parallel Gauss–Seidel sweep.
pub fn gs_sweep(u: &Grid3, un: &mut Grid3, tp: &rayon::ThreadPool) {
    let n = u.n;
    let e = u.e;
    let (sx, sy, sz) = (1usize, e, e * e);
    let inv6 = 1.0 / 6.0;
    let src = &u.data;
    tp.install(|| {
        // Each k-plane is a contiguous chunk of size e².
        un.data
            .par_chunks_mut(sz)
            .enumerate()
            .filter(|(k, _)| (1..=n).contains(k))
            .for_each(|(k, plane)| {
                for j in 1..=n {
                    let row = j * sy;
                    let global_row = row + k * sz;
                    for i in 1..=n {
                        let c = global_row + i;
                        plane[row + i] = (src[c - sx]
                            + src[c + sx]
                            + src[c - sy]
                            + src[c + sy]
                            + src[c - sz]
                            + src[c + sz])
                            * inv6;
                    }
                }
            });
    });
}

/// Parallel interior copy.
pub fn copy_interior(src: &Grid3, dst: &mut Grid3, tp: &rayon::ThreadPool) {
    let n = src.n;
    let e = src.e;
    let sz = e * e;
    let s = &src.data;
    tp.install(|| {
        dst.data
            .par_chunks_mut(sz)
            .enumerate()
            .filter(|(k, _)| (1..=n).contains(k))
            .for_each(|(k, plane)| {
                for j in 1..=n {
                    let row = j * e;
                    plane[row + 1..row + 1 + n]
                        .copy_from_slice(&s[k * sz + row + 1..k * sz + row + 1 + n]);
                }
            });
    });
}

/// The full hand-OpenMP Gauss–Seidel benchmark.
pub fn gs_run(n: usize, iters: usize, threads: usize) -> Grid3 {
    let tp = pool(threads);
    let mut u = Grid3::new(n);
    u.init_analytic();
    let mut un = Grid3::new(n);
    for _ in 0..iters {
        gs_sweep(&u, &mut un, &tp);
        copy_interior(&un, &mut u, &tp);
    }
    u
}

/// Parallel PW advection.
pub fn pw_run(u: &Grid3, v: &Grid3, w: &Grid3, tp: &rayon::ThreadPool) -> (Grid3, Grid3, Grid3) {
    let n = u.n;
    let e = u.e;
    let (sx, sy, sz) = (1usize, e, e * e);
    let (tcx, tcy) = (pw_advection::TCX, pw_advection::TCY);
    let (tzc1, tzc2) = (pw_advection::TZC1, pw_advection::TZC2);
    let mut su = Grid3::new(n);
    let mut sv = Grid3::new(n);
    let mut sw = Grid3::new(n);
    let (ud, vd, wd) = (&u.data, &v.data, &w.data);
    tp.install(|| {
        su.data
            .par_chunks_mut(sz)
            .zip(sv.data.par_chunks_mut(sz))
            .zip(sw.data.par_chunks_mut(sz))
            .enumerate()
            .filter(|(k, _)| (1..=n).contains(k))
            .for_each(|(k, ((su_p, sv_p), sw_p))| {
                for j in 1..=n {
                    let row = j * sy;
                    for i in 1..=n {
                        let c = k * sz + row + i;
                        su_p[row + i] = tcx
                            * (ud[c - sx] * (ud[c] + ud[c - sx])
                                - ud[c + sx] * (ud[c] + ud[c + sx]))
                            + tcy
                                * (vd[c] * (ud[c - sy] + ud[c])
                                    - vd[c + sy] * (ud[c] + ud[c + sy]))
                            + tzc1 * wd[c] * (ud[c - sz] + ud[c])
                            - tzc2 * wd[c + sz] * (ud[c] + ud[c + sz]);
                        sv_p[row + i] = tcx
                            * (ud[c] * (vd[c - sx] + vd[c]) - ud[c + sx] * (vd[c] + vd[c + sx]))
                            + tcy
                                * (vd[c - sy] * (vd[c] + vd[c - sy])
                                    - vd[c + sy] * (vd[c] + vd[c + sy]))
                            + tzc1 * wd[c] * (vd[c - sz] + vd[c])
                            - tzc2 * wd[c + sz] * (vd[c] + vd[c + sz]);
                        sw_p[row + i] = tcx
                            * (ud[c] * (wd[c - sx] + wd[c]) - ud[c + sx] * (wd[c] + wd[c + sx]))
                            + tcy
                                * (vd[c] * (wd[c - sy] + wd[c])
                                    - vd[c + sy] * (wd[c] + wd[c + sy]))
                            + tzc1 * wd[c - sz] * (wd[c] + wd[c - sz])
                            - tzc2 * wd[c + sz] * (wd[c] + wd[c + sz]);
                    }
                }
            });
    });
    (su, sv, sw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_workloads::gauss_seidel;
    use fsc_workloads::verify::assert_fields_match;

    #[test]
    fn gs_parallel_matches_reference() {
        let par = gs_run(8, 3, 4);
        let reference = gauss_seidel::reference(8, 3);
        assert_fields_match(&par.data, &reference.data, 1e-13, "omp gs");
    }

    #[test]
    fn pw_parallel_matches_reference() {
        let (u, v, w) = pw_advection::initial_fields(6);
        let tp = pool(3);
        let (su1, sv1, sw1) = pw_run(&u, &v, &w, &tp);
        let (su2, sv2, sw2) = pw_advection::reference(&u, &v, &w);
        assert_fields_match(&su1.data, &su2.data, 1e-13, "su");
        assert_fields_match(&sv1.data, &sv2.data, 1e-13, "sv");
        assert_fields_match(&sw1.data, &sw2.data, 1e-13, "sw");
    }

    #[test]
    fn single_thread_pool_works() {
        let par = gs_run(4, 2, 1);
        let reference = gauss_seidel::reference(4, 2);
        assert_fields_match(&par.data, &reference.data, 1e-13, "1 thread");
    }
}
