//! The `math` dialect: transcendental and power functions.
//!
//! Fortran intrinsics (`sqrt`, `exp`, `abs`, ...) lower here, and the GPU
//! pipeline of the paper's Listing 4 runs `test-math-algebraic-simplification`
//! and `test-expand-math` over these ops.

use fsc_ir::{OpBuilder, ValueId};

/// Unary math ops supported by the frontend and executors.
pub const UNARY_OPS: &[&str] = &[
    "math.sqrt",
    "math.absf",
    "math.exp",
    "math.log",
    "math.sin",
    "math.cos",
    "math.tanh",
];

/// Binary math ops.
pub const BINARY_OPS: &[&str] = &["math.powf", "math.atan2", "math.copysign"];

/// Build a unary math op; result type matches the operand.
pub fn unary(b: &mut OpBuilder, name: &str, value: ValueId) -> ValueId {
    debug_assert!(UNARY_OPS.contains(&name), "unknown math unary op {name}");
    let ty = b.module_ref().value_type(value).clone();
    b.op1(name, vec![value], ty, vec![]).1
}

/// Build a binary math op; result type matches the lhs.
pub fn binary(b: &mut OpBuilder, name: &str, lhs: ValueId, rhs: ValueId) -> ValueId {
    debug_assert!(BINARY_OPS.contains(&name), "unknown math binary op {name}");
    let ty = b.module_ref().value_type(lhs).clone();
    b.op1(name, vec![lhs, rhs], ty, vec![]).1
}

/// `math.sqrt`.
pub fn sqrt(b: &mut OpBuilder, value: ValueId) -> ValueId {
    unary(b, "math.sqrt", value)
}

/// `math.powf`.
pub fn powf(b: &mut OpBuilder, base: ValueId, exp: ValueId) -> ValueId {
    binary(b, "math.powf", base, exp)
}

/// Map a Fortran intrinsic name to the math-dialect op implementing it, if
/// one exists.
pub fn intrinsic_to_op(intrinsic: &str) -> Option<&'static str> {
    Some(match intrinsic.to_ascii_lowercase().as_str() {
        "sqrt" => "math.sqrt",
        "abs" => "math.absf",
        "exp" => "math.exp",
        "log" => "math.log",
        "sin" => "math.sin",
        "cos" => "math.cos",
        "tanh" => "math.tanh",
        "atan2" => "math.atan2",
        _ => return None,
    })
}

/// Evaluate a unary math op on a concrete double (shared by both execution
/// tiers so they cannot diverge).
pub fn eval_unary(name: &str, x: f64) -> Option<f64> {
    Some(match name {
        "math.sqrt" => x.sqrt(),
        "math.absf" => x.abs(),
        "math.exp" => x.exp(),
        "math.log" => x.ln(),
        "math.sin" => x.sin(),
        "math.cos" => x.cos(),
        "math.tanh" => x.tanh(),
        _ => return None,
    })
}

/// Evaluate a binary math op on concrete doubles.
pub fn eval_binary(name: &str, x: f64, y: f64) -> Option<f64> {
    Some(match name {
        "math.powf" => x.powf(y),
        "math.atan2" => x.atan2(y),
        "math.copysign" => x.copysign(y),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_ir::{Module, Type};

    #[test]
    fn build_and_type() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let x = crate::arith::const_f64(&mut b, 4.0);
        let r = sqrt(&mut b, x);
        assert_eq!(m.value_type(r), &Type::f64());
    }

    #[test]
    fn intrinsic_mapping() {
        assert_eq!(intrinsic_to_op("SQRT"), Some("math.sqrt"));
        assert_eq!(intrinsic_to_op("sin"), Some("math.sin"));
        assert_eq!(intrinsic_to_op("nosuch"), None);
    }

    #[test]
    fn eval_matches_std() {
        assert_eq!(eval_unary("math.sqrt", 9.0), Some(3.0));
        assert_eq!(eval_unary("math.absf", -2.5), Some(2.5));
        assert_eq!(eval_binary("math.powf", 2.0, 10.0), Some(1024.0));
        assert_eq!(eval_unary("math.bogus", 1.0), None);
        assert_eq!(eval_binary("math.bogus", 1.0, 2.0), None);
    }

    #[test]
    fn every_declared_op_evaluates() {
        for op in UNARY_OPS {
            assert!(eval_unary(op, 0.5).is_some(), "{op} missing eval");
        }
        for op in BINARY_OPS {
            assert!(eval_binary(op, 0.5, 0.25).is_some(), "{op} missing eval");
        }
    }
}
