//! The `memref` dialect: allocation, load/store, and the cast from bare
//! pointers that the extracted stencil module uses to rebuild a memref from
//! the `llvm_ptr` handed over by FIR (§3 of the paper).

use fsc_ir::{Attribute, Module, OpBuilder, OpId, Type, ValueId};

/// `memref.alloc`.
pub const ALLOC: &str = "memref.alloc";
/// `memref.dealloc`.
pub const DEALLOC: &str = "memref.dealloc";
/// `memref.load`.
pub const LOAD: &str = "memref.load";
/// `memref.store`.
pub const STORE: &str = "memref.store";
/// `memref.copy`.
pub const COPY: &str = "memref.copy";
/// Build a memref view over an externally provided pointer. MLIR spells a
/// close relative `memref.view`/`unrealized_conversion_cast`; we keep one
/// explicit op because the paper's flow relies on exactly this seam.
pub const FROM_PTR: &str = "memref.from_ptr";

/// Allocate a memref of the given type.
pub fn alloc(b: &mut OpBuilder, ty: Type) -> ValueId {
    debug_assert!(matches!(ty, Type::MemRef { .. }));
    b.op1(ALLOC, vec![], ty, vec![]).1
}

/// Deallocate a memref.
pub fn dealloc(b: &mut OpBuilder, memref: ValueId) -> OpId {
    b.op(DEALLOC, vec![memref], vec![], vec![])
}

/// Load `memref[indices]`; result is the element type.
pub fn load(b: &mut OpBuilder, memref: ValueId, indices: Vec<ValueId>) -> ValueId {
    let elem = b
        .module_ref()
        .value_type(memref)
        .elem_type()
        .expect("memref.load on non-memref")
        .clone();
    let mut operands = vec![memref];
    operands.extend(indices);
    b.op1(LOAD, operands, elem, vec![]).1
}

/// Store `value` into `memref[indices]`.
pub fn store(b: &mut OpBuilder, value: ValueId, memref: ValueId, indices: Vec<ValueId>) -> OpId {
    let mut operands = vec![value, memref];
    operands.extend(indices);
    b.op(STORE, operands, vec![], vec![])
}

/// Copy the contents of one memref into another of the same shape.
pub fn copy(b: &mut OpBuilder, src: ValueId, dst: ValueId) -> OpId {
    b.op(COPY, vec![src, dst], vec![], vec![])
}

/// Rebuild a typed memref from a bare pointer argument (the hand-off from
/// the FIR module described in §3). The target shape is carried on the op.
pub fn from_ptr(b: &mut OpBuilder, ptr: ValueId, memref_ty: Type) -> ValueId {
    debug_assert!(matches!(memref_ty, Type::MemRef { .. }));
    b.op1(
        FROM_PTR,
        vec![ptr],
        memref_ty.clone(),
        vec![("target_type", Attribute::Type(memref_ty))],
    )
    .1
}

/// Extract the static shape of a memref-typed value.
pub fn shape_of(m: &Module, memref: ValueId) -> Option<Vec<i64>> {
    match m.value_type(memref) {
        Type::MemRef { shape, .. } => Some(shape.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith;

    #[test]
    fn alloc_load_store_types() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let mr = alloc(&mut b, Type::memref(vec![8, 8], Type::f64()));
        let i = arith::const_index(&mut b, 0);
        let j = arith::const_index(&mut b, 1);
        let v = load(&mut b, mr, vec![i, j]);
        assert_eq!(m.value_type(v), &Type::f64());
        let mut b = OpBuilder::at_end(&mut m, top);
        let st = store(&mut b, v, mr, vec![i, j]);
        assert_eq!(m.op(st).operands.len(), 4);
        assert_eq!(shape_of(&m, mr), Some(vec![8, 8]));
    }

    #[test]
    fn from_ptr_records_target_type() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let ptr = b
            .op1(
                "test.ptr",
                vec![],
                Type::LlvmPtr(Some(Box::new(Type::f64()))),
                vec![],
            )
            .1;
        let ty = Type::memref(vec![16], Type::f64());
        let mr = from_ptr(&mut b, ptr, ty.clone());
        assert_eq!(m.value_type(mr), &ty);
        let op = m.defining_op(mr).unwrap();
        assert_eq!(m.op(op).attr("target_type").unwrap().as_type(), Some(&ty));
    }
}
