//! The `mpi` dialect — xDSL's MPI abstraction, the target of the
//! `dmp-to-mpi` lowering.
//!
//! Ops carry the information the runtime (our `fsc-mpisim` substrate) needs
//! to move halo slabs between ranks: which buffer, which neighbour offset in
//! the process grid, and a message tag.

use fsc_ir::{Attribute, Module, OpBuilder, OpId, Type, ValueId};

/// `mpi.init`.
pub const INIT: &str = "mpi.init";
/// `mpi.finalize`.
pub const FINALIZE: &str = "mpi.finalize";
/// `mpi.comm_rank` — this process's rank, as i32.
pub const COMM_RANK: &str = "mpi.comm_rank";
/// `mpi.comm_size` — total ranks, as i32.
pub const COMM_SIZE: &str = "mpi.comm_size";
/// `mpi.isend` — non-blocking send of a halo slab.
pub const ISEND: &str = "mpi.isend";
/// `mpi.irecv` — non-blocking receive of a halo slab.
pub const IRECV: &str = "mpi.irecv";
/// `mpi.pack field -> staging` — gather one outgoing face of `field` into a
/// freshly allocated contiguous staging buffer (the send side of a swap).
pub const PACK: &str = "mpi.pack";
/// `mpi.halo_buffer field -> staging` — allocate a contiguous staging buffer
/// shaped like one face of `field` for an incoming message (the recv side).
pub const HALO_BUFFER: &str = "mpi.halo_buffer";
/// `mpi.unpack staging, field` — scatter a received staging buffer into the
/// halo region of `field`.
pub const UNPACK: &str = "mpi.unpack";
/// `mpi.waitall` — complete outstanding requests.
pub const WAITALL: &str = "mpi.waitall";
/// `mpi.barrier`.
pub const BARRIER: &str = "mpi.barrier";

/// Build `mpi.init`.
pub fn init(b: &mut OpBuilder) -> OpId {
    b.op(INIT, vec![], vec![], vec![])
}

/// Build `mpi.finalize`.
pub fn finalize(b: &mut OpBuilder) -> OpId {
    b.op(FINALIZE, vec![], vec![], vec![])
}

/// Build `mpi.comm_rank`.
pub fn comm_rank(b: &mut OpBuilder) -> ValueId {
    b.op1(COMM_RANK, vec![], Type::i32(), vec![]).1
}

/// Build `mpi.comm_size`.
pub fn comm_size(b: &mut OpBuilder) -> ValueId {
    b.op1(COMM_SIZE, vec![], Type::i32(), vec![]).1
}

/// Description of the halo slab a send/recv moves, attached as attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaloSpec {
    /// Data dimension the exchange crosses.
    pub dim: i64,
    /// +1 = towards the upper neighbour, -1 = towards the lower neighbour.
    pub direction: i64,
    /// Halo width in cells along `dim`.
    pub width: i64,
    /// Message tag.
    pub tag: i64,
}

fn halo_attrs(spec: &HaloSpec) -> Vec<(&'static str, Attribute)> {
    vec![
        ("dim", Attribute::int(spec.dim)),
        ("direction", Attribute::int(spec.direction)),
        ("width", Attribute::int(spec.width)),
        ("tag", Attribute::int(spec.tag)),
    ]
}

/// Read a [`HaloSpec`] back from an `mpi.isend`/`mpi.irecv`.
pub fn halo_spec(m: &Module, op: OpId) -> Option<HaloSpec> {
    let data = m.op(op);
    Some(HaloSpec {
        dim: data.attr("dim")?.as_int()?,
        direction: data.attr("direction")?.as_int()?,
        width: data.attr("width")?.as_int()?,
        tag: data.attr("tag")?.as_int()?,
    })
}

/// Shape of the staging buffer for one face of `field`: the field's extents
/// with the exchanged dimension clamped to the halo width. Falls back to a
/// rank-1 `width`-element buffer when the field's bounds are unknown.
fn face_type(m: &Module, field: ValueId, spec: &HaloSpec) -> Type {
    let shape = match m.value_type(field).stencil_bounds() {
        Some(bounds) => bounds
            .iter()
            .enumerate()
            .map(|(d, bd)| {
                if d as i64 == spec.dim {
                    spec.width
                } else {
                    bd.extent()
                }
            })
            .collect(),
        None => vec![spec.width],
    };
    Type::memref(shape, Type::f64())
}

/// Build `%staging = mpi.pack %field` for the outgoing face `spec` describes.
pub fn pack(b: &mut OpBuilder, field: ValueId, spec: &HaloSpec) -> ValueId {
    let ty = face_type(b.module_ref(), field, spec);
    b.op1(PACK, vec![field], ty, halo_attrs(spec)).1
}

/// Build `%staging = mpi.halo_buffer %field` for the incoming face `spec`
/// describes.
pub fn halo_buffer(b: &mut OpBuilder, field: ValueId, spec: &HaloSpec) -> ValueId {
    let ty = face_type(b.module_ref(), field, spec);
    b.op1(HALO_BUFFER, vec![field], ty, halo_attrs(spec)).1
}

/// Build `mpi.unpack %staging, %field` scattering a received face into the
/// halo region of `field`.
pub fn unpack(b: &mut OpBuilder, staging: ValueId, field: ValueId, spec: &HaloSpec) -> OpId {
    b.op(UNPACK, vec![staging, field], vec![], halo_attrs(spec))
}

/// Build `mpi.isend buffer` for the halo slab described by `spec`.
pub fn isend(b: &mut OpBuilder, buffer: ValueId, spec: &HaloSpec) -> OpId {
    b.op(ISEND, vec![buffer], vec![], halo_attrs(spec))
}

/// Build `mpi.irecv buffer` for the halo slab described by `spec`.
pub fn irecv(b: &mut OpBuilder, buffer: ValueId, spec: &HaloSpec) -> OpId {
    b.op(IRECV, vec![buffer], vec![], halo_attrs(spec))
}

/// Build `mpi.waitall`.
pub fn waitall(b: &mut OpBuilder) -> OpId {
    b.op(WAITALL, vec![], vec![], vec![])
}

/// Build `mpi.barrier`.
pub fn barrier(b: &mut OpBuilder) -> OpId {
    b.op(BARRIER, vec![], vec![], vec![])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_and_size_types() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        init(&mut b);
        let r = comm_rank(&mut b);
        let s = comm_size(&mut b);
        finalize(&mut b);
        assert_eq!(m.value_type(r), &Type::i32());
        assert_eq!(m.value_type(s), &Type::i32());
    }

    #[test]
    fn halo_spec_roundtrip() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let buf = b
            .op1(
                "test.buf",
                vec![],
                Type::memref(vec![16], Type::f64()),
                vec![],
            )
            .1;
        let spec = HaloSpec {
            dim: 1,
            direction: -1,
            width: 1,
            tag: 7,
        };
        let snd = isend(&mut b, buf, &spec);
        let rcv = irecv(&mut b, buf, &spec);
        let bar = barrier(&mut b);
        assert_eq!(halo_spec(&m, snd), Some(spec.clone()));
        assert_eq!(halo_spec(&m, rcv), Some(spec));
        assert_eq!(halo_spec(&m, bar), None);
    }
}
