//! Dialect-level verification checks, plugged into
//! [`fsc_ir::verifier::verify_module_with`].

use fsc_ir::verifier::OpCheck;
use fsc_ir::{Attribute, IrError, Module, OpId, Result, Type};

use crate::{fir, omp, scf, stencil};

/// Ops that terminate the region of a particular parent op.
fn expected_terminator(parent: &str) -> Option<&'static str> {
    Some(match parent {
        scf::FOR | scf::PARALLEL => scf::YIELD,
        fir::DO_LOOP => fir::RESULT,
        stencil::APPLY => stencil::RETURN,
        omp::WSLOOP => omp::YIELD,
        omp::PARALLEL => omp::TERMINATOR,
        _ => return None,
    })
}

fn err(msg: String) -> IrError {
    IrError::new(msg)
}

/// Structured loops: operand counts, index-typed bounds and ivs, correct
/// terminators.
pub fn check_loops(m: &Module, op: OpId) -> Result<()> {
    let data = m.op(op);
    let name = data.name.full();
    match name {
        scf::FOR | fir::DO_LOOP => {
            if data.operands.len() != 3 {
                return Err(err(format!("'{name}' needs [lb, ub, step] operands")));
            }
            for &o in &data.operands {
                if m.value_type(o) != &Type::Index {
                    return Err(err(format!("'{name}' bounds must be index-typed")));
                }
            }
            let body = m.region_blocks(data.regions[0]);
            let body = body
                .first()
                .ok_or_else(|| err(format!("'{name}' missing body")))?;
            if m.block_args(*body).len() != 1 {
                return Err(err(format!("'{name}' body must take exactly the iv")));
            }
        }
        scf::PARALLEL | omp::WSLOOP => {
            let body = m.region_blocks(data.regions[0]);
            let body = body
                .first()
                .ok_or_else(|| err(format!("'{name}' missing body")))?;
            let n = m.block_args(*body).len();
            if n == 0 || data.operands.len() != 3 * n {
                return Err(err(format!(
                    "'{name}' needs 3*N operands for N={n} induction variables"
                )));
            }
        }
        _ => {}
    }
    if let Some(term) = expected_terminator(name) {
        for region in &data.regions {
            for block in m.region_blocks(*region) {
                match m.block_terminator(block) {
                    Some(t) if m.op(t).name.full() == term => {}
                    _ => {
                        return Err(err(format!("'{name}' region must end in '{term}'")));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Stencil dialect invariants: apply block args mirror inputs, access
/// offsets have the domain's rank, stores carry matching bounds.
pub fn check_stencil(m: &Module, op: OpId) -> Result<()> {
    let data = m.op(op);
    match data.name.full() {
        stencil::APPLY => {
            let apply = stencil::ApplyOp(op);
            let body = apply.body(m);
            if m.block_args(body).len() != data.operands.len() {
                return Err(err(
                    "'stencil.apply' body arguments must mirror its operands".into(),
                ));
            }
            for (i, (&operand, &arg)) in data.operands.iter().zip(m.block_args(body)).enumerate() {
                if m.value_type(operand) != m.value_type(arg) {
                    return Err(err(format!(
                        "'stencil.apply' operand {i} type differs from body argument"
                    )));
                }
            }
            if data.results.is_empty() {
                return Err(err("'stencil.apply' must produce at least one temp".into()));
            }
            for &r in &data.results {
                if m.value_type(r).stencil_bounds().is_none() {
                    return Err(err("'stencil.apply' results must be stencil temps".into()));
                }
            }
        }
        stencil::ACCESS => {
            let offsets = stencil::access_offset(m, op)
                .ok_or_else(|| err("'stencil.access' missing offset attribute".into()))?;
            let temp_ty = m.value_type(data.operands[0]);
            let rank = temp_ty
                .stencil_bounds()
                .ok_or_else(|| err("'stencil.access' operand must be a stencil temp".into()))?
                .len();
            if offsets.len() != rank {
                return Err(err(format!(
                    "'stencil.access' offset rank {} != temp rank {rank}",
                    offsets.len()
                )));
            }
        }
        stencil::STORE => {
            let bounds = stencil::store_bounds(m, op)
                .ok_or_else(|| err("'stencil.store' missing lb/ub bounds".into()))?;
            let temp_rank = m
                .value_type(data.operands[0])
                .stencil_bounds()
                .map(<[_]>::len)
                .ok_or_else(|| err("'stencil.store' first operand must be a temp".into()))?;
            if bounds.len() != temp_rank {
                return Err(err("'stencil.store' bounds rank mismatch".into()));
            }
        }
        _ => {}
    }
    Ok(())
}

/// Same-type binary arithmetic.
pub fn check_arith(m: &Module, op: OpId) -> Result<()> {
    let data = m.op(op);
    let name = data.name.full();
    let is_binary = matches!(
        name,
        "arith.addf"
            | "arith.subf"
            | "arith.mulf"
            | "arith.divf"
            | "arith.addi"
            | "arith.subi"
            | "arith.muli"
            | "arith.divsi"
            | "arith.remsi"
            | "arith.maxf"
            | "arith.minf"
    );
    if is_binary {
        if data.operands.len() != 2 {
            return Err(err(format!("'{name}' needs two operands")));
        }
        let lt = m.value_type(data.operands[0]);
        let rt = m.value_type(data.operands[1]);
        if lt != rt {
            return Err(err(format!("'{name}' operand types differ: {lt} vs {rt}")));
        }
    }
    Ok(())
}

/// All dialect checks, for passing to `verify_module_with`.
pub fn dialect_checks() -> Vec<OpCheck> {
    vec![check_loops, check_stencil, check_arith]
}

/// Verify a module with all dialect checks enabled.
pub fn verify(m: &Module) -> Result<()> {
    fsc_ir::verifier::verify_module_with(m, &dialect_checks())
}

/// Quick helper used by lowering passes: assert no op of `dialect` remains.
pub fn assert_dialect_absent(m: &Module, dialect: &str) -> Result<()> {
    let mut offender = None;
    fsc_ir::walk::walk_module(m, &mut |op| {
        if offender.is_none() && m.op(op).name.dialect() == dialect {
            offender = Some(m.op(op).name.full().to_string());
        }
    });
    match offender {
        Some(name) => Err(err(format!("dialect '{dialect}' still present: '{name}'"))),
        None => Ok(()),
    }
}

/// Convenience used in tests: attribute as type, since `Attribute::as_type`
/// returns a reference.
pub fn attr_type(m: &Module, op: OpId, key: &str) -> Option<Type> {
    m.op(op).attr(key).and_then(Attribute::as_type).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith;
    use fsc_ir::types::DimBound;
    use fsc_ir::OpBuilder;

    #[test]
    fn well_formed_loop_passes() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let lb = arith::const_index(&mut b, 0);
        let ub = arith::const_index(&mut b, 8);
        let one = arith::const_index(&mut b, 1);
        scf::build_for(&mut b, lb, ub, one);
        verify(&m).unwrap();
    }

    #[test]
    fn loop_with_wrong_terminator_fails() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let lb = arith::const_index(&mut b, 0);
        let ub = arith::const_index(&mut b, 8);
        let one = arith::const_index(&mut b, 1);
        let f = scf::build_for(&mut b, lb, ub, one);
        // Replace the yield by something else.
        let body = f.body(&m);
        let yld = m.block_terminator(body).unwrap();
        m.erase_op(yld);
        let bogus = m.create_op("t.bogus", vec![], vec![], vec![]);
        m.append_op(body, bogus);
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("must end in"), "{e}");
    }

    #[test]
    fn non_index_bounds_fail() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let lb = arith::const_int(&mut b, 0, Type::i64());
        let ub = arith::const_int(&mut b, 8, Type::i64());
        let one = arith::const_int(&mut b, 1, Type::i64());
        scf::build_for(&mut b, lb, ub, one);
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("index-typed"), "{e}");
    }

    #[test]
    fn mismatched_arith_operands_fail() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let x = arith::const_f64(&mut b, 1.0);
        let y = arith::const_index(&mut b, 1);
        b.op("arith.addf", vec![x, y], vec![Type::f64()], vec![]);
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("operand types differ"), "{e}");
    }

    #[test]
    fn access_rank_mismatch_fails() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let src = b.op1("test.src", vec![], Type::LlvmPtr(None), vec![]).1;
        let field = stencil::external_load(
            &mut b,
            src,
            vec![DimBound::new(-1, 9), DimBound::new(-1, 9)],
            Type::f64(),
        );
        let temp = stencil::load(&mut b, field);
        let apply = stencil::build_apply(
            &mut b,
            vec![temp],
            vec![DimBound::new(0, 8), DimBound::new(0, 8)],
            vec![Type::f64()],
        );
        let body = apply.body(&m);
        let arg = apply.body_arg(&m, 0);
        let mut bb = OpBuilder::at_end(&mut m, body);
        // 1-D offset on a 2-D temp: wrong.
        let a = stencil::access(&mut bb, arg, vec![0]);
        stencil::build_return(&mut bb, vec![a]);
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("offset rank"), "{e}");
    }

    #[test]
    fn dialect_absence_check() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        arith::const_index(&mut b, 0);
        assert!(assert_dialect_absent(&m, "fir").is_ok());
        assert!(assert_dialect_absent(&m, "arith").is_err());
    }
}
