//! The `func` dialect: function definition, call and return.
//!
//! The paper's extraction pass communicates between the Flang-compiled FIR
//! module and the mlir-opt-compiled stencil module through plain function
//! calls — `func.func` / `func.call` are that interface.

use fsc_ir::{Attribute, BlockId, Module, OpBuilder, OpId, Type, ValueId};

/// `func.func`.
pub const FUNC: &str = "func.func";
/// `func.return`.
pub const RETURN: &str = "func.return";
/// `func.call`.
pub const CALL: &str = "func.call";

/// View of a `func.func` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuncOp(pub OpId);

impl FuncOp {
    /// Function symbol name.
    pub fn name(self, m: &Module) -> String {
        m.op(self.0)
            .attr("sym_name")
            .and_then(Attribute::as_str)
            .unwrap_or("")
            .to_string()
    }

    /// Declared function type.
    pub fn function_type(self, m: &Module) -> Option<Type> {
        m.op(self.0)
            .attr("function_type")
            .and_then(Attribute::as_type)
            .cloned()
    }

    /// Argument and result types from the declared function type.
    pub fn signature(self, m: &Module) -> (Vec<Type>, Vec<Type>) {
        match self.function_type(m) {
            Some(Type::Function { inputs, results }) => (inputs, results),
            _ => (vec![], vec![]),
        }
    }

    /// Entry block (the body), if the function has one.
    pub fn entry_block(self, m: &Module) -> Option<BlockId> {
        let region = *m.op(self.0).regions.first()?;
        m.region_blocks(region).first().copied()
    }

    /// Entry block arguments (the function's SSA parameters).
    pub fn arguments(self, m: &Module) -> Vec<ValueId> {
        self.entry_block(m)
            .map(|b| m.block_args(b).to_vec())
            .unwrap_or_default()
    }
}

/// Create a function at the end of the module's top block; returns the view
/// and its entry block.
pub fn build_func(
    m: &mut Module,
    name: &str,
    arg_types: Vec<Type>,
    result_types: Vec<Type>,
) -> (FuncOp, BlockId) {
    let ftype = Type::Function {
        inputs: arg_types.clone(),
        results: result_types,
    };
    let op = m.create_op(
        FUNC,
        vec![],
        vec![],
        vec![
            ("sym_name", Attribute::string(name)),
            ("function_type", Attribute::Type(ftype)),
        ],
    );
    let top = m.top_block();
    m.append_op(top, op);
    let region = m.add_region(op);
    let entry = m.add_block(region, &arg_types);
    (FuncOp(op), entry)
}

/// Build `func.return` with the given values.
pub fn build_return(b: &mut OpBuilder, values: Vec<ValueId>) -> OpId {
    b.op(RETURN, values, vec![], vec![])
}

/// Build `func.call @callee(args)`.
pub fn build_call(
    b: &mut OpBuilder,
    callee: &str,
    args: Vec<ValueId>,
    result_types: Vec<Type>,
) -> OpId {
    b.op(
        CALL,
        args,
        result_types,
        vec![("callee", Attribute::symbol(callee))],
    )
}

/// The callee symbol of a `func.call`.
pub fn call_callee(m: &Module, op: OpId) -> Option<&str> {
    m.op(op).attr("callee").and_then(Attribute::as_symbol)
}

/// Find a function by symbol name in the module.
pub fn find_func(m: &Module, name: &str) -> Option<FuncOp> {
    m.top_level_ops_named(FUNC)
        .into_iter()
        .map(FuncOp)
        .find(|f| f.name(m) == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect_func() {
        let mut m = Module::new();
        let (f, entry) = build_func(
            &mut m,
            "kernel",
            vec![Type::Index, Type::f64()],
            vec![Type::f64()],
        );
        assert_eq!(f.name(&m), "kernel");
        let (ins, outs) = f.signature(&m);
        assert_eq!(ins, vec![Type::Index, Type::f64()]);
        assert_eq!(outs, vec![Type::f64()]);
        assert_eq!(f.entry_block(&m), Some(entry));
        assert_eq!(f.arguments(&m).len(), 2);
    }

    #[test]
    fn call_and_return_roundtrip() {
        let mut m = Module::new();
        let (_, entry) = build_func(&mut m, "f", vec![Type::f64()], vec![Type::f64()]);
        let arg = m.block_args(entry)[0];
        let mut b = OpBuilder::at_end(&mut m, entry);
        let call = build_call(&mut b, "g", vec![arg], vec![Type::f64()]);
        let res = m.result(call);
        let mut b = OpBuilder::at_end(&mut m, entry);
        build_return(&mut b, vec![res]);
        assert_eq!(call_callee(&m, call), Some("g"));
        fsc_ir::verifier::verify_module(&m).unwrap();
    }

    #[test]
    fn find_func_by_name() {
        let mut m = Module::new();
        build_func(&mut m, "a", vec![], vec![]);
        let (fb, _) = build_func(&mut m, "b", vec![], vec![]);
        assert_eq!(find_func(&m, "b"), Some(fb));
        assert_eq!(find_func(&m, "zzz"), None);
    }
}
