//! The `gpu` dialect: kernel outlining targets, launches and the two data
//! management strategies compared in the paper's Figure 5.
//!
//! * the *initial data approach*: [`HOST_REGISTER`] pins host memory and
//!   lets the device fault pages across PCIe on demand;
//! * the *optimised data approach*: explicit [`ALLOC`] / [`MEMCPY`] /
//!   [`DEALLOC`] inserted by a bespoke management pass.

use fsc_ir::{Attribute, BlockId, Module, OpBuilder, OpId, Type, ValueId};

/// `gpu.module` — container for device code (isolated from above).
pub const MODULE: &str = "gpu.module";
/// `gpu.func` — a kernel function inside a `gpu.module`.
pub const FUNC: &str = "gpu.func";
/// `gpu.return` — terminator of `gpu.func` bodies.
pub const RETURN: &str = "gpu.return";
/// `gpu.launch_func` — launch a kernel over a grid of thread blocks.
pub const LAUNCH_FUNC: &str = "gpu.launch_func";
/// `gpu.host_register` — page-lock host memory for on-demand device access.
pub const HOST_REGISTER: &str = "gpu.host_register";
/// `gpu.alloc` — allocate device memory.
pub const ALLOC: &str = "gpu.alloc";
/// `gpu.dealloc` — free device memory.
pub const DEALLOC: &str = "gpu.dealloc";
/// `gpu.memcpy` — copy between host and device.
pub const MEMCPY: &str = "gpu.memcpy";
/// `gpu.thread_id` / `gpu.block_id` / `gpu.block_dim` — intra-kernel ids.
pub const THREAD_ID: &str = "gpu.thread_id";
/// See [`THREAD_ID`].
pub const BLOCK_ID: &str = "gpu.block_id";
/// See [`THREAD_ID`].
pub const BLOCK_DIM: &str = "gpu.block_dim";

/// Direction of a `gpu.memcpy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyDirection {
    /// Host to device.
    HostToDevice,
    /// Device to host.
    DeviceToHost,
}

impl CopyDirection {
    /// Attribute spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CopyDirection::HostToDevice => "h2d",
            CopyDirection::DeviceToHost => "d2h",
        }
    }

    /// Parse the attribute spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "h2d" => Some(CopyDirection::HostToDevice),
            "d2h" => Some(CopyDirection::DeviceToHost),
            _ => None,
        }
    }
}

/// Create a `gpu.module` named `name` at module top level; returns its body.
pub fn build_gpu_module(m: &mut Module, name: &str) -> (OpId, BlockId) {
    let op = m.create_op(
        MODULE,
        vec![],
        vec![],
        vec![("sym_name", Attribute::string(name))],
    );
    let top = m.top_block();
    m.append_op(top, op);
    let region = m.add_region(op);
    let body = m.add_block(region, &[]);
    (op, body)
}

/// Build `gpu.launch_func @kernel` with static grid/block dims and the
/// given kernel arguments.
pub fn build_launch_func(
    b: &mut OpBuilder,
    kernel: &str,
    grid: [i64; 3],
    block: [i64; 3],
    args: Vec<ValueId>,
) -> OpId {
    b.op(
        LAUNCH_FUNC,
        args,
        vec![],
        vec![
            ("kernel", Attribute::symbol(kernel)),
            ("grid_size", Attribute::IndexList(grid.to_vec())),
            ("block_size", Attribute::IndexList(block.to_vec())),
        ],
    )
}

/// Grid and block sizes of a `gpu.launch_func`.
pub fn launch_dims(m: &Module, op: OpId) -> Option<([i64; 3], [i64; 3])> {
    let grid = m.op(op).attr("grid_size")?.as_index_list()?;
    let block = m.op(op).attr("block_size")?.as_index_list()?;
    Some(([grid[0], grid[1], grid[2]], [block[0], block[1], block[2]]))
}

/// Build `gpu.host_register` on a memref (initial data strategy).
pub fn host_register(b: &mut OpBuilder, memref: ValueId) -> OpId {
    b.op(HOST_REGISTER, vec![memref], vec![], vec![])
}

/// Build `gpu.alloc` for a device buffer of the same memref type as `like`'s
/// type (explicit data strategy).
pub fn alloc(b: &mut OpBuilder, ty: Type) -> ValueId {
    b.op1(
        ALLOC,
        vec![],
        ty,
        vec![("memory_space", Attribute::string("device"))],
    )
    .1
}

/// Build `gpu.dealloc`.
pub fn dealloc(b: &mut OpBuilder, buffer: ValueId) -> OpId {
    b.op(DEALLOC, vec![buffer], vec![], vec![])
}

/// Build `gpu.memcpy dst, src` in the given direction.
pub fn memcpy(b: &mut OpBuilder, dst: ValueId, src: ValueId, dir: CopyDirection) -> OpId {
    b.op(
        MEMCPY,
        vec![dst, src],
        vec![],
        vec![("direction", Attribute::string(dir.as_str()))],
    )
}

/// Direction of a `gpu.memcpy` op.
pub fn memcpy_direction(m: &Module, op: OpId) -> Option<CopyDirection> {
    CopyDirection::parse(m.op(op).attr("direction")?.as_str()?)
}

/// Build `gpu.thread_id`/`gpu.block_id`/`gpu.block_dim` for dimension
/// `dim` (0 = x, 1 = y, 2 = z).
pub fn id_op(b: &mut OpBuilder, name: &str, dim: i64) -> ValueId {
    debug_assert!(matches!(name, THREAD_ID | BLOCK_ID | BLOCK_DIM));
    b.op1(
        name,
        vec![],
        Type::Index,
        vec![("dimension", Attribute::int(dim))],
    )
    .1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_roundtrip() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let arg = b
            .op1(
                "test.buf",
                vec![],
                Type::memref(vec![64], Type::f64()),
                vec![],
            )
            .1;
        let launch = build_launch_func(&mut b, "kern", [8, 8, 1], [32, 32, 1], vec![arg]);
        let (grid, block) = launch_dims(&m, launch).unwrap();
        assert_eq!(grid, [8, 8, 1]);
        assert_eq!(block, [32, 32, 1]);
        assert_eq!(
            m.op(launch).attr("kernel").unwrap().as_symbol(),
            Some("kern")
        );
    }

    #[test]
    fn memcpy_direction_roundtrip() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let ty = Type::memref(vec![4], Type::f64());
        let h = b.op1("test.buf", vec![], ty.clone(), vec![]).1;
        let d = alloc(&mut b, ty);
        let cp = memcpy(&mut b, d, h, CopyDirection::HostToDevice);
        let back = memcpy(&mut b, h, d, CopyDirection::DeviceToHost);
        assert_eq!(memcpy_direction(&m, cp), Some(CopyDirection::HostToDevice));
        assert_eq!(
            memcpy_direction(&m, back),
            Some(CopyDirection::DeviceToHost)
        );
    }

    #[test]
    fn gpu_module_is_top_level_and_named() {
        let mut m = Module::new();
        let (op, _body) = build_gpu_module(&mut m, "stencil_kernels");
        assert_eq!(
            m.op(op).attr("sym_name").unwrap().as_str(),
            Some("stencil_kernels")
        );
        assert_eq!(m.top_level_ops_named(MODULE), vec![op]);
    }

    #[test]
    fn copy_direction_parse() {
        assert_eq!(
            CopyDirection::parse("h2d"),
            Some(CopyDirection::HostToDevice)
        );
        assert_eq!(
            CopyDirection::parse("d2h"),
            Some(CopyDirection::DeviceToHost)
        );
        assert_eq!(CopyDirection::parse("x"), None);
    }
}
