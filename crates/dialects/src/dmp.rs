//! The `dmp` dialect — xDSL's technology-agnostic Distributed Memory
//! Parallelism abstraction (§2.1 of the paper).
//!
//! A `dmp.swap` declares that the halo region of a decomposed field must be
//! exchanged with neighbouring ranks before the next stencil application;
//! the `dmp-to-mpi` lowering specialises it to point-to-point MPI messages.

use fsc_ir::{Attribute, Module, OpBuilder, OpId, ValueId};

/// `dmp.swap` — halo exchange over a decomposed field.
pub const SWAP: &str = "dmp.swap";
/// `dmp.grid` — declares the process-grid decomposition for a function.
pub const GRID: &str = "dmp.grid";

/// Build `dmp.grid` declaring an `n`-dimensional process decomposition
/// (e.g. `[2, 4]` = 8 ranks in a 2×4 grid over the first two data dims).
pub fn build_grid(b: &mut OpBuilder, decomposition: Vec<i64>) -> OpId {
    b.op(
        GRID,
        vec![],
        vec![],
        vec![("shape", Attribute::IndexList(decomposition))],
    )
}

/// The decomposition shape of a `dmp.grid`.
pub fn grid_shape(m: &Module, op: OpId) -> Option<Vec<i64>> {
    if m.op(op).name.full() != GRID {
        return None;
    }
    m.op(op).attr("shape")?.as_index_list().map(<[i64]>::to_vec)
}

/// Build `dmp.swap` for `field` with per-dimension halo widths (the stencil
/// radius in each dimension; `0` means no exchange along that dim).
pub fn build_swap(b: &mut OpBuilder, field: ValueId, halo: Vec<i64>) -> OpId {
    b.op(
        SWAP,
        vec![field],
        vec![],
        vec![("halo", Attribute::IndexList(halo))],
    )
}

/// The halo widths of a `dmp.swap`.
pub fn swap_halo(m: &Module, op: OpId) -> Option<Vec<i64>> {
    if m.op(op).name.full() != SWAP {
        return None;
    }
    m.op(op).attr("halo")?.as_index_list().map(<[i64]>::to_vec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_ir::Type;

    #[test]
    fn grid_and_swap_roundtrip() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let g = build_grid(&mut b, vec![4, 2]);
        let f = b
            .op1(
                "test.field",
                vec![],
                Type::memref(vec![8, 8], Type::f64()),
                vec![],
            )
            .1;
        let s = build_swap(&mut b, f, vec![1, 1, 0]);
        assert_eq!(grid_shape(&m, g), Some(vec![4, 2]));
        assert_eq!(swap_halo(&m, s), Some(vec![1, 1, 0]));
        assert_eq!(swap_halo(&m, g), None);
        assert_eq!(grid_shape(&m, s), None);
    }
}
