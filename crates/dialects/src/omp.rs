//! The `omp` dialect: the OpenMP constructs produced by the
//! `convert-scf-to-openmp` pass in the paper's CPU flow.
//!
//! We model the `omp.parallel { omp.wsloop { ... } }` nest MLIR emits: the
//! parallel region forks a team, the work-sharing loop distributes
//! iterations of the (formerly `scf.parallel`) loop across the team.

use fsc_ir::{Attribute, BlockId, Module, OpBuilder, OpId, Type, ValueId};

/// `omp.parallel` — fork a thread team over the nested region.
pub const PARALLEL: &str = "omp.parallel";
/// `omp.wsloop` — work-share the iterations of a loop nest over the team.
pub const WSLOOP: &str = "omp.wsloop";
/// `omp.yield` — terminator of wsloop bodies.
pub const YIELD: &str = "omp.yield";
/// `omp.terminator` — terminator of parallel regions.
pub const TERMINATOR: &str = "omp.terminator";

/// View of an `omp.wsloop`: operands `[lbs..., ubs..., steps...]`, exclusive
/// upper bounds, body block args are the induction variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WsLoopOp(pub OpId);

impl WsLoopOp {
    /// Number of collapsed loop dimensions.
    pub fn num_dims(self, m: &Module) -> usize {
        m.block_args(self.body(m)).len()
    }

    /// Lower bounds.
    pub fn lbs(self, m: &Module) -> Vec<ValueId> {
        let n = self.num_dims(m);
        m.op(self.0).operands[0..n].to_vec()
    }

    /// Exclusive upper bounds.
    pub fn ubs(self, m: &Module) -> Vec<ValueId> {
        let n = self.num_dims(m);
        m.op(self.0).operands[n..2 * n].to_vec()
    }

    /// Steps.
    pub fn steps(self, m: &Module) -> Vec<ValueId> {
        let n = self.num_dims(m);
        m.op(self.0).operands[2 * n..3 * n].to_vec()
    }

    /// Body block.
    pub fn body(self, m: &Module) -> BlockId {
        let region = m.op(self.0).regions[0];
        m.region_blocks(region)[0]
    }

    /// Induction variables.
    pub fn ivs(self, m: &Module) -> Vec<ValueId> {
        m.block_args(self.body(m)).to_vec()
    }
}

/// Build `omp.parallel` (empty region terminated by `omp.terminator`);
/// `num_threads = 0` means "runtime default".
pub fn build_parallel(b: &mut OpBuilder, num_threads: u32) -> (OpId, BlockId) {
    let attrs = if num_threads > 0 {
        vec![("num_threads", Attribute::int(num_threads as i64))]
    } else {
        vec![]
    };
    let op = b.op(PARALLEL, vec![], vec![], attrs);
    let m = b.module();
    let region = m.add_region(op);
    let body = m.add_block(region, &[]);
    let t = m.create_op(TERMINATOR, vec![], vec![], vec![]);
    m.append_op(body, t);
    (op, body)
}

/// The `num_threads` clause of an `omp.parallel` (0 = default).
pub fn parallel_num_threads(m: &Module, op: OpId) -> u32 {
    m.op(op)
        .attr("num_threads")
        .and_then(Attribute::as_int)
        .unwrap_or(0) as u32
}

/// Build an `omp.wsloop` with empty body terminated by `omp.yield`.
pub fn build_wsloop(
    b: &mut OpBuilder,
    lbs: Vec<ValueId>,
    ubs: Vec<ValueId>,
    steps: Vec<ValueId>,
) -> WsLoopOp {
    assert_eq!(lbs.len(), ubs.len());
    assert_eq!(lbs.len(), steps.len());
    let n = lbs.len();
    let mut operands = lbs;
    operands.extend(ubs);
    operands.extend(steps);
    let op = b.op(WSLOOP, operands, vec![], vec![]);
    let m = b.module();
    let region = m.add_region(op);
    let body = m.add_block(region, &vec![Type::Index; n]);
    let y = m.create_op(YIELD, vec![], vec![], vec![]);
    m.append_op(body, y);
    WsLoopOp(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith;
    use fsc_ir::verifier::verify_module;

    #[test]
    fn parallel_wsloop_nest() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let zero = arith::const_index(&mut b, 0);
        let n = arith::const_index(&mut b, 100);
        let one = arith::const_index(&mut b, 1);
        let (par, par_body) = build_parallel(&mut b, 8);
        assert_eq!(parallel_num_threads(&m, par), 8);
        let term = m.block_terminator(par_body).unwrap();
        let mut inner = OpBuilder::before(&mut m, term);
        let ws = build_wsloop(&mut inner, vec![zero], vec![n], vec![one]);
        assert_eq!(ws.num_dims(&m), 1);
        assert_eq!(ws.lbs(&m), vec![zero]);
        assert_eq!(ws.ubs(&m), vec![n]);
        assert_eq!(ws.steps(&m), vec![one]);
        verify_module(&m).unwrap();
    }

    #[test]
    fn default_num_threads_is_zero() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let (par, _) = build_parallel(&mut b, 0);
        assert_eq!(parallel_num_threads(&m, par), 0);
        assert!(m.op(par).attr("num_threads").is_none());
    }
}
