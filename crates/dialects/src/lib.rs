//! # fsc-dialects — dialect definitions over `fsc-ir`
//!
//! One module per dialect, mirroring the dialect set the paper's pipeline
//! (Figure 1 / Listing 4) touches:
//!
//! | dialect | role in the paper |
//! |---------|------------------|
//! | [`func`]    | functions, calls, returns (module interface) |
//! | [`arith`]   | arithmetic — Flang lowers Fortran expressions to these |
//! | [`math`]    | transcendental functions |
//! | [`memref`]  | memory abstraction used by the stencil lowering |
//! | [`scf`]     | structured control flow: `scf.for` / `scf.parallel` |
//! | [`fir`]     | Flang's Fortran IR: loops, array addressing, load/store |
//! | [`stencil`] | the Open Earth Compiler stencil dialect |
//! | [`omp`]     | OpenMP constructs targeted by `convert-scf-to-openmp` |
//! | [`gpu`]     | GPU launch, data registration/movement |
//! | [`dmp`]     | xDSL distributed-memory parallelism (halo swaps) |
//! | [`mpi`]     | xDSL MPI dialect lowered from `dmp` |
//!
//! Each module provides op-name constants, typed *builder* helpers, *view*
//! structs for reading structured ops back (e.g. [`scf::ForOp`]), and
//! verification hooks collected by [`verify::dialect_checks`].

pub mod arith;
pub mod dmp;
pub mod fir;
pub mod func;
pub mod gpu;
pub mod math;
pub mod memref;
pub mod mpi;
pub mod omp;
pub mod scf;
pub mod stencil;
pub mod verify;
