//! The `scf` dialect: structured control flow.
//!
//! The stencil lowering of the paper converts `stencil.apply` into
//! `scf.parallel` (outer) + `scf.for` (inner) for CPUs, or one coalesced
//! `scf.parallel` for GPUs; `convert-scf-to-openmp` then maps the parallel
//! loop to OpenMP.

use fsc_ir::{BlockId, Module, OpBuilder, OpId, Type, ValueId};

/// `scf.for`.
pub const FOR: &str = "scf.for";
/// `scf.parallel`.
pub const PARALLEL: &str = "scf.parallel";
/// `scf.yield`.
pub const YIELD: &str = "scf.yield";
/// `scf.if`.
pub const IF: &str = "scf.if";

/// View of an `scf.for` op: operands `[lb, ub, step]`, one region whose
/// single block takes the induction variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForOp(pub OpId);

impl ForOp {
    /// Lower bound operand.
    pub fn lb(self, m: &Module) -> ValueId {
        m.op(self.0).operands[0]
    }

    /// Upper bound operand (exclusive).
    pub fn ub(self, m: &Module) -> ValueId {
        m.op(self.0).operands[1]
    }

    /// Step operand.
    pub fn step(self, m: &Module) -> ValueId {
        m.op(self.0).operands[2]
    }

    /// Body block.
    pub fn body(self, m: &Module) -> BlockId {
        let region = m.op(self.0).regions[0];
        m.region_blocks(region)[0]
    }

    /// Induction variable (first body block argument).
    pub fn iv(self, m: &Module) -> ValueId {
        m.block_args(self.body(m))[0]
    }
}

/// View of an `scf.parallel` op: operands `[lb0.., ub0.., step0..]` with the
/// dimensionality recoverable from the body block's argument count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelOp(pub OpId);

impl ParallelOp {
    /// Number of parallel dimensions.
    pub fn num_dims(self, m: &Module) -> usize {
        m.block_args(self.body(m)).len()
    }

    /// Lower bounds, one per dimension.
    pub fn lbs(self, m: &Module) -> Vec<ValueId> {
        let n = self.num_dims(m);
        m.op(self.0).operands[0..n].to_vec()
    }

    /// Upper bounds (exclusive), one per dimension.
    pub fn ubs(self, m: &Module) -> Vec<ValueId> {
        let n = self.num_dims(m);
        m.op(self.0).operands[n..2 * n].to_vec()
    }

    /// Steps, one per dimension.
    pub fn steps(self, m: &Module) -> Vec<ValueId> {
        let n = self.num_dims(m);
        m.op(self.0).operands[2 * n..3 * n].to_vec()
    }

    /// Body block.
    pub fn body(self, m: &Module) -> BlockId {
        let region = m.op(self.0).regions[0];
        m.region_blocks(region)[0]
    }

    /// Induction variables, one per dimension.
    pub fn ivs(self, m: &Module) -> Vec<ValueId> {
        m.block_args(self.body(m)).to_vec()
    }
}

/// Build an `scf.for lb..ub step` with an empty body (terminated by
/// `scf.yield`); returns the view. The builder's insertion point is *not*
/// moved — build the body via `ForOp::body`.
pub fn build_for(b: &mut OpBuilder, lb: ValueId, ub: ValueId, step: ValueId) -> ForOp {
    let op = b.op(FOR, vec![lb, ub, step], vec![], vec![]);
    let m = b.module();
    let region = m.add_region(op);
    let body = m.add_block(region, &[Type::Index]);
    let y = m.create_op(YIELD, vec![], vec![], vec![]);
    m.append_op(body, y);
    ForOp(op)
}

/// Build an n-dimensional `scf.parallel` with an empty body terminated by
/// `scf.yield`.
pub fn build_parallel(
    b: &mut OpBuilder,
    lbs: Vec<ValueId>,
    ubs: Vec<ValueId>,
    steps: Vec<ValueId>,
) -> ParallelOp {
    assert_eq!(lbs.len(), ubs.len());
    assert_eq!(lbs.len(), steps.len());
    let n = lbs.len();
    let mut operands = lbs;
    operands.extend(ubs);
    operands.extend(steps);
    let op = b.op(PARALLEL, operands, vec![], vec![]);
    let m = b.module();
    let region = m.add_region(op);
    let body = m.add_block(region, &vec![Type::Index; n]);
    let y = m.create_op(YIELD, vec![], vec![], vec![]);
    m.append_op(body, y);
    ParallelOp(op)
}

/// A builder positioned just before a block's terminator — the natural spot
/// to grow a loop body that already ends in `scf.yield`.
pub fn body_builder(m: &mut Module, body: BlockId) -> OpBuilder<'_> {
    let term = m.block_terminator(body).expect("body has no terminator");
    OpBuilder::before(m, term)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith;
    use fsc_ir::verifier::verify_module;

    #[test]
    fn for_roundtrip() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let lb = arith::const_index(&mut b, 0);
        let ub = arith::const_index(&mut b, 10);
        let st = arith::const_index(&mut b, 1);
        let f = build_for(&mut b, lb, ub, st);
        assert_eq!(f.lb(&m), lb);
        assert_eq!(f.ub(&m), ub);
        assert_eq!(f.step(&m), st);
        assert_eq!(m.value_type(f.iv(&m)), &Type::Index);
        verify_module(&m).unwrap();
    }

    #[test]
    fn parallel_dims_and_operand_slicing() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let zero = arith::const_index(&mut b, 0);
        let ten = arith::const_index(&mut b, 10);
        let twenty = arith::const_index(&mut b, 20);
        let one = arith::const_index(&mut b, 1);
        let p = build_parallel(&mut b, vec![zero, zero], vec![ten, twenty], vec![one, one]);
        assert_eq!(p.num_dims(&m), 2);
        assert_eq!(p.lbs(&m), vec![zero, zero]);
        assert_eq!(p.ubs(&m), vec![ten, twenty]);
        assert_eq!(p.steps(&m), vec![one, one]);
        assert_eq!(p.ivs(&m).len(), 2);
        verify_module(&m).unwrap();
    }

    #[test]
    fn body_builder_inserts_before_yield() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let lb = arith::const_index(&mut b, 0);
        let ub = arith::const_index(&mut b, 4);
        let one = arith::const_index(&mut b, 1);
        let f = build_for(&mut b, lb, ub, one);
        let body = f.body(&m);
        let mut bb = body_builder(&mut m, body);
        arith::const_f64(&mut bb, 1.0);
        let ops = m.block_ops(body);
        assert_eq!(m.op(ops[0]).name.full(), "arith.constant");
        assert_eq!(m.op(ops[1]).name.full(), YIELD);
    }
}
