//! The `arith` dialect: constants, integer/float arithmetic, comparisons.
//!
//! Flang lowers Fortran scalar expressions to these ops, and — as §3 of the
//! paper notes — the fact that FIR reuses standard `arith`/`math` is what
//! makes extracting stencil bodies out of FIR feasible.

use fsc_ir::{Attribute, Module, OpBuilder, OpId, Type, ValueId};

/// `arith.constant`.
pub const CONSTANT: &str = "arith.constant";

/// Comparison predicates for `arith.cmpi` / `arith.cmpf`, stored as the
/// `predicate` string attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpPredicate {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less than (signed / ordered).
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpPredicate {
    /// Attribute spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpPredicate::Eq => "eq",
            CmpPredicate::Ne => "ne",
            CmpPredicate::Lt => "lt",
            CmpPredicate::Le => "le",
            CmpPredicate::Gt => "gt",
            CmpPredicate::Ge => "ge",
        }
    }

    /// Parse the attribute spelling back.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "eq" => CmpPredicate::Eq,
            "ne" => CmpPredicate::Ne,
            "lt" | "slt" | "olt" => CmpPredicate::Lt,
            "le" | "sle" | "ole" => CmpPredicate::Le,
            "gt" | "sgt" | "ogt" => CmpPredicate::Gt,
            "ge" | "sge" | "oge" => CmpPredicate::Ge,
            _ => return None,
        })
    }
}

/// Build an integer constant of the given type.
pub fn const_int(b: &mut OpBuilder, value: i64, ty: Type) -> ValueId {
    b.op1(
        CONSTANT,
        vec![],
        ty.clone(),
        vec![("value", Attribute::Int(value, ty))],
    )
    .1
}

/// Build an `index`-typed constant.
pub fn const_index(b: &mut OpBuilder, value: i64) -> ValueId {
    const_int(b, value, Type::Index)
}

/// Build a float constant of the given type.
pub fn const_float(b: &mut OpBuilder, value: f64, ty: Type) -> ValueId {
    b.op1(
        CONSTANT,
        vec![],
        ty.clone(),
        vec![("value", Attribute::Float(value, ty))],
    )
    .1
}

/// Build an `f64` constant.
pub fn const_f64(b: &mut OpBuilder, value: f64) -> ValueId {
    const_float(b, value, Type::f64())
}

/// Build a binary op (`arith.addf`, `arith.muli`, ...); the result type is
/// the lhs type.
pub fn binary(b: &mut OpBuilder, name: &str, lhs: ValueId, rhs: ValueId) -> ValueId {
    let ty = b.module_ref().value_type(lhs).clone();
    b.op1(name, vec![lhs, rhs], ty, vec![]).1
}

/// `arith.addf`.
pub fn addf(b: &mut OpBuilder, lhs: ValueId, rhs: ValueId) -> ValueId {
    binary(b, "arith.addf", lhs, rhs)
}

/// `arith.subf`.
pub fn subf(b: &mut OpBuilder, lhs: ValueId, rhs: ValueId) -> ValueId {
    binary(b, "arith.subf", lhs, rhs)
}

/// `arith.mulf`.
pub fn mulf(b: &mut OpBuilder, lhs: ValueId, rhs: ValueId) -> ValueId {
    binary(b, "arith.mulf", lhs, rhs)
}

/// `arith.divf`.
pub fn divf(b: &mut OpBuilder, lhs: ValueId, rhs: ValueId) -> ValueId {
    binary(b, "arith.divf", lhs, rhs)
}

/// `arith.addi`.
pub fn addi(b: &mut OpBuilder, lhs: ValueId, rhs: ValueId) -> ValueId {
    binary(b, "arith.addi", lhs, rhs)
}

/// `arith.subi`.
pub fn subi(b: &mut OpBuilder, lhs: ValueId, rhs: ValueId) -> ValueId {
    binary(b, "arith.subi", lhs, rhs)
}

/// `arith.muli`.
pub fn muli(b: &mut OpBuilder, lhs: ValueId, rhs: ValueId) -> ValueId {
    binary(b, "arith.muli", lhs, rhs)
}

/// `arith.negf`.
pub fn negf(b: &mut OpBuilder, value: ValueId) -> ValueId {
    let ty = b.module_ref().value_type(value).clone();
    b.op1("arith.negf", vec![value], ty, vec![]).1
}

/// Integer comparison producing `i1`.
pub fn cmpi(b: &mut OpBuilder, pred: CmpPredicate, lhs: ValueId, rhs: ValueId) -> ValueId {
    b.op1(
        "arith.cmpi",
        vec![lhs, rhs],
        Type::bool(),
        vec![("predicate", Attribute::string(pred.as_str()))],
    )
    .1
}

/// Float comparison producing `i1`.
pub fn cmpf(b: &mut OpBuilder, pred: CmpPredicate, lhs: ValueId, rhs: ValueId) -> ValueId {
    b.op1(
        "arith.cmpf",
        vec![lhs, rhs],
        Type::bool(),
        vec![("predicate", Attribute::string(pred.as_str()))],
    )
    .1
}

/// `arith.select` — ternary choice.
pub fn select(b: &mut OpBuilder, cond: ValueId, if_true: ValueId, if_false: ValueId) -> ValueId {
    let ty = b.module_ref().value_type(if_true).clone();
    b.op1("arith.select", vec![cond, if_true, if_false], ty, vec![])
        .1
}

/// `arith.index_cast` between `index` and integer types.
pub fn index_cast(b: &mut OpBuilder, value: ValueId, to: Type) -> ValueId {
    b.op1("arith.index_cast", vec![value], to, vec![]).1
}

/// `arith.sitofp` — signed int to float.
pub fn sitofp(b: &mut OpBuilder, value: ValueId, to: Type) -> ValueId {
    b.op1("arith.sitofp", vec![value], to, vec![]).1
}

/// `arith.fptosi` — float to signed int.
pub fn fptosi(b: &mut OpBuilder, value: ValueId, to: Type) -> ValueId {
    b.op1("arith.fptosi", vec![value], to, vec![]).1
}

/// If `op` is an `arith.constant`, return its attribute value.
pub fn constant_value(module: &Module, op: OpId) -> Option<&Attribute> {
    if module.op(op).name.full() == CONSTANT {
        module.op(op).attr("value")
    } else {
        None
    }
}

/// If `value` is produced by an `arith.constant` with an integer/index
/// attribute, return the integer.
pub fn const_int_value(module: &Module, value: ValueId) -> Option<i64> {
    let op = module.defining_op(value)?;
    constant_value(module, op)?.as_int()
}

/// If `value` is produced by an `arith.constant` float, return it.
pub fn const_float_value(module: &Module, value: ValueId) -> Option<f64> {
    let op = module.defining_op(value)?;
    constant_value(module, op)?.as_float()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_extraction() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let i = const_index(&mut b, 42);
        let f = const_f64(&mut b, 0.25);
        assert_eq!(const_int_value(&m, i), Some(42));
        assert_eq!(const_float_value(&m, f), Some(0.25));
        assert_eq!(const_float_value(&m, i), None);
        assert_eq!(m.value_type(i), &Type::Index);
    }

    #[test]
    fn binary_result_type_follows_lhs() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let x = const_f64(&mut b, 1.0);
        let y = const_f64(&mut b, 2.0);
        let s = addf(&mut b, x, y);
        assert_eq!(m.value_type(s), &Type::f64());
        let op = m.defining_op(s).unwrap();
        assert_eq!(m.op(op).name.full(), "arith.addf");
        assert_eq!(m.op(op).operands, vec![x, y]);
    }

    #[test]
    fn cmp_has_predicate_and_bool_result() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let x = const_index(&mut b, 1);
        let y = const_index(&mut b, 2);
        let c = cmpi(&mut b, CmpPredicate::Lt, x, y);
        assert_eq!(m.value_type(c), &Type::bool());
        let op = m.defining_op(c).unwrap();
        assert_eq!(m.op(op).attr("predicate").unwrap().as_str(), Some("lt"));
    }

    #[test]
    fn predicate_roundtrip() {
        for p in [
            CmpPredicate::Eq,
            CmpPredicate::Ne,
            CmpPredicate::Lt,
            CmpPredicate::Le,
            CmpPredicate::Gt,
            CmpPredicate::Ge,
        ] {
            assert_eq!(CmpPredicate::parse(p.as_str()), Some(p));
        }
        assert_eq!(CmpPredicate::parse("bogus"), None);
        // MLIR signed/ordered spellings map onto ours.
        assert_eq!(CmpPredicate::parse("slt"), Some(CmpPredicate::Lt));
        assert_eq!(CmpPredicate::parse("oge"), Some(CmpPredicate::Ge));
    }

    #[test]
    fn casts_have_requested_types() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let i = const_int(&mut b, 7, Type::i64());
        let idx = index_cast(&mut b, i, Type::Index);
        let f = sitofp(&mut b, i, Type::f64());
        let back = fptosi(&mut b, f, Type::i32());
        assert_eq!(m.value_type(idx), &Type::Index);
        assert_eq!(m.value_type(f), &Type::f64());
        assert_eq!(m.value_type(back), &Type::i32());
    }
}
