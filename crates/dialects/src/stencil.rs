//! The `stencil` dialect from the Open Earth Compiler, as used by xDSL and
//! the paper (Listing 2).
//!
//! Value-semantics stencil computation:
//!
//! * [`EXTERNAL_LOAD`] wraps externally owned storage (the pointer handed
//!   over from the FIR module) into a `!stencil.field`;
//! * [`LOAD`] turns a field into a read-only `!stencil.temp`;
//! * [`APPLY`] maps a multi-dimensional region computation over the iteration
//!   domain implied by its result type's bounds, with [`ACCESS`] reading
//!   relative neighbours (`#stencil.index<0, -1>` offsets) and [`RETURN`]
//!   yielding the per-cell results;
//! * [`STORE`] writes a temp back into a field over given bounds;
//! * [`EXTERNAL_STORE`] copies a field back out to external storage.

use fsc_ir::types::DimBound;
use fsc_ir::{Attribute, BlockId, Module, OpBuilder, OpId, Type, ValueId};

/// `stencil.external_load` — external storage to `!stencil.field`.
pub const EXTERNAL_LOAD: &str = "stencil.external_load";
/// `stencil.external_store` — `!stencil.field` back to external storage.
pub const EXTERNAL_STORE: &str = "stencil.external_store";
/// `stencil.load` — field to temp.
pub const LOAD: &str = "stencil.load";
/// `stencil.apply` — the stencil computation.
pub const APPLY: &str = "stencil.apply";
/// `stencil.access` — relative neighbour read inside an apply.
pub const ACCESS: &str = "stencil.access";
/// `stencil.index` — current iteration index inside an apply.
pub const INDEX: &str = "stencil.index";
/// `stencil.return` — terminator of apply bodies.
pub const RETURN: &str = "stencil.return";
/// `stencil.store` — temp into field over bounds.
pub const STORE: &str = "stencil.store";

/// Build `stencil.external_load` of `source` as a field with `bounds`.
pub fn external_load(
    b: &mut OpBuilder,
    source: ValueId,
    bounds: Vec<DimBound>,
    elem: Type,
) -> ValueId {
    let ty = Type::stencil_field(bounds, elem);
    b.op1(EXTERNAL_LOAD, vec![source], ty, vec![]).1
}

/// Build `stencil.external_store field -> dest`.
pub fn external_store(b: &mut OpBuilder, field: ValueId, dest: ValueId) -> OpId {
    b.op(EXTERNAL_STORE, vec![field, dest], vec![], vec![])
}

/// Build `stencil.load` of a field, producing a temp with the same bounds.
pub fn load(b: &mut OpBuilder, field: ValueId) -> ValueId {
    let (bounds, elem) = match b.module_ref().value_type(field) {
        Type::StencilField { bounds, elem } => (bounds.clone(), (**elem).clone()),
        other => panic!("stencil.load on non-field type {other}"),
    };
    let ty = Type::stencil_temp(bounds, elem);
    b.op1(LOAD, vec![field], ty, vec![]).1
}

/// View of a `stencil.apply`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyOp(pub OpId);

impl ApplyOp {
    /// The apply's input operands (temps and captured scalars).
    pub fn inputs(self, m: &Module) -> Vec<ValueId> {
        m.op(self.0).operands.clone()
    }

    /// Body block; its arguments mirror the inputs 1:1.
    pub fn body(self, m: &Module) -> BlockId {
        let region = m.op(self.0).regions[0];
        m.region_blocks(region)[0]
    }

    /// The iteration-domain bounds, taken from the first result type.
    pub fn output_bounds(self, m: &Module) -> Vec<DimBound> {
        let r = m.op(self.0).results[0];
        m.value_type(r)
            .stencil_bounds()
            .expect("apply result not a temp")
            .to_vec()
    }

    /// The block argument corresponding to input `i`.
    pub fn body_arg(self, m: &Module, i: usize) -> ValueId {
        m.block_args(self.body(m))[i]
    }

    /// The `stencil.return` terminator of the body.
    pub fn return_op(self, m: &Module) -> OpId {
        m.block_terminator(self.body(m))
            .expect("apply body missing return")
    }

    /// Number of grid cells in the iteration domain.
    pub fn domain_cells(self, m: &Module) -> i64 {
        self.output_bounds(m).iter().map(DimBound::extent).product()
    }
}

/// Build a `stencil.apply` whose body block receives one argument per
/// input (same types) and is *not* yet terminated — callers build the body
/// and finish with [`build_return`].
pub fn build_apply(
    b: &mut OpBuilder,
    inputs: Vec<ValueId>,
    result_bounds: Vec<DimBound>,
    result_elems: Vec<Type>,
) -> ApplyOp {
    let result_types: Vec<Type> = result_elems
        .into_iter()
        .map(|e| Type::stencil_temp(result_bounds.clone(), e))
        .collect();
    let arg_types: Vec<Type> = inputs
        .iter()
        .map(|&v| b.module_ref().value_type(v).clone())
        .collect();
    let op = b.op(APPLY, inputs, result_types, vec![]);
    let m = b.module();
    let region = m.add_region(op);
    m.add_block(region, &arg_types);
    ApplyOp(op)
}

/// Build the `stencil.return` terminator of an apply body.
pub fn build_return(b: &mut OpBuilder, values: Vec<ValueId>) -> OpId {
    b.op(RETURN, values, vec![], vec![])
}

/// Build `stencil.access temp[offsets]`; result is the temp's element type.
pub fn access(b: &mut OpBuilder, temp: ValueId, offsets: Vec<i64>) -> ValueId {
    let elem = match b.module_ref().value_type(temp) {
        Type::StencilTemp { elem, .. } => (**elem).clone(),
        other => panic!("stencil.access on non-temp type {other}"),
    };
    b.op1(
        ACCESS,
        vec![temp],
        elem,
        vec![("offset", Attribute::IndexList(offsets))],
    )
    .1
}

/// The constant offset vector of a `stencil.access`.
pub fn access_offset(m: &Module, op: OpId) -> Option<Vec<i64>> {
    if m.op(op).name.full() != ACCESS {
        return None;
    }
    m.op(op)
        .attr("offset")
        .and_then(Attribute::as_index_list)
        .map(<[i64]>::to_vec)
}

/// Build `stencil.index` for dimension `dim` (the current iteration index in
/// that dimension, as an `index` value).
pub fn index(b: &mut OpBuilder, dim: i64) -> ValueId {
    b.op1(
        INDEX,
        vec![],
        Type::Index,
        vec![("dim", Attribute::int(dim))],
    )
    .1
}

/// Build `stencil.store temp -> field` over `[lb, ub)` bounds per dim.
pub fn store(b: &mut OpBuilder, temp: ValueId, field: ValueId, bounds: Vec<DimBound>) -> OpId {
    let lb: Vec<i64> = bounds.iter().map(|d| d.lower).collect();
    let ub: Vec<i64> = bounds.iter().map(|d| d.upper).collect();
    b.op(
        STORE,
        vec![temp, field],
        vec![],
        vec![
            ("lb", Attribute::IndexList(lb)),
            ("ub", Attribute::IndexList(ub)),
        ],
    )
}

/// The inclusive store bounds of a `stencil.store`.
pub fn store_bounds(m: &Module, op: OpId) -> Option<Vec<DimBound>> {
    if m.op(op).name.full() != STORE {
        return None;
    }
    let lb = m.op(op).attr("lb")?.as_index_list()?;
    let ub = m.op(op).attr("ub")?.as_index_list()?;
    Some(
        lb.iter()
            .zip(ub)
            .map(|(&l, &u)| DimBound::new(l, u))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith;
    use fsc_ir::verifier::verify_module;

    /// Build the paper's Listing 2 five-point average stencil and check the
    /// structure round-trips through the views.
    #[test]
    fn listing2_shape() {
        let mut m = Module::new();
        let (_, entry) = crate::func::build_func(&mut m, "stencil_fn", vec![], vec![]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        // Fake external source standing in for the FIR llvm_ptr.
        let src = b
            .op1(
                "test.source",
                vec![],
                Type::LlvmPtr(Some(Box::new(Type::f64()))),
                vec![],
            )
            .1;
        let bounds = vec![DimBound::new(-1, 255), DimBound::new(-1, 255)];
        let field = external_load(&mut b, src, bounds.clone(), Type::f64());
        let temp = load(&mut b, field);
        let out_bounds = vec![DimBound::new(0, 254), DimBound::new(0, 254)];
        let apply = build_apply(&mut b, vec![temp], out_bounds.clone(), vec![Type::f64()]);
        let body = apply.body(&m);
        let data = apply.body_arg(&m, 0);
        let mut bb = OpBuilder::at_end(&mut m, body);
        let c0 = arith::const_f64(&mut bb, 0.25);
        let d0 = access(&mut bb, data, vec![0, -1]);
        let d1 = access(&mut bb, data, vec![0, 1]);
        let d2 = access(&mut bb, data, vec![-1, 0]);
        let d3 = access(&mut bb, data, vec![1, 0]);
        let t0 = arith::addf(&mut bb, d3, d2);
        let t1 = arith::addf(&mut bb, t0, d1);
        let t2 = arith::addf(&mut bb, t1, d0);
        let t3 = arith::mulf(&mut bb, t2, c0);
        build_return(&mut bb, vec![t3]);

        assert_eq!(apply.output_bounds(&m), out_bounds);
        assert_eq!(apply.domain_cells(&m), 255 * 255);
        assert_eq!(apply.inputs(&m), vec![temp]);
        let ret = apply.return_op(&m);
        assert_eq!(m.op(ret).name.full(), RETURN);
        let d0_op = m.defining_op(d0).unwrap();
        assert_eq!(access_offset(&m, d0_op), Some(vec![0, -1]));
        verify_module(&m).unwrap();
    }

    #[test]
    fn store_bounds_roundtrip() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let src = b.op1("test.source", vec![], Type::LlvmPtr(None), vec![]).1;
        let bounds = vec![DimBound::new(-1, 9)];
        let field = external_load(&mut b, src, bounds, Type::f64());
        let temp = load(&mut b, field);
        let sb = vec![DimBound::new(0, 8)];
        let st = store(&mut b, temp, field, sb.clone());
        assert_eq!(store_bounds(&m, st), Some(sb));
        assert_eq!(store_bounds(&m, m.defining_op(temp).unwrap()), None);
    }

    #[test]
    fn load_preserves_bounds() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let src = b.op1("test.source", vec![], Type::LlvmPtr(None), vec![]).1;
        let bounds = vec![DimBound::new(-2, 12), DimBound::new(0, 7)];
        let field = external_load(&mut b, src, bounds.clone(), Type::f32());
        let temp = load(&mut b, field);
        assert_eq!(m.value_type(temp), &Type::stencil_temp(bounds, Type::f32()));
    }

    #[test]
    fn index_op_carries_dim() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let v = index(&mut b, 2);
        let op = m.defining_op(v).unwrap();
        assert_eq!(m.op(op).attr("dim").unwrap().as_int(), Some(2));
        assert_eq!(m.value_type(v), &Type::Index);
    }
}
