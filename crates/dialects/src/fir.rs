//! The `fir` dialect — Flang's Fortran IR.
//!
//! This models the FIR subset that `flang -fc1 -emit-mlir` produces for the
//! benchmark codes of the paper: stack/heap array allocation, scalar
//! load/store through `!fir.ref`, array addressing via `fir.coordinate_of`,
//! counted `fir.do_loop`s (with Fortran's *inclusive* upper bound), value
//! conversions and the `fir.no_reassoc` reassociation barrier that the
//! extraction pass must translate away (§3).

use fsc_ir::{Attribute, BlockId, Module, OpBuilder, OpId, Type, ValueId};

/// `fir.alloca` — stack allocation, result `!fir.ref<T>`.
pub const ALLOCA: &str = "fir.alloca";
/// `fir.allocmem` — heap allocation, result `!fir.heap<T>`.
pub const ALLOCMEM: &str = "fir.allocmem";
/// `fir.freemem` — free a heap allocation.
pub const FREEMEM: &str = "fir.freemem";
/// `fir.load` — load through a reference.
pub const LOAD: &str = "fir.load";
/// `fir.store` — store through a reference.
pub const STORE: &str = "fir.store";
/// `fir.coordinate_of` — address of an array element.
pub const COORDINATE_OF: &str = "fir.coordinate_of";
/// `fir.convert` — value conversion between FIR/standard types.
pub const CONVERT: &str = "fir.convert";
/// `fir.do_loop` — counted loop, upper bound inclusive.
pub const DO_LOOP: &str = "fir.do_loop";
/// `fir.result` — terminator of `fir.do_loop` bodies.
pub const RESULT: &str = "fir.result";
/// `fir.no_reassoc` — blocks operator reassociation across it.
pub const NO_REASSOC: &str = "fir.no_reassoc";
/// `fir.call` — call into another (possibly separately compiled) function.
pub const CALL: &str = "fir.call";
/// `fir.if` — two-armed conditional with `fir.result` terminators.
pub const IF: &str = "fir.if";

/// Build `fir.alloca` for a variable of `in_type`, with the Fortran-level
/// name kept in `bindc_name` for diagnostics.
pub fn alloca(b: &mut OpBuilder, name: &str, in_type: Type) -> ValueId {
    b.op1(
        ALLOCA,
        vec![],
        Type::fir_ref(in_type.clone()),
        vec![
            ("in_type", Attribute::Type(in_type)),
            ("bindc_name", Attribute::string(name)),
        ],
    )
    .1
}

/// Build `fir.allocmem` for a heap array of `in_type`.
pub fn allocmem(b: &mut OpBuilder, name: &str, in_type: Type) -> ValueId {
    b.op1(
        ALLOCMEM,
        vec![],
        Type::fir_heap(in_type.clone()),
        vec![
            ("in_type", Attribute::Type(in_type)),
            ("bindc_name", Attribute::string(name)),
        ],
    )
    .1
}

/// Build `fir.freemem`.
pub fn freemem(b: &mut OpBuilder, heap: ValueId) -> OpId {
    b.op(FREEMEM, vec![heap], vec![], vec![])
}

/// Build `fir.load` from a `!fir.ref<T>` / `!fir.heap<T>`, producing `T`.
pub fn load(b: &mut OpBuilder, reference: ValueId) -> ValueId {
    let elem = b
        .module_ref()
        .value_type(reference)
        .elem_type()
        .expect("fir.load on non-reference")
        .clone();
    b.op1(LOAD, vec![reference], elem, vec![]).1
}

/// Build `fir.store value to ref`.
pub fn store(b: &mut OpBuilder, value: ValueId, reference: ValueId) -> OpId {
    b.op(STORE, vec![value, reference], vec![], vec![])
}

/// Build `fir.coordinate_of array[indices...]`, producing a reference to
/// the element. Indices are zero-based `index` values; the Fortran frontend
/// emits the 1-based → 0-based arithmetic explicitly (as Flang does).
pub fn coordinate_of(b: &mut OpBuilder, array_ref: ValueId, indices: Vec<ValueId>) -> ValueId {
    let arr_ty = b.module_ref().value_type(array_ref).clone();
    let elem = match arr_ty.elem_type() {
        Some(Type::FirArray { elem, .. }) => (**elem).clone(),
        Some(other) => other.clone(),
        None => panic!("fir.coordinate_of on non-reference type {arr_ty}"),
    };
    let mut operands = vec![array_ref];
    operands.extend(indices);
    b.op1(COORDINATE_OF, operands, Type::fir_ref(elem), vec![])
        .1
}

/// Build `fir.convert` to the given type.
pub fn convert(b: &mut OpBuilder, value: ValueId, to: Type) -> ValueId {
    b.op1(CONVERT, vec![value], to, vec![]).1
}

/// Build `fir.no_reassoc` (same type in and out).
pub fn no_reassoc(b: &mut OpBuilder, value: ValueId) -> ValueId {
    let ty = b.module_ref().value_type(value).clone();
    b.op1(NO_REASSOC, vec![value], ty, vec![]).1
}

/// Build `fir.call @callee(args)`.
pub fn call(b: &mut OpBuilder, callee: &str, args: Vec<ValueId>, result_types: Vec<Type>) -> OpId {
    b.op(
        CALL,
        args,
        result_types,
        vec![("callee", Attribute::symbol(callee))],
    )
}

/// View of a `fir.do_loop`: operands `[lb, ub, step]` with **inclusive**
/// upper bound (Fortran `do i = lb, ub`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoLoopOp(pub OpId);

impl DoLoopOp {
    /// Lower bound operand.
    pub fn lb(self, m: &Module) -> ValueId {
        m.op(self.0).operands[0]
    }

    /// Inclusive upper bound operand.
    pub fn ub(self, m: &Module) -> ValueId {
        m.op(self.0).operands[1]
    }

    /// Step operand.
    pub fn step(self, m: &Module) -> ValueId {
        m.op(self.0).operands[2]
    }

    /// Body block.
    pub fn body(self, m: &Module) -> BlockId {
        let region = m.op(self.0).regions[0];
        m.region_blocks(region)[0]
    }

    /// Induction variable.
    pub fn iv(self, m: &Module) -> ValueId {
        m.block_args(self.body(m))[0]
    }

    /// Ops in the body excluding the `fir.result` terminator.
    pub fn body_ops(self, m: &Module) -> Vec<OpId> {
        m.block_ops(self.body(m))
            .into_iter()
            .filter(|&o| m.op(o).name.full() != RESULT)
            .collect()
    }
}

/// Build a `fir.do_loop lb..=ub step` with an empty body terminated by
/// `fir.result`.
pub fn build_do_loop(b: &mut OpBuilder, lb: ValueId, ub: ValueId, step: ValueId) -> DoLoopOp {
    let op = b.op(DO_LOOP, vec![lb, ub, step], vec![], vec![]);
    let m = b.module();
    let region = m.add_region(op);
    let body = m.add_block(region, &[Type::Index]);
    let r = m.create_op(RESULT, vec![], vec![], vec![]);
    m.append_op(body, r);
    DoLoopOp(op)
}

/// A builder positioned just before the `fir.result` terminator of a loop
/// body.
pub fn body_builder(m: &mut Module, loop_op: DoLoopOp) -> OpBuilder<'_> {
    let body = loop_op.body(m);
    let term = m
        .block_terminator(body)
        .expect("do_loop body missing terminator");
    OpBuilder::before(m, term)
}

/// View of a `fir.if`: one `i1` condition operand, then- and else-regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IfOp(pub OpId);

impl IfOp {
    /// Condition operand.
    pub fn condition(self, m: &Module) -> ValueId {
        m.op(self.0).operands[0]
    }

    /// Then-block.
    pub fn then_block(self, m: &Module) -> BlockId {
        let region = m.op(self.0).regions[0];
        m.region_blocks(region)[0]
    }

    /// Else-block (always present; possibly empty apart from the terminator).
    pub fn else_block(self, m: &Module) -> BlockId {
        let region = m.op(self.0).regions[1];
        m.region_blocks(region)[0]
    }
}

/// Build a `fir.if cond` with empty then/else regions terminated by
/// `fir.result`.
pub fn build_if(b: &mut OpBuilder, cond: ValueId) -> IfOp {
    let op = b.op(IF, vec![cond], vec![], vec![]);
    let m = b.module();
    for _ in 0..2 {
        let region = m.add_region(op);
        let block = m.add_block(region, &[]);
        let r = m.create_op(RESULT, vec![], vec![], vec![]);
        m.append_op(block, r);
    }
    IfOp(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith;
    use fsc_ir::verifier::verify_module;

    #[test]
    fn alloca_produces_ref_type() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let arr_ty = Type::fir_array(vec![10, 10], Type::f64());
        let r = alloca(&mut b, "data", arr_ty.clone());
        assert_eq!(m.value_type(r), &Type::fir_ref(arr_ty.clone()));
        let op = m.defining_op(r).unwrap();
        assert_eq!(op_attr_type(&m, op, "in_type"), Some(arr_ty));
        assert_eq!(m.op(op).attr("bindc_name").unwrap().as_str(), Some("data"));
    }

    fn op_attr_type(m: &Module, op: OpId, name: &str) -> Option<Type> {
        m.op(op).attr(name).and_then(Attribute::as_type).cloned()
    }

    #[test]
    fn load_store_through_scalar_ref() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let r = alloca(&mut b, "x", Type::f64());
        let v = arith::const_f64(&mut b, 3.5);
        store(&mut b, v, r);
        let loaded = load(&mut b, r);
        assert_eq!(m.value_type(loaded), &Type::f64());
        verify_module(&m).unwrap();
    }

    #[test]
    fn coordinate_of_peels_array_type() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let arr = alloca(&mut b, "a", Type::fir_array(vec![4, 4], Type::f64()));
        let i = arith::const_index(&mut b, 1);
        let j = arith::const_index(&mut b, 2);
        let elem_ref = coordinate_of(&mut b, arr, vec![i, j]);
        assert_eq!(m.value_type(elem_ref), &Type::fir_ref(Type::f64()));
    }

    #[test]
    fn coordinate_of_on_heap_array() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let arr = allocmem(&mut b, "h", Type::fir_array(vec![8], Type::f64()));
        let i = arith::const_index(&mut b, 0);
        let elem_ref = coordinate_of(&mut b, arr, vec![i]);
        assert_eq!(m.value_type(elem_ref), &Type::fir_ref(Type::f64()));
        let mut b = OpBuilder::at_end(&mut m, top);
        freemem(&mut b, arr);
        verify_module(&m).unwrap();
    }

    #[test]
    fn do_loop_view_and_body_builder() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let lb = arith::const_index(&mut b, 1);
        let ub = arith::const_index(&mut b, 10);
        let one = arith::const_index(&mut b, 1);
        let lp = build_do_loop(&mut b, lb, ub, one);
        assert_eq!(lp.lb(&m), lb);
        assert_eq!(lp.ub(&m), ub);
        assert_eq!(m.value_type(lp.iv(&m)), &Type::Index);
        assert!(lp.body_ops(&m).is_empty());
        let mut bb = body_builder(&mut m, lp);
        arith::const_f64(&mut bb, 0.0);
        assert_eq!(lp.body_ops(&m).len(), 1);
        verify_module(&m).unwrap();
    }

    #[test]
    fn convert_and_no_reassoc_types() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let i = arith::const_int(&mut b, 5, Type::i32());
        let conv = convert(&mut b, i, Type::i64());
        let f = arith::const_f64(&mut b, 1.0);
        let nr = no_reassoc(&mut b, f);
        assert_eq!(m.value_type(conv), &Type::i64());
        assert_eq!(m.value_type(nr), &Type::f64());
    }
}
