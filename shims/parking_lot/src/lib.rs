//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Differences from the real crate that matter here:
//! * `lock()` returns the guard directly (no poisoning `Result`) — poisoned
//!   std locks are recovered with `into_inner`, matching parking_lot's
//!   poison-free semantics.
//! * `Condvar::wait` takes `&mut MutexGuard` like parking_lot, emulated by
//!   temporarily moving the inner std guard out and back.

use std::sync;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Always `Some` outside `Condvar::wait`; `Option` only so `wait` can
    // move the std guard through `std::sync::Condvar::wait`.
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { guard: Some(guard) }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks until notified or until `timeout` elapses, mirroring
    /// parking_lot's `wait_for`. Returns a result whose `timed_out()`
    /// reports whether the wait ended by timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.guard.take().expect("guard present");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(std_guard);
        WaitTimeoutResult(res.timed_out())
    }

    /// Blocks until notified. Mirrors parking_lot's `&mut guard` API on top
    /// of std's guard-consuming `wait`.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(std_guard);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Result of [`Condvar::wait_for`], mirroring parking_lot's type.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_barrier() {
        let state = Arc::new((Mutex::new(0usize), Condvar::new()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let state = Arc::clone(&state);
            handles.push(std::thread::spawn(move || {
                let (lock, cv) = &*state;
                let mut count = lock.lock();
                *count += 1;
                if *count == 4 {
                    cv.notify_all();
                } else {
                    while *count < 4 {
                        cv.wait(&mut count);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*state.0.lock(), 4);
    }
}
