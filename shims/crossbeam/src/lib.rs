//! Offline stand-in for `crossbeam`, providing the `channel` module the
//! MPI-sim runtime uses, backed by `std::sync::mpsc`.
//!
//! `std::sync::mpsc::Sender` has been `Sync` since Rust 1.72, so sharing a
//! `Vec<Sender<T>>` behind an `Arc` across rank threads works exactly as it
//! does with crossbeam's channels.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::RecvTimeoutError;

    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocks for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }
    }

    /// Unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }
    }
}
