//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace vendors the small slice of rayon's API it actually uses:
//!
//! * [`ThreadPool`] / [`ThreadPoolBuilder`] with `install`, `scope`, and
//!   `current_num_threads`,
//! * a [`prelude`] with `par_chunks_mut` and the iterator adaptors
//!   (`enumerate`, `filter`, `zip`, `for_each`) the hand-written OpenMP
//!   baseline relies on.
//!
//! Work submitted through [`Scope::spawn`] and the terminal `for_each` runs
//! on real OS threads (bounded by the pool size / available parallelism), so
//! work-sharing semantics match rayon closely enough for both correctness
//! tests and thread-scaling measurements. Scheduling is static batching
//! rather than work stealing; for the slab-sized tasks this workspace
//! spawns, that is indistinguishable.

use std::num::NonZeroUsize;

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Error type returned by [`ThreadPoolBuilder::build`]. The shim cannot fail
/// to build a pool, so this is uninhabited in practice but keeps signatures
/// source-compatible.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` means "use all available parallelism", matching rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => available_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { threads: n.max(1) })
    }
}

/// A lightweight pool handle. Threads are spawned per scope rather than kept
/// alive between calls; the pool records the concurrency budget.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with this pool as the implicit parallelism context. The shim
    /// has no thread-local registry, so this simply invokes the closure; the
    /// parallel-iterator adaptors size themselves from available
    /// parallelism.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        f()
    }

    /// Structured-concurrency scope: closures handed to [`Scope::spawn`] run
    /// on real threads and are all joined before `scope` returns.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        std::thread::scope(|s| {
            let scope = Scope {
                inner: s,
                budget: self.threads,
            };
            f(&scope)
        })
    }
}

/// Scope handle passed to the closure given to [`ThreadPool::scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    budget: usize,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let budget = self.budget;
        let inner = self.inner;
        inner.spawn(move || {
            let scope = Scope { inner, budget };
            f(&scope);
        });
    }
}

pub mod iter {
    //! Minimal parallel-iterator surface: adaptors wrap standard sequential
    //! iterators, and the terminal `for_each` distributes the collected
    //! items over a statically batched thread team.

    use super::available_threads;

    /// Parallel iterator over items produced by a wrapped sequential
    /// iterator. Items must be `Send` so the terminal `for_each` can hand
    /// them to worker threads.
    pub struct ParIter<I> {
        inner: I,
    }

    impl<I> ParIter<I>
    where
        I: Iterator,
        I::Item: Send,
    {
        pub(crate) fn new(inner: I) -> Self {
            Self { inner }
        }

        pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
            ParIter::new(self.inner.enumerate())
        }

        pub fn filter<P>(self, predicate: P) -> ParIter<std::iter::Filter<I, P>>
        where
            P: FnMut(&I::Item) -> bool,
        {
            ParIter::new(self.inner.filter(predicate))
        }

        pub fn zip<J>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>>
        where
            J: Iterator,
            J::Item: Send,
        {
            ParIter::new(self.inner.zip(other.inner))
        }

        pub fn for_each<F>(self, op: F)
        where
            F: Fn(I::Item) + Send + Sync,
        {
            let mut items: Vec<I::Item> = self.inner.collect();
            let workers = available_threads().min(items.len()).max(1);
            if workers <= 1 {
                for item in items {
                    op(item);
                }
                return;
            }
            // Static contiguous batching: peel off `chunk`-sized batches so
            // each worker owns its items outright.
            let chunk = items.len().div_ceil(workers);
            let mut batches: Vec<Vec<I::Item>> = Vec::with_capacity(workers);
            while !items.is_empty() {
                let take = chunk.min(items.len());
                let rest = items.split_off(take);
                batches.push(std::mem::replace(&mut items, rest));
            }
            let op = &op;
            std::thread::scope(|s| {
                for batch in batches {
                    s.spawn(move || {
                        for item in batch {
                            op(item);
                        }
                    });
                }
            });
        }
    }
}

pub mod prelude {
    pub use crate::slice::ParallelSliceMut;
}

pub mod slice {
    use crate::iter::ParIter;

    /// Extension trait providing `par_chunks_mut`, mirroring
    /// `rayon::slice::ParallelSliceMut`.
    pub trait ParallelSliceMut<T: Send> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
            ParIter::new(self.chunks_mut(chunk_size))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn scope_spawns_run_and_join() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let mut data = vec![0u64; 4];
        pool.scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u64 + 1);
            }
        });
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn par_chunks_mut_pipeline_matches_sequential() {
        let mut a = (0..100u64).collect::<Vec<_>>();
        let mut b = (0..100u64).rev().collect::<Vec<_>>();
        a.par_chunks_mut(7)
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .zip(b.par_chunks_mut(7))
            .for_each(|((_, ca), cb)| {
                for (x, y) in ca.iter_mut().zip(cb.iter_mut()) {
                    *x += 1;
                    *y += 1;
                }
            });
        // Even-indexed chunks of `a` incremented, zipped against the leading
        // chunks of `b`.
        assert_eq!(a[0], 1);
        assert_eq!(a[7], 7); // odd chunk untouched
        assert_eq!(a[14], 15);
    }
}
