//! Offline stand-in for `proptest`.
//!
//! The workspace's property tests use a modest slice of proptest's API:
//! strategies over integer ranges, tuples, `Just`, `any`,
//! `prop::collection::vec`, simple regex-class string patterns,
//! `prop_oneof!`, the `prop_map`/`prop_filter` adaptors, and the
//! `proptest!` test macro with an optional `#![proptest_config(...)]`.
//! This crate reimplements exactly that surface on a deterministic
//! xorshift RNG (seeded from the test name), so failures are reproducible
//! run-to-run. There is no shrinking: a failing case prints its generated
//! inputs and panics.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic xorshift64* generator.
    pub struct TestRng(u64);

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            // Avoid the all-zero fixed point.
            Self(seed | 0x9e37_79b9_7f4a_7c15)
        }

        /// Seeds from a test name via FNV-1a so every test gets a distinct
        /// but stable stream.
        pub fn from_seed_str(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform-ish draw in `[0, span)`; the modulo bias is irrelevant at
        /// the spans property tests use.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            self.next_u64() % span
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values. Unlike real proptest there is no value tree
    /// or shrinking; `generate` draws one concrete value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 10000 candidates", self.whence);
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Uniform choice between boxed alternative strategies — the engine
    /// behind `prop_oneof!`. Arms are reference-counted so unions stay
    /// `Clone` (tests clone composed strategies freely).
    pub struct Union<V> {
        arms: Vec<Rc<dyn Strategy<Value = V>>>,
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Self {
                arms: self.arms.clone(),
            }
        }
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<Rc<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Helper used by `prop_oneof!` to coerce each arm to a trait object.
    pub fn union_arm<S: Strategy + 'static>(s: S) -> Rc<dyn Strategy<Value = S::Value>> {
        Rc::new(s)
    }

    /// Pattern strategies: a `&str` is interpreted as a tiny regex subset —
    /// a single character class with an optional `{m,n}` repetition, e.g.
    /// `"[ -~\n]{0,300}"`. That is the only shape the workspace's tests
    /// use; anything else panics loudly rather than misgenerating.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (ranges, min, max) = parse_class_pattern(self);
            let len = min + rng.below((max - min + 1) as u64) as usize;
            let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
            let mut out = String::with_capacity(len);
            for _ in 0..len {
                let mut pick = rng.below(total as u64) as u32;
                for (a, b) in &ranges {
                    let size = *b as u32 - *a as u32 + 1;
                    if pick < size {
                        out.push(char::from_u32(*a as u32 + pick).expect("valid char"));
                        break;
                    }
                    pick -= size;
                }
            }
            out
        }
    }

    /// Parses `[class]{m,n}` into (char ranges, m, n).
    fn parse_class_pattern(pat: &str) -> (Vec<(char, char)>, usize, usize) {
        let bad = || {
            panic!(
                "proptest shim: unsupported string pattern {pat:?} (expected \"[class]{{m,n}}\")"
            )
        };
        let mut chars = pat.chars().peekable();
        if chars.next() != Some('[') {
            bad();
        }
        let mut items: Vec<char> = Vec::new();
        let mut ranges: Vec<(char, char)> = Vec::new();
        loop {
            let c = match chars.next() {
                Some(']') => break,
                Some('\\') => match chars.next() {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some('r') => '\r',
                    Some(c @ ('\\' | ']' | '[' | '-' | '^')) => c,
                    _ => return bad(),
                },
                Some(c) => c,
                None => return bad(),
            };
            if chars.peek() == Some(&'-') {
                let mut look = chars.clone();
                look.next(); // consume '-'
                match look.peek() {
                    Some(&']') | None => items.push(c), // trailing literal '-'
                    _ => {
                        chars.next(); // '-'
                        let hi = match chars.next() {
                            Some('\\') => match chars.next() {
                                Some('n') => '\n',
                                Some(c2 @ ('\\' | ']' | '[' | '-')) => c2,
                                _ => return bad(),
                            },
                            Some(c2) => c2,
                            None => return bad(),
                        };
                        ranges.push((c, hi));
                        continue;
                    }
                }
            } else {
                items.push(c);
            }
        }
        for c in items {
            ranges.push((c, c));
        }
        // Optional {m,n} / {m} repetition; default is exactly one.
        let rest: String = chars.collect();
        let (min, max) = if rest.is_empty() {
            (1, 1)
        } else if rest.starts_with('{') && rest.ends_with('}') {
            let body = &rest[1..rest.len() - 1];
            if let Some((a, b)) = body.split_once(',') {
                match (a.trim().parse(), b.trim().parse()) {
                    (Ok(a), Ok(b)) => (a, b),
                    _ => return bad(),
                }
            } else {
                match body.trim().parse() {
                    Ok(m) => (m, m),
                    _ => return bad(),
                }
            }
        } else {
            return bad();
        };
        if ranges.is_empty() || min > max {
            bad();
        }
        (ranges, min, max)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Size specification for [`vec`]: a range or an exact count.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize, // inclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// The proptest test macro: runs each embedded `fn` as a `#[test]`
/// repeating its body over `config.cases` generated inputs. Failing cases
/// print the generated inputs before propagating the panic (no shrinking).
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_seed_str(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let case_desc = {
                    let mut d = String::new();
                    $(d.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &$arg
                    ));)+
                    d
                };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || { $body }
                ));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest shim: {} failed on case {}/{} with inputs:\n{}",
                        stringify!($name), case + 1, config.cases, case_desc
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_arm($arm)),+])
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors real proptest's `prelude::prop` module alias, giving tests
    /// the `prop::collection::vec(...)` path.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        Small(i64),
        Fixed,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in -4i64..=4, b in 2u32..5, c in 0usize..16) {
            prop_assert!((-4..=4).contains(&a));
            prop_assert!((2..5).contains(&b));
            prop_assert!(c < 16);
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0i64..10, Just(2i32)), 1..6),
            p in prop_oneof![(1i64..4).prop_map(Pick::Small), Just(Pick::Fixed)],
            s in "[a-c]{2,5}",
            x in any::<i32>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|(a, b)| (0..10).contains(a) && *b == 2));
            match p {
                Pick::Small(k) => prop_assert!((1..4).contains(&k)),
                Pick::Fixed => {}
            }
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let _ = x;
        }
    }

    #[test]
    fn filter_retries_until_accepted() {
        let strat = (0i64..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = crate::test_runner::TestRng::from_seed(7);
        for _ in 0..50 {
            assert_eq!(crate::strategy::Strategy::generate(&strat, &mut rng) % 2, 0);
        }
    }

    #[test]
    fn pattern_with_escapes_and_printables() {
        let mut rng = crate::test_runner::TestRng::from_seed(3);
        let s = crate::strategy::Strategy::generate(&"[ -~\\n]{0,300}", &mut rng);
        assert!(s.len() <= 300);
        assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
    }
}
