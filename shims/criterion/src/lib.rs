//! Offline stand-in for `criterion`.
//!
//! Implements the subset of criterion's API the workspace benches use —
//! `Criterion::default().sample_size(n)`, `benchmark_group`,
//! `bench_function`, `BenchmarkId::new`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — as a small wall-clock
//! harness: each benchmark is warmed up once, then timed over
//! `sample_size` samples, reporting min/mean per-iteration time to stdout.
//! There is no statistical analysis or HTML report; benches exist in this
//! workspace to print comparable numbers, not publish-grade statistics.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&id.to_string(), self.sample_size, f);
        self
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.criterion.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One warm-up iteration, then `sample_size` timed samples.
        std_black_box(routine());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std_black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label}: no samples");
        return;
    }
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "{label}: mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        b.samples.len()
    );
}

/// Mirrors criterion's `criterion_group!` in both its simple and
/// `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Mirrors criterion's `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("shim");
        let mut count = 0u64;
        g.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        g.finish();
        // 1 warmup + 3 samples.
        assert_eq!(count, 4);
    }
}
