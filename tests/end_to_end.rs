//! Cross-crate integration tests: every execution target must produce the
//! same numbers as the clarity-first reference implementations, for both of
//! the paper's benchmarks.

use flang_stencil::core::{CompileOptions, Compiler, Target};
use flang_stencil::workloads::verify::assert_fields_match;
use flang_stencil::workloads::{gauss_seidel, pw_advection};

fn run_gs(n: usize, iters: usize, target: Target) -> flang_stencil::core::Execution {
    let source = gauss_seidel::fortran_source(n, iters);
    Compiler::run(
        &source,
        &CompileOptions {
            target,
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .expect("run failed")
}

fn run_pw(n: usize, target: Target) -> flang_stencil::core::Execution {
    let source = pw_advection::fortran_source(n);
    Compiler::run(
        &source,
        &CompileOptions {
            target,
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .expect("run failed")
}

#[test]
fn gauss_seidel_flang_only_matches_reference() {
    let exec = run_gs(6, 3, Target::FlangOnly);
    let expect = gauss_seidel::reference(6, 3);
    assert_fields_match(
        exec.array("u").unwrap(),
        &expect.data,
        1e-12,
        "flang-only gs",
    );
    assert_eq!(exec.report.kernel_cells, 0, "no kernels in the flang path");
}

#[test]
fn gauss_seidel_stencil_cpu_matches_reference() {
    let exec = run_gs(6, 3, Target::StencilCpu);
    let expect = gauss_seidel::reference(6, 3);
    assert_fields_match(exec.array("u").unwrap(), &expect.data, 1e-12, "stencil gs");
    assert!(
        exec.report.kernel_cells > 0,
        "stencil kernels must have run"
    );
}

#[test]
fn gauss_seidel_openmp_matches_reference() {
    let exec = run_gs(8, 3, Target::StencilOpenMp { threads: 4 });
    let expect = gauss_seidel::reference(8, 3);
    assert_fields_match(exec.array("u").unwrap(), &expect.data, 1e-12, "openmp gs");
}

#[test]
fn gauss_seidel_gpu_both_strategies_match_reference() {
    for explicit in [false, true] {
        let exec = run_gs(
            6,
            3,
            Target::StencilGpu {
                explicit_data: explicit,
                tile: [8, 8, 1],
            },
        );
        let expect = gauss_seidel::reference(6, 3);
        assert_fields_match(
            exec.array("u").unwrap(),
            &expect.data,
            1e-12,
            &format!("gpu gs explicit={explicit}"),
        );
        let gpu_s = exec.report.gpu_seconds.expect("gpu model must report time");
        assert!(gpu_s > 0.0);
    }
}

#[test]
fn gauss_seidel_distributed_matches_reference() {
    let exec = run_gs(8, 2, Target::StencilDistributed { grid: vec![2, 2] });
    let expect = gauss_seidel::reference(8, 2);
    assert_fields_match(exec.array("u").unwrap(), &expect.data, 1e-12, "dmp gs");
    assert!(exec.report.distributed_seconds.unwrap() > 0.0);
    assert_eq!(exec.report.ranks, Some(4));
}

#[test]
fn pw_advection_all_cpu_targets_match_reference() {
    let (u, v, w) = pw_advection::initial_fields(6);
    let (su, sv, sw) = pw_advection::reference(&u, &v, &w);
    for target in [
        Target::FlangOnly,
        Target::StencilCpu,
        Target::StencilOpenMp { threads: 3 },
    ] {
        let label = format!("{target:?}");
        let exec = run_pw(6, target);
        assert_fields_match(
            exec.array("su").unwrap(),
            &su.data,
            1e-12,
            &format!("{label} su"),
        );
        assert_fields_match(
            exec.array("sv").unwrap(),
            &sv.data,
            1e-12,
            &format!("{label} sv"),
        );
        assert_fields_match(
            exec.array("sw").unwrap(),
            &sw.data,
            1e-12,
            &format!("{label} sw"),
        );
    }
}

#[test]
fn pw_advection_gpu_matches_reference() {
    let (u, v, w) = pw_advection::initial_fields(6);
    let (su, _, _) = pw_advection::reference(&u, &v, &w);
    let exec = run_pw(
        6,
        Target::StencilGpu {
            explicit_data: true,
            tile: [8, 8, 1],
        },
    );
    assert_fields_match(exec.array("su").unwrap(), &su.data, 1e-12, "gpu pw su");
}

#[test]
fn pw_fusion_produces_single_region_with_three_outputs() {
    let source = pw_advection::fortran_source(6);
    let compiled = Compiler::compile(
        &source,
        &CompileOptions {
            target: Target::StencilCpu,
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .unwrap();
    // One connected region (init + fused compute share the field views);
    // inside it, the three compute stencils fused into one nest with three
    // outputs.
    assert_eq!(compiled.kernels.len(), 1, "{:?}", compiled.kernels.keys());
    let kernel = compiled.kernels.values().next().unwrap();
    let compute = kernel
        .nests
        .iter()
        .find(|n| n.out_views.len() == 3 && n.program.flops_per_cell >= 55)
        .expect("fused compute nest with three outputs");
    assert_eq!(compute.program.stores_per_cell, 3);
    // The init nest fused its three stores too.
    let init = kernel
        .nests
        .iter()
        .find(|n| n.program.loads_per_cell == 0)
        .expect("init nest with no array reads");
    assert_eq!(init.out_views.len(), 3);
}

#[test]
fn flop_accounting_pins_paper_counts_and_specialized_path() {
    use flang_stencil::exec::ExecPath;
    // Gauss–Seidel compute: 5 adds + 1 divide = 6 flops per cell (§4.1).
    let source = gauss_seidel::fortran_source(6, 2);
    let compiled = Compiler::compile(
        &source,
        &CompileOptions {
            target: Target::StencilCpu,
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .unwrap();
    let gs_compute = compiled
        .kernels
        .values()
        .flat_map(|k| &k.nests)
        .find(|n| n.program.loads_per_cell == 6)
        .expect("GS compute nest");
    assert_eq!(
        gs_compute.program.flops_per_cell,
        gauss_seidel::FLOPS_PER_CELL
    );
    assert_eq!(
        gs_compute.path,
        ExecPath::Specialized,
        "GS compute must specialize"
    );

    // PW fused advection: 21 ops per statement × 3 statements = 63 (§4.1).
    let source = pw_advection::fortran_source(6);
    let compiled = Compiler::compile(
        &source,
        &CompileOptions {
            target: Target::StencilCpu,
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .unwrap();
    let pw_compute = compiled
        .kernels
        .values()
        .flat_map(|k| &k.nests)
        .find(|n| n.out_views.len() == 3 && n.program.loads_per_cell > 0)
        .expect("PW fused compute nest");
    assert_eq!(
        pw_compute.program.flops_per_cell,
        pw_advection::FLOPS_PER_CELL
    );
    assert_eq!(
        pw_compute.path,
        ExecPath::Specialized,
        "PW compute must specialize"
    );
}

#[test]
fn report_attests_specialized_path_for_both_benchmarks() {
    use flang_stencil::exec::ExecPath;
    let gs = run_gs(6, 2, Target::StencilCpu);
    assert!(
        gs.report.attests(ExecPath::Specialized),
        "{:?}",
        gs.report.exec_paths
    );
    let pw = run_pw(6, Target::StencilCpu);
    assert!(
        pw.report.attests(ExecPath::Specialized),
        "{:?}",
        pw.report.exec_paths
    );
    // Flang-only runs no kernels at all, so it attests nothing.
    let flang = run_gs(6, 2, Target::FlangOnly);
    assert!(flang.report.exec_paths.is_empty());
}

#[test]
fn empty_interior_is_skipped_on_all_cpu_paths() {
    // n = 0: the arrays are pure halo (extent 0:1 per dimension, n ≤ 2·halo)
    // and the compute nests' `do i = 1, n` have no iterations. Both kernel
    // runners must skip the zero-cell nests — without panicking and without
    // touching the (still initialised) halo.
    let source = gauss_seidel::fortran_source(0, 2);
    let flang = Compiler::run(
        &source,
        &CompileOptions {
            target: Target::FlangOnly,
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .unwrap();
    let expect = flang.array("u").unwrap().to_vec();
    assert_eq!(expect.len(), 8, "2x2x2 halo-only field");
    for target in [Target::StencilCpu, Target::UnoptimizedCpu] {
        let label = format!("{target:?}");
        let exec = Compiler::run(
            &source,
            &CompileOptions {
                target,
                verify_each_pass: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_fields_match(exec.array("u").unwrap(), &expect, 0.0, &label);
    }
}

#[test]
fn degenerate_grids_run_clean_through_the_discovery_path() {
    // n = 0 (zero-extent interior) and n = 1 (one-cell interior) must go
    // through the *full* pipeline — discovery, lowering, and kernel exec,
    // on every target — without degrading to a fallback rung, without
    // underflowing bound arithmetic, and bit-identical to the Flang-only
    // interpretation of the same program.
    for n in [0usize, 1] {
        let source = gauss_seidel::fortran_source(n, 2);
        let flang = Compiler::run(&source, &CompileOptions::for_target(Target::FlangOnly)).unwrap();
        let expect = flang.array("u").unwrap().to_vec();
        for target in [
            Target::StencilCpu,
            Target::StencilOpenMp { threads: 2 },
            Target::StencilGpu {
                explicit_data: true,
                tile: [4, 4, 1],
            },
            // A single-rank grid: the distributed pipeline still runs in
            // full (swaps, exchanges with no neighbours, scatter/gather),
            // but multi-rank grids over a 0- or 1-cell interior are now an
            // E0506 oversubscription error by design.
            Target::StencilDistributed { grid: vec![1] },
        ] {
            let label = format!("n={n} {target:?}");
            let exec = Compiler::run(&source, &CompileOptions::for_target(target.clone())).unwrap();
            // The stencil path itself must have handled the degenerate
            // nest: any rejection would show up as a degradation attempt.
            assert!(
                exec.report.degradation.attempts.is_empty(),
                "{label}: {}",
                exec.report.degradation.describe()
            );
            assert_fields_match(exec.array("u").unwrap(), &expect, 0.0, &label);
        }
    }
}

#[test]
fn non_harmonic_field_evolves_identically_across_targets() {
    // A quadratic initial field is NOT a fixed point of the neighbour
    // average, so this catches any path that silently skips the compute or
    // copy nest (the harmonic analytic init would mask that).
    let source = "
program quad
  implicit none
  integer, parameter :: n = 8
  integer :: i, j, k, t
  real(kind=8) :: u(0:n+1, 0:n+1, 0:n+1), un(0:n+1, 0:n+1, 0:n+1)
  do k = 0, n+1
    do j = 0, n+1
      do i = 0, n+1
        u(i, j, k) = 0.5 * i * i + 0.25 * j + 0.125 * k
      end do
    end do
  end do
  do t = 1, 3
    do k = 1, n
      do j = 1, n
        do i = 1, n
          un(i, j, k) = (u(i-1, j, k) + u(i+1, j, k) + u(i, j-1, k) &
                       + u(i, j+1, k) + u(i, j, k-1) + u(i, j, k+1)) / 6.0
        end do
      end do
    end do
    do k = 1, n
      do j = 1, n
        do i = 1, n
          u(i, j, k) = un(i, j, k)
        end do
      end do
    end do
  end do
end program quad
";
    let flang = Compiler::run(
        source,
        &CompileOptions {
            target: Target::FlangOnly,
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .unwrap();
    let reference = flang.array("u").unwrap().to_vec();
    // The field must actually have changed (non-harmonic!).
    let mut initial = vec![0.0f64; 10 * 10 * 10];
    for k in 0..10 {
        for j in 0..10 {
            for i in 0..10 {
                initial[i + 10 * j + 100 * k] =
                    0.5 * (i * i) as f64 + 0.25 * j as f64 + 0.125 * k as f64;
            }
        }
    }
    assert!(
        flang_stencil::workloads::verify::max_abs_diff(&reference, &initial) > 0.1,
        "diffusion must change a quadratic field"
    );
    for target in [
        Target::UnoptimizedCpu,
        Target::StencilCpu,
        Target::StencilOpenMp { threads: 4 },
        Target::StencilGpu {
            explicit_data: true,
            tile: [8, 8, 1],
        },
        Target::StencilDistributed { grid: vec![2, 2] },
    ] {
        let label = format!("{target:?}");
        let exec = Compiler::run(
            source,
            &CompileOptions {
                target,
                verify_each_pass: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_fields_match(exec.array("u").unwrap(), &reference, 1e-12, &label);
    }
}

#[test]
fn multi_gpu_future_work_matches_reference_and_scales() {
    // Further-work avenue 5: distributed-memory + GPU. Correctness must be
    // exact; the modeled per-device time must shrink with more GPUs.
    let expect = gauss_seidel::reference(8, 2);
    let mut totals = Vec::new();
    for ranks in [vec![1i64], vec![2, 2]] {
        let exec = run_gs(
            8,
            2,
            Target::StencilMultiGpu {
                grid: ranks.clone(),
                tile: [8, 8, 1],
            },
        );
        assert_fields_match(
            exec.array("u").unwrap(),
            &expect.data,
            1e-12,
            &format!("multi-gpu {ranks:?}"),
        );
        let gpu = exec.report.gpu_seconds.unwrap();
        let comm = exec.report.distributed_seconds.unwrap_or(0.0);
        totals.push((gpu, comm));
    }
    let (gpu1, _) = totals[0];
    let (gpu4, comm4) = totals[1];
    assert!(gpu4 < gpu1, "per-device time must shrink: {gpu4} vs {gpu1}");
    assert!(comm4 > 0.0, "4 GPUs must pay halo communication");
}

#[test]
fn stencil_cpu_beats_flang_only_wall_clock() {
    // Small smoke check of the paper's headline direction (the benches do
    // this properly at realistic sizes).
    let n = 24;
    let iters = 3;
    let flang = run_gs(n, iters, Target::FlangOnly);
    let stencil = run_gs(n, iters, Target::StencilCpu);
    assert!(
        stencil.report.wall < flang.report.wall,
        "stencil {:?} should beat flang-only {:?}",
        stencil.report.wall,
        flang.report.wall
    );
}

#[test]
fn gpu_explicit_data_beats_host_register() {
    let n = 16;
    let iters = 4;
    let naive = run_gs(
        n,
        iters,
        Target::StencilGpu {
            explicit_data: false,
            tile: [16, 16, 1],
        },
    );
    let explicit = run_gs(
        n,
        iters,
        Target::StencilGpu {
            explicit_data: true,
            tile: [16, 16, 1],
        },
    );
    let t_naive = naive.report.gpu_seconds.unwrap();
    let t_explicit = explicit.report.gpu_seconds.unwrap();
    assert!(
        t_naive > 2.0 * t_explicit,
        "host_register {t_naive} must be much slower than explicit {t_explicit}"
    );
}

// ---------------------------------------------------------------------------
// Real distributed execution (rank bodies on the MPI micro-sim)
// ---------------------------------------------------------------------------

#[test]
fn distributed_bit_identical_to_serial_across_grids_and_tiers() {
    use flang_stencil::exec::ExecPath;
    // Every decomposition shape (1-D, 2-D, 3-D, asymmetric) on every
    // execution tier must reproduce the single-rank serial result *bit for
    // bit*: rank bodies run the same compiled per-cell arithmetic over
    // sub-boxes, and halo traffic only moves values, never rounds them.
    let grids: [&[i64]; 4] = [&[2], &[2, 2], &[2, 2, 2], &[4, 2]];
    let gs_source = gauss_seidel::fortran_source(8, 2);
    let pw_source = pw_advection::fortran_source(8);
    for (label, source, arrays) in [
        ("gs", &gs_source, vec!["u"]),
        ("pw", &pw_source, vec!["su", "sv", "sw"]),
    ] {
        let serial =
            Compiler::run(source, &CompileOptions::for_target(Target::StencilCpu)).unwrap();
        for grid in grids {
            let opts = CompileOptions::for_target(Target::StencilDistributed {
                grid: grid.to_vec(),
            });
            let mut compiled = Compiler::compile(source, &opts).unwrap();
            for path in [
                ExecPath::Specialized,
                ExecPath::FusedVm,
                ExecPath::GenericVm,
            ] {
                for kernel in compiled.kernels.values_mut() {
                    kernel.force_exec_path(path);
                }
                let exec = compiled.run().expect("distributed run");
                let tag = format!("{label} grid={grid:?} {path:?}");
                assert!(
                    exec.report.degradation.attempts.is_empty(),
                    "{tag}: degraded: {}",
                    exec.report.degradation.describe()
                );
                let d = exec
                    .report
                    .distributed
                    .as_ref()
                    .expect("distributed report");
                assert!(d.dispatches > 0, "{tag}: rank bodies must actually run");
                assert!(d.bytes_exchanged > 0, "{tag}: halo traffic must flow");
                for a in &arrays {
                    let got = exec.array(a).unwrap();
                    let want = serial.array(a).unwrap();
                    assert_eq!(got.len(), want.len(), "{tag}: {a} length");
                    assert!(
                        got.iter()
                            .zip(want.iter())
                            .all(|(x, y)| x.to_bits() == y.to_bits()),
                        "{tag}: {a} not bit-identical to serial"
                    );
                }
            }
        }
    }
}

#[test]
fn distributed_report_attests_measured_time_and_model_cross_check() {
    let exec = run_gs(8, 3, Target::StencilDistributed { grid: vec![2, 2] });
    let d = exec.report.distributed.clone().expect("distributed report");
    assert_eq!(d.ranks, 4);
    assert_eq!(d.dispatches, 3, "one rank-body dispatch per sweep");
    assert_eq!(d.per_rank_wall.len(), 4);
    assert!(d.per_rank_wall.iter().all(|&w| w > 0.0));
    assert!(d.bytes_exchanged > 0 && d.messages > 0);
    assert!(
        d.measured_seconds > 0.0,
        "makespan is measured, not modeled"
    );
    assert!(
        d.modeled_seconds > 0.0,
        "the cost model rides along as a cross-check"
    );
    assert!(d.model_ratio() > 0.0);
    // `distributed_seconds` is now the *measured* makespan accumulation.
    let total = exec.report.distributed_seconds.unwrap();
    assert!(
        (total - d.measured_seconds).abs() < 1e-12,
        "distributed_seconds {total} must equal measured {0}",
        d.measured_seconds
    );
}

#[test]
fn overlapped_halos_attest_overlap_and_do_not_lose_to_blocking() {
    use flang_stencil::exec::HaloSchedule;
    // Same program, same grid, only the halo schedule differs. Overlap must
    // (a) be attested with a non-zero overlap fraction, and (b) not lose to
    // the blocking schedule (best-of-5 with slack for scheduler noise).
    let source = gauss_seidel::fortran_source(20, 4);
    let measure = |overlap: bool| {
        let opts = CompileOptions {
            target: Target::StencilDistributed { grid: vec![2, 2] },
            overlap_halos: overlap,
            ..Default::default()
        };
        let mut best: Option<flang_stencil::core::DistributedReport> = None;
        for _ in 0..5 {
            let exec = Compiler::run(&source, &opts).expect("distributed run");
            let d = exec.report.distributed.clone().expect("distributed report");
            assert!(d.dispatches > 0, "rank bodies must actually run");
            if best
                .as_ref()
                .map(|b| d.measured_seconds < b.measured_seconds)
                .unwrap_or(true)
            {
                best = Some(d);
            }
        }
        best.unwrap()
    };
    let blocking = measure(false);
    let overlapped = measure(true);
    assert_eq!(blocking.schedule, Some(HaloSchedule::Blocking));
    assert_eq!(overlapped.schedule, Some(HaloSchedule::Overlap));
    assert_eq!(
        blocking.overlap_fraction(),
        0.0,
        "blocking computes nothing while waiting"
    );
    assert!(
        overlapped.overlap_fraction() > 0.0,
        "overlap fraction must be attested: {:?}",
        overlapped
    );
    assert!(
        overlapped.measured_seconds <= blocking.measured_seconds * 1.25,
        "overlapped {} must not lose to blocking {}",
        overlapped.measured_seconds,
        blocking.measured_seconds
    );
}

#[test]
fn distributed_composes_with_forced_plans() {
    use flang_stencil::exec::ExecPlan;
    // Per-rank execution honours whatever plan is installed on the nests
    // (PR 4's autotuner installs plans the same way), and every plan is
    // bit-identical by construction.
    let source = gauss_seidel::fortran_source(8, 2);
    let serial = Compiler::run(&source, &CompileOptions::for_target(Target::StencilCpu)).unwrap();
    let want = serial.array("u").unwrap().to_vec();
    let opts = CompileOptions::for_target(Target::StencilDistributed { grid: vec![2, 2] });
    let mut compiled = Compiler::compile(&source, &opts).unwrap();
    for plan in [
        ExecPlan {
            tiles: vec![4, 2, 2],
            ..ExecPlan::default()
        },
        ExecPlan {
            unroll: 4,
            slabs: 1,
            ..ExecPlan::default()
        },
    ] {
        for kernel in compiled.kernels.values_mut() {
            kernel.force_plan(&plan);
        }
        let exec = compiled.run().expect("planned distributed run");
        let d = exec
            .report
            .distributed
            .as_ref()
            .expect("distributed report");
        assert!(d.dispatches > 0, "plan {plan:?}: rank bodies must run");
        let got = exec.array("u").unwrap();
        assert!(
            got.iter()
                .zip(want.iter())
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "plan {plan:?}: not bit-identical to serial"
        );
    }
}

#[test]
fn measured_execution_engages_at_a_thousand_ranks() {
    use flang_stencil::core::{DistMode, DistProvenance};
    // Regression guard for the scaling tentpole: at >= 1024 virtual ranks
    // the cooperative scheduler must still *execute* every rank body
    // (provenance `measured`), never silently fall back to the analytic
    // cost model — and the result stays bit-identical to single-rank
    // serial.
    let source = gauss_seidel::fortran_source(16, 2);
    let serial = Compiler::run(&source, &CompileOptions::for_target(Target::StencilCpu)).unwrap();
    let opts = CompileOptions::for_target(Target::StencilDistributed {
        grid: vec![16, 8, 8],
    });
    let compiled = Compiler::compile(&source, &opts).unwrap();
    let exec = compiled.run().expect("1024-rank run");
    let d = exec
        .report
        .distributed
        .as_ref()
        .expect("distributed report");
    assert_eq!(d.ranks, 1024);
    assert!(d.dispatches > 0, "rank bodies must actually run");
    assert_eq!(
        d.provenance,
        Some(DistProvenance::Measured),
        "1024 ranks must run measured, not modeled: {d:?}"
    );
    assert_eq!(
        d.modeled_dispatches, 0,
        "no dispatch may fall back to the model"
    );
    assert_eq!(d.scheduler, Some(DistMode::Coop));
    assert!(d.workers > 0, "worker pool size must be attested");
    let got = exec.array("u").unwrap();
    let want = serial.array("u").unwrap();
    assert!(
        got.iter()
            .zip(want.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "1024 ranks not bit-identical to serial"
    );
}

#[test]
fn deep_halos_skip_exchange_rounds_at_equal_results() {
    // Communication-avoiding deep halos: with `halo_depth = k` on a 1-D
    // decomposition the compiler exchanges a k-wide ghost region once and
    // runs the next k-1 sweeps communication-free, shrinking the computed
    // redundant region each cycle. The trade is bandwidth for latency —
    // never accuracy: results stay bit-identical to the k=1 schedule and
    // to single-rank serial.
    let iters = 6;
    let source = gauss_seidel::fortran_source(12, iters);
    let serial = Compiler::run(&source, &CompileOptions::for_target(Target::StencilCpu)).unwrap();
    let want = serial.array("u").unwrap().to_vec();
    let mut rounds = Vec::new();
    for depth in [1u32, 2, 3] {
        let opts = CompileOptions {
            halo_depth: depth,
            ..CompileOptions::for_target(Target::StencilDistributed { grid: vec![4] })
        };
        let exec = Compiler::run(&source, &opts).expect("deep-halo run");
        let d = exec
            .report
            .distributed
            .as_ref()
            .expect("distributed report");
        assert!(d.dispatches > 0, "depth {depth}: rank bodies must run");
        assert_eq!(d.halo_depth, depth, "depth must be attested");
        let got = exec.array("u").unwrap();
        assert!(
            got.iter()
                .zip(want.iter())
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "depth {depth}: not bit-identical to serial"
        );
        rounds.push(d.exchange_rounds);
    }
    // Depth k runs only ceil(iters / k) exchanging dispatches for the
    // sweep kernel; the exchange-round count must drop strictly with k.
    assert!(
        rounds[1] < rounds[0] && rounds[2] < rounds[1],
        "exchange rounds must shrink with depth: {rounds:?}"
    );
}

#[test]
fn hierarchical_aggregation_coalesces_cross_node_halos() {
    use flang_stencil::core::DistProvenance;
    // Node-level aggregation: same-destination-node halo messages leaving a
    // node within one flush window ride one physical envelope. On a 2-D
    // decomposition where a node holds a full grid row, every rank in the
    // row sends its axis-0 face to the same neighbour node — the logical /
    // physical ratio must reach 2x while the numbers stay untouched.
    let source = gauss_seidel::fortran_source(16, 2);
    let serial = Compiler::run(&source, &CompileOptions::for_target(Target::StencilCpu)).unwrap();
    let want = serial.array("u").unwrap().to_vec();
    let opts = CompileOptions {
        dist_node_size: 16,
        ..CompileOptions::for_target(Target::StencilDistributed { grid: vec![16, 16] })
    };
    let exec = Compiler::run(&source, &opts).expect("aggregated run");
    let d = exec
        .report
        .distributed
        .as_ref()
        .expect("distributed report");
    assert_eq!(d.provenance, Some(DistProvenance::Measured));
    assert!(
        d.physical_messages > 0 && d.logical_messages > d.physical_messages,
        "aggregation must coalesce envelopes: {d:?}"
    );
    assert!(
        d.aggregation_ratio() >= 2.0,
        "row-per-node layout must reach 2x aggregation, got {:.2}: {d:?}",
        d.aggregation_ratio()
    );
    let got = exec.array("u").unwrap();
    assert!(
        got.iter()
            .zip(want.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "aggregated run not bit-identical to serial"
    );
}

#[test]
fn steal_heavy_schedule_matches_serial_bit_for_bit() {
    use flang_stencil::core::{DistMode, DistProvenance};
    // 512 virtual ranks multiplexed over just two workers: every rank body
    // parks on its halo recvs, wake bursts pile onto one deque and the
    // other worker must steal to make progress. The schedule is thereby
    // maximally unlike thread-per-rank — and the numbers must not care.
    let source = gauss_seidel::fortran_source(8, 2);
    let serial = Compiler::run(&source, &CompileOptions::for_target(Target::StencilCpu)).unwrap();
    let opts = CompileOptions::for_target(Target::StencilDistributed {
        grid: vec![8, 8, 8],
    });
    let mut compiled = Compiler::compile(&source, &opts).unwrap();
    compiled.dist_options.workers = 2;
    let exec = compiled.run().expect("512-rank run");
    let d = exec
        .report
        .distributed
        .as_ref()
        .expect("distributed report");
    assert_eq!(d.ranks, 512);
    assert_eq!(d.provenance, Some(DistProvenance::Measured));
    assert_eq!(d.scheduler, Some(DistMode::Coop));
    assert_eq!(d.workers, 2);
    assert!(
        d.steals > 0,
        "2 workers x 512 parked ranks must steal: {d:?}"
    );
    assert!(d.parks > 0, "halo recvs must park tasks: {d:?}");
    let got = exec.array("u").unwrap();
    let want = serial.array("u").unwrap();
    assert!(
        got.iter()
            .zip(want.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "steal-heavy schedule not bit-identical to serial"
    );
}
