//! Golden-file diagnostics suite.
//!
//! Each `tests/diagnostics/NN_name.f90` is a deliberately malformed program;
//! the sibling `NN_name.expected` holds the exact rendered diagnostics the
//! frontend must produce. The error *codes* are the stable API (append-only
//! registry in `fsc_ir::diag::codes`); messages may be reworded, in which
//! case regenerate the goldens with:
//!
//! ```sh
//! UPDATE_DIAGNOSTIC_GOLDENS=1 cargo test --test diagnostics
//! ```
//!
//! A final test sabotages a mid-pipeline pass and pins the rollback /
//! degradation attestation the hardened driver reports for it.

use flang_stencil::core::{CompileOptions, Compiler, DegradationRung, Target};
use flang_stencil::ir::diag::render_all;
use std::fs;
use std::path::Path;

/// Harness directive: a `! compile:` comment in a golden program picks the
/// compile configuration (default: hardened `StencilCpu`). Knobs:
/// `target=distributed(G,..)` compiles for [`Target::StencilDistributed`]
/// with that process grid; `strict` turns the hardened degradation ladder
/// off so mid-pipeline diagnostics surface as compile errors instead of
/// degrading to a fallback rung.
fn options_for(source: &str) -> CompileOptions {
    let mut opts = CompileOptions::for_target(Target::StencilCpu);
    for line in source.lines() {
        let Some(directive) = line.trim().strip_prefix("! compile:") else {
            continue;
        };
        for knob in directive.split_whitespace() {
            if knob == "strict" {
                opts.harden = false;
            } else if let Some(grid) = knob
                .strip_prefix("target=distributed(")
                .and_then(|k| k.strip_suffix(")"))
            {
                let grid = grid
                    .split(',')
                    .map(|g| g.trim().parse().expect("grid axis size"))
                    .collect();
                opts.target = Target::StencilDistributed { grid };
            } else {
                panic!("unknown compile directive knob: {knob}");
            }
        }
    }
    opts
}

fn rendered_diagnostics(source: &str) -> String {
    match Compiler::compile(source, &options_for(source)) {
        Ok(_) => panic!("malformed program unexpectedly compiled"),
        Err(e) => {
            if e.diagnostics.is_empty() {
                format!("error: {}", e.message)
            } else {
                render_all(&e.diagnostics)
            }
        }
    }
}

#[test]
fn golden_diagnostics_match() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/diagnostics");
    let update = std::env::var_os("UPDATE_DIAGNOSTIC_GOLDENS").is_some();
    let mut sources: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "f90"))
        .collect();
    sources.sort();
    assert!(
        sources.len() >= 10,
        "golden suite shrank: {} programs",
        sources.len()
    );
    let mut mismatches = Vec::new();
    for src_path in sources {
        let name = src_path.file_stem().unwrap().to_string_lossy().into_owned();
        let source = fs::read_to_string(&src_path).unwrap();
        let got = rendered_diagnostics(&source);
        // Every golden program must fail with *coded* diagnostics.
        assert!(
            got.contains("error[E"),
            "{name}: no coded diagnostic in:\n{got}"
        );
        let golden_path = src_path.with_extension("expected");
        if update {
            fs::write(&golden_path, format!("{got}\n")).unwrap();
            continue;
        }
        let want = fs::read_to_string(&golden_path)
            .unwrap_or_else(|_| panic!("{name}: missing golden file {golden_path:?}"));
        if got.trim_end() != want.trim_end() {
            mismatches.push(format!(
                "== {name} ==\n--- expected ---\n{}\n--- got ---\n{got}\n",
                want.trim_end()
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "diagnostic output drifted (UPDATE_DIAGNOSTIC_GOLDENS=1 to regenerate):\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn indivisible_decomposition_degrades_under_hardening_with_e0505() {
    // The same program the strict golden rejects with E0505 must, under the
    // default hardened flow, degrade to the sequential scf fallback (which
    // ignores the process grid) and carry the coded diagnostic in the
    // attestation — never a wrong answer, never a silent remainder.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/diagnostics");
    let src = fs::read_to_string(dir.join("11_indivisible_decomposition.f90")).unwrap();
    let opts = CompileOptions::for_target(Target::StencilDistributed { grid: vec![3] });
    let exec = Compiler::run(&src, &opts).unwrap();
    let report = &exec.report.degradation;
    assert!(report.degraded());
    assert_eq!(report.ran, DegradationRung::ScfFallback);
    let shown = report.describe();
    assert!(shown.contains("E0505"), "{shown}");
    assert!(shown.contains("stencil-to-dmp"), "{shown}");
}

#[test]
fn sabotaged_pass_rolls_back_and_degrades_with_stable_attestation() {
    // A pass that corrupts the module mid-pipeline must be caught by the
    // post-pass verifier, rolled back, and attested — and the compile must
    // still succeed on the sequential scf fallback rung.
    let src = flang_stencil::workloads::gauss_seidel::fortran_source(6, 1);
    let opts = CompileOptions {
        sabotage_pass: Some("cse".into()),
        ..CompileOptions::for_target(Target::StencilCpu)
    };
    let exec = Compiler::run(&src, &opts).unwrap();
    let report = &exec.report.degradation;
    assert!(report.degraded());
    assert_eq!(report.ran, DegradationRung::ScfFallback);
    let shown = report.describe();
    // The attestation names the rung, the stage, the pass, and carries the
    // stable post-verification code — the golden contract of the ladder.
    assert!(shown.contains("full stencil pipeline"), "{shown}");
    assert!(shown.contains("pass 'cse'"), "{shown}");
    assert!(shown.contains("E0503"), "{shown}");
    assert!(shown.contains("rolled back"), "{shown}");
    assert!(shown.contains("ran: sequential scf fallback"), "{shown}");
}
