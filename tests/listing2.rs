//! Listings 1–2 of the paper: the Fortran five-point average and its
//! stencil-dialect IR. Discovery must turn the former into the latter, and
//! the textual IR must round-trip through the printer/parser.

use flang_stencil::dialects::stencil;
use flang_stencil::ir::types::DimBound;
use flang_stencil::ir::walk::collect_ops_named;
use flang_stencil::passes::discover::discover_stencils;

/// The paper's Listing 1 (sketch), sizes as in Listing 2's types.
const LISTING1: &str = "
program average
  implicit none
  integer, parameter :: n = 256
  integer :: i, j
  real(kind=8) :: data(0:n+1, 0:n+1), res(0:n+1, 0:n+1)
  do i = 1, n
    do j = 1, n
      res(j, i) = 0.25 * (data(j, i-1) + data(j, i+1) + data(j-1, i) + data(j+1, i))
    end do
  end do
end program average
";

#[test]
fn listing1_produces_listing2_structure() {
    let mut m = flang_stencil::fortran::compile_to_fir(LISTING1).unwrap();
    assert_eq!(discover_stencils(&mut m).unwrap(), 1);

    let applies = collect_ops_named(&m, stencil::APPLY);
    assert_eq!(applies.len(), 1);
    let apply = stencil::ApplyOp(applies[0]);

    // Listing 2 line 13: input temp covers the whole declared array, the
    // result temp covers the iteration domain.
    let input = apply.inputs(&m)[0];
    assert_eq!(
        m.value_type(input).stencil_bounds().unwrap(),
        &[DimBound::new(0, 257), DimBound::new(0, 257)],
        "input temp bounds (Fortran index space 0..n+1)"
    );
    assert_eq!(
        apply.output_bounds(&m),
        vec![DimBound::new(1, 256), DimBound::new(1, 256)],
        "apply domain = loop ranges"
    );

    // Listing 2 lines 4–7: the four neighbour accesses with their offsets.
    let body = apply.body(&m);
    let mut offsets: Vec<Vec<i64>> = m
        .block_ops(body)
        .into_iter()
        .filter_map(|op| stencil::access_offset(&m, op))
        .collect();
    offsets.sort();
    assert_eq!(
        offsets,
        vec![vec![-1, 0], vec![0, -1], vec![0, 1], vec![1, 0]]
    );

    // Lines 3 and 8–11: one constant (0.25), three addf, one mulf.
    let names: Vec<String> = m
        .block_ops(body)
        .into_iter()
        .map(|op| m.op(op).name.full().to_string())
        .collect();
    assert_eq!(names.iter().filter(|n| *n == "arith.addf").count(), 3);
    assert_eq!(names.iter().filter(|n| *n == "arith.mulf").count(), 1);
    assert_eq!(names.iter().filter(|n| *n == "arith.constant").count(), 1);
    // Line 12: the terminator.
    assert_eq!(names.last().map(String::as_str), Some("stencil.return"));
}

#[test]
fn stencil_ir_round_trips_through_text() {
    let mut m = flang_stencil::fortran::compile_to_fir(LISTING1).unwrap();
    discover_stencils(&mut m).unwrap();
    let st = flang_stencil::passes::extract::extract_stencils(&mut m).unwrap();

    let printed = flang_stencil::ir::print::print_module(&st);
    assert!(printed.contains("\"stencil.apply\""), "{printed}");
    assert!(
        printed.contains("!stencil.temp<[0,257]x[0,257]xf64>"),
        "{printed}"
    );
    assert!(printed.contains("#index<0, -1>"), "{printed}");

    let reparsed = flang_stencil::ir::parse::parse_module(&printed).unwrap();
    let reprinted = flang_stencil::ir::print::print_module(&reparsed);
    assert_eq!(printed, reprinted, "print→parse→print must be stable");
}

#[test]
fn reparsed_stencil_module_still_compiles_and_runs() {
    // The separate-module compilation of §3 in full: print the extracted
    // module to text (what would cross between Flang and mlir-opt), parse
    // it back, lower, kernel-compile and execute — results must match the
    // kernels compiled from the in-memory module.
    use flang_stencil::exec::kernel::{compile_kernel, run_kernel, KernelArg};
    use flang_stencil::exec::value::Memory;

    let mut m = flang_stencil::fortran::compile_to_fir(LISTING1).unwrap();
    discover_stencils(&mut m).unwrap();
    let st = flang_stencil::passes::extract::extract_stencils(&mut m).unwrap();

    let lower = |mut module: flang_stencil::ir::Module| {
        flang_stencil::passes::pipelines::cpu_pipeline()
            .unwrap()
            .run(&mut module)
            .unwrap();
        compile_kernel(&module, "stencil_region_0").unwrap()
    };
    let from_memory = lower(st.clone());
    let text = flang_stencil::ir::print::print_module(&st);
    let from_text = lower(flang_stencil::ir::parse::parse_module(&text).unwrap());

    let run = |k: &flang_stencil::exec::kernel::CompiledKernel| {
        let e = 258usize;
        let mut memory = Memory::new();
        let data = memory.alloc_buffer(e * e);
        let res = memory.alloc_buffer(e * e);
        for i in 0..e * e {
            memory.buffer_mut(data)[i] = (i % 101) as f64 * 0.01;
        }
        run_kernel(
            k,
            &mut memory,
            &[KernelArg::Buf(data), KernelArg::Buf(res)],
            1,
            None,
        )
        .unwrap();
        memory.buffer(res).to_vec()
    };
    assert_eq!(run(&from_memory), run(&from_text));
}

#[test]
fn fir_module_also_round_trips() {
    let m = flang_stencil::fortran::compile_to_fir(LISTING1).unwrap();
    let printed = flang_stencil::ir::print::print_module(&m);
    let reparsed = flang_stencil::ir::parse::parse_module(&printed).unwrap();
    let reprinted = flang_stencil::ir::print::print_module(&reparsed);
    assert_eq!(printed, reprinted);
}
