//! Property-based differential testing of the whole stack: randomly
//! generated stencil programs must produce bit-identical results through
//! the op-by-op FIR interpreter (Flang tier), the naive compiled tier and
//! the optimised stencil kernels — three independently written execution
//! paths over the same semantics.

use flang_stencil::core::{CompileOptions, Compiler, DistMode, Target};
use flang_stencil::mpisim::fault::FaultPlan;
use flang_stencil::workloads::{gauss_seidel, pw_advection};
use proptest::prelude::*;

/// A randomly generated 1-D stencil term: coefficient × a(i + offset).
#[derive(Debug, Clone)]
struct Term {
    coeff: f64,
    offset: i64,
}

fn term() -> impl Strategy<Value = Term> {
    (-4i64..=4, -8i32..=8).prop_map(|(offset, c)| Term {
        // Small "nice" coefficients keep the arithmetic exactly
        // reproducible across evaluation orders that our three tiers share.
        coeff: c as f64 * 0.125,
        offset,
    })
}

/// Build a Fortran program computing `r(i) = Σ coeff_k * a(i+off_k)` over
/// the interior, with halo wide enough for the largest offset.
fn program(terms: &[Term], n: usize) -> String {
    let halo = terms
        .iter()
        .map(|t| t.offset.abs())
        .max()
        .unwrap_or(1)
        .max(1);
    let expr = terms
        .iter()
        .map(|t| {
            let idx = match t.offset.cmp(&0) {
                std::cmp::Ordering::Less => format!("i-{}", -t.offset),
                std::cmp::Ordering::Equal => "i".to_string(),
                std::cmp::Ordering::Greater => format!("i+{}", t.offset),
            };
            format!("{} * a({idx})", t.coeff)
        })
        .collect::<Vec<_>>()
        .join(" + ");
    format!(
        "program prop
  implicit none
  integer, parameter :: n = {n}
  integer :: i
  real(kind=8) :: a({lo}:{hi}), r({lo}:{hi})
  do i = {lo}, {hi}
    a(i) = 0.0625 * i * i - 0.25 * i
  end do
  do i = 1, n
    r(i) = {expr}
  end do
end program prop
",
        lo = -halo,
        hi = n as i64 + halo,
    )
}

fn run(source: &str, target: Target) -> Vec<f64> {
    let exec = Compiler::run(
        source,
        &CompileOptions {
            target,
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .expect("run");
    exec.array("r").expect("r array").to_vec()
}

/// A randomly generated 2-D stencil term: coefficient × a(i+di, j+dj).
#[derive(Debug, Clone)]
struct Term2 {
    coeff: f64,
    di: i64,
    dj: i64,
}

fn term2() -> impl Strategy<Value = Term2> {
    (-2i64..=2, -2i64..=2, -8i32..=8).prop_map(|(di, dj, c)| Term2 {
        coeff: c as f64 * 0.125,
        di,
        dj,
    })
}

/// Build a 2-D Fortran program computing
/// `r(i, j) = Σ coeff_k * a(i+di_k, j+dj_k)` over the interior.
fn program_2d(terms: &[Term2], n: usize) -> String {
    let halo = terms
        .iter()
        .map(|t| t.di.abs().max(t.dj.abs()))
        .max()
        .unwrap_or(1)
        .max(1);
    let idx = |base: &str, off: i64| match off.cmp(&0) {
        std::cmp::Ordering::Less => format!("{base}-{}", -off),
        std::cmp::Ordering::Equal => base.to_string(),
        std::cmp::Ordering::Greater => format!("{base}+{off}"),
    };
    let expr = terms
        .iter()
        .map(|t| format!("{} * a({}, {})", t.coeff, idx("i", t.di), idx("j", t.dj)))
        .collect::<Vec<_>>()
        .join(" + ");
    format!(
        "program prop2
  implicit none
  integer, parameter :: n = {n}
  integer :: i, j
  real(kind=8) :: a({lo}:{hi}, {lo}:{hi}), r({lo}:{hi}, {lo}:{hi})
  do j = {lo}, {hi}
    do i = {lo}, {hi}
      a(i, j) = 0.0625 * i * j + 0.125 * i - 0.25 * j
    end do
  end do
  do j = 1, n
    do i = 1, n
      r(i, j) = {expr}
    end do
  end do
end program prop2
",
        lo = -halo,
        hi = n as i64 + halo,
    )
}

/// A randomly generated 3-D stencil term: coefficient × a(i+di, j+dj, k+dk).
#[derive(Debug, Clone)]
struct Term3 {
    coeff: f64,
    di: i64,
    dj: i64,
    dk: i64,
}

fn term3() -> impl Strategy<Value = Term3> {
    (-1i64..=1, -1i64..=1, -1i64..=1, -8i32..=8).prop_map(|(di, dj, dk, c)| Term3 {
        coeff: c as f64 * 0.125,
        di,
        dj,
        dk,
    })
}

/// Build a 3-D Fortran program computing
/// `r(i, j, k) = Σ coeff_m * a(i+di_m, j+dj_m, k+dk_m)` over the interior.
fn program_3d(terms: &[Term3], n: usize) -> String {
    let idx = |base: &str, off: i64| match off.cmp(&0) {
        std::cmp::Ordering::Less => format!("{base}-{}", -off),
        std::cmp::Ordering::Equal => base.to_string(),
        std::cmp::Ordering::Greater => format!("{base}+{off}"),
    };
    let expr = terms
        .iter()
        .map(|t| {
            format!(
                "{} * a({}, {}, {})",
                t.coeff,
                idx("i", t.di),
                idx("j", t.dj),
                idx("k", t.dk)
            )
        })
        .collect::<Vec<_>>()
        .join(" + ");
    format!(
        "program prop3
  implicit none
  integer, parameter :: n = {n}
  integer :: i, j, k
  real(kind=8) :: a(0:n+1, 0:n+1, 0:n+1), r(0:n+1, 0:n+1, 0:n+1)
  do k = 0, n+1
    do j = 0, n+1
      do i = 0, n+1
        a(i, j, k) = 0.0625 * i * j - 0.25 * k + 0.125 * i
        r(i, j, k) = 0.0
      end do
    end do
  end do
  do k = 1, n
    do j = 1, n
      do i = 1, n
        r(i, j, k) = {expr}
      end do
    end do
  end do
end program prop3
"
    )
}

/// Force every kernel onto `path` under `plan` and return the bit
/// patterns of `array`, asserting the report attests the forced tier
/// whenever some nest actually carries it.
fn run_forced(
    compiled: &mut flang_stencil::core::Compiled,
    path: flang_stencil::exec::ExecPath,
    plan: &flang_stencil::exec::ExecPlan,
    array: &str,
) -> Vec<u64> {
    for kernel in compiled.kernels.values_mut() {
        kernel.force_exec_path(path);
        kernel.force_plan(plan);
    }
    // `force_plan` re-acquires jit artifacts under the new plan and may
    // degrade a nest; assert against what the nests now claim.
    let expects_path = compiled
        .kernels
        .values()
        .flat_map(|k| &k.nests)
        .any(|nest| nest.path == path && nest.bounds.iter().all(|(lo, hi)| hi > lo));
    let exec = compiled.run().expect("forced-path run");
    if expects_path {
        assert!(
            exec.report.attests(path),
            "expected {} in {:?} under plan {}",
            path,
            exec.report.exec_paths,
            plan.describe()
        );
    }
    exec.array(array)
        .expect("result array")
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn three_tiers_agree_on_random_stencils(
        terms in prop::collection::vec(term(), 1..6),
        n in 4usize..24,
    ) {
        let source = program(&terms, n);
        let interp = run(&source, Target::FlangOnly);
        let naive = run(&source, Target::UnoptimizedCpu);
        let fast = run(&source, Target::StencilCpu);
        prop_assert_eq!(&interp, &naive, "interpreter vs naive tier");
        prop_assert_eq!(&interp, &fast, "interpreter vs vectorised tier");
    }

    #[test]
    fn parallel_agrees_with_serial(
        terms in prop::collection::vec(term(), 1..5),
        n in 8usize..32,
        threads in 2u32..5,
    ) {
        let source = program(&terms, n);
        let serial = run(&source, Target::StencilCpu);
        let parallel = run(&source, Target::StencilOpenMp { threads });
        prop_assert_eq!(serial, parallel);
    }

    /// Every rung of the specialization ladder — native loops, the
    /// superinstruction VM and the generic VM — must be **bit**-identical
    /// on random 2-D stencils, and the run report must attest which rung
    /// actually executed.
    #[test]
    fn exec_paths_bit_identical_on_random_2d_stencils(
        terms in prop::collection::vec(term2(), 1..6),
        n in 4usize..12,
    ) {
        use flang_stencil::exec::ExecPath;
        let source = program_2d(&terms, n);
        let opts = CompileOptions { target: Target::StencilCpu, verify_each_pass: false, ..Default::default() };
        let mut compiled = Compiler::compile(&source, &opts).unwrap();
        let has_spec = compiled
            .kernels
            .values()
            .flat_map(|k| &k.nests)
            .any(|nest| nest.specialized.is_some());
        let mut results = Vec::new();
        for path in [ExecPath::Specialized, ExecPath::FusedVm, ExecPath::GenericVm] {
            for kernel in compiled.kernels.values_mut() {
                kernel.force_exec_path(path);
            }
            let exec = compiled.run().expect("forced-path run");
            // Specialized is best-effort (nests without a template keep
            // their tier); the VM tiers always switch.
            if path != ExecPath::Specialized || has_spec {
                prop_assert!(
                    exec.report.attests(path),
                    "expected {} in {:?}", path, exec.report.exec_paths
                );
            }
            results.push(exec.array("r").expect("r array").to_vec());
        }
        prop_assert_eq!(&results[0], &results[1], "specialized vs fused-vm");
        prop_assert_eq!(&results[1], &results[2], "fused-vm vs generic-vm");
    }

    /// Cache-blocked execution must be **bit**-identical to the unblocked
    /// default plan for every tile shape — unit tiles, non-divisible
    /// tiles, tiles larger than the extent, unrolled inner loops — on
    /// both the specialized native path and the generic VM.
    #[test]
    fn tiled_plans_bit_identical_on_random_2d_stencils(
        terms in prop::collection::vec(term2(), 1..6),
        n in 4usize..12,
        tile in 1i64..8,
    ) {
        use flang_stencil::exec::{ExecPath, ExecPlan};
        let source = program_2d(&terms, n);
        let opts = CompileOptions {
            target: Target::StencilCpu,
            verify_each_pass: false,
            ..Default::default()
        };
        let mut compiled = Compiler::compile(&source, &opts).unwrap();
        let reference: Vec<u64> = compiled
            .run()
            .expect("default-plan run")
            .array("r")
            .expect("r array")
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let plans = [
            ExecPlan::from_ir_tiles(vec![1, 1]),       // degenerate unit tiles
            ExecPlan::from_ir_tiles(vec![3, 3]),       // non-divisible
            ExecPlan::from_ir_tiles(vec![tile, tile]), // random shape
            ExecPlan::from_ir_tiles(vec![0, tile]),    // slowest dim only
            ExecPlan {
                tiles: vec![1 << 20, 1 << 20],         // larger than any extent
                unroll: 4,
                ..ExecPlan::default()
            },
            ExecPlan { unroll: 4, slabs: 1, ..ExecPlan::default() },
        ];
        for path in [ExecPath::Specialized, ExecPath::GenericVm] {
            for plan in &plans {
                for kernel in compiled.kernels.values_mut() {
                    kernel.force_exec_path(path);
                    kernel.force_plan(plan);
                }
                let got: Vec<u64> = compiled
                    .run()
                    .expect("planned run")
                    .array("r")
                    .expect("r array")
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                prop_assert_eq!(
                    &got, &reference,
                    "{:?} with plan {} diverged bitwise", path, plan.describe()
                );
            }
        }
    }

    /// Every degradation-ladder rung — full stencil pipeline, sequential
    /// scf fallback, direct FIR interpretation — must agree bitwise on
    /// random stencils, and the report must attest the forced rung.
    #[test]
    fn ladder_rungs_bit_identical_on_random_stencils(
        terms in prop::collection::vec(term(), 1..5),
        n in 4usize..16,
    ) {
        use flang_stencil::core::DegradationRung;
        let source = program(&terms, n);
        let reference = run(&source, Target::FlangOnly);
        for rung in [
            DegradationRung::Stencil,
            DegradationRung::ScfFallback,
            DegradationRung::FirInterp,
        ] {
            let opts = CompileOptions {
                force_rung: Some(rung),
                ..CompileOptions::for_target(Target::StencilCpu)
            };
            let exec = Compiler::run(&source, &opts).unwrap();
            prop_assert_eq!(exec.report.degradation.ran, rung);
            prop_assert!(exec.report.degradation.attempts.is_empty());
            let got = exec.array("r").expect("r array");
            prop_assert_eq!(got, reference.as_slice(), "rung {:?} diverged", rung);
        }
    }

    #[test]
    fn discovery_always_extracts_the_interior_loop(
        terms in prop::collection::vec(term(), 1..5),
        n in 4usize..16,
    ) {
        let source = program(&terms, n);
        let compiled = Compiler::compile(
            &source,
            &CompileOptions { target: Target::StencilCpu, verify_each_pass: false, ..Default::default() },
        ).unwrap();
        // Both the init nest and the stencil nest must have been extracted.
        let total_nests: usize = compiled.kernels.values().map(|k| k.nests.len()).sum();
        prop_assert!(total_nests >= 2, "init + compute nests, got {total_nests}");
        // And the compute nest's domain is exactly the interior.
        let found = compiled.kernels.values().flat_map(|k| &k.nests).any(|nest| {
            nest.bounds == vec![(1, n as i64 + 1)]
        });
        prop_assert!(found, "no nest with interior bounds 1..={n}");
    }
}

proptest! {
    // The jit-tier sweeps run three tiers × three plans per case; a
    // dozen cases per dimensionality keeps the suite inside the tier-1
    // budget while still exercising degenerate n=0/1 domains.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The stitched jit must be **bit**-identical to both VM tiers on
    /// random 1-D stencils under the default, a tuned and an oversized
    /// execution plan — including degenerate n=0/1 domains where the
    /// interior loop never runs.
    #[test]
    fn jit_tier_bit_identical_on_random_1d_stencils(
        terms in prop::collection::vec(term(), 1..6),
        n in 0usize..16,
    ) {
        use flang_stencil::exec::{ExecPath, ExecPlan};
        let source = program(&terms, n);
        let opts = CompileOptions {
            target: Target::StencilCpu,
            verify_each_pass: false,
            ..Default::default()
        };
        let mut compiled = Compiler::compile(&source, &opts).unwrap();
        let reference: Vec<u64> = compiled
            .run()
            .expect("default run")
            .array("r")
            .expect("r array")
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let plans = [
            ExecPlan::default(),
            ExecPlan { tiles: vec![3], unroll: 4, slabs: 1, ..ExecPlan::default() },
            ExecPlan { tiles: vec![1 << 20], unroll: 4, ..ExecPlan::default() },
        ];
        for path in [ExecPath::Jit, ExecPath::FusedVm, ExecPath::GenericVm] {
            for plan in &plans {
                let got = run_forced(&mut compiled, path, plan, "r");
                prop_assert_eq!(
                    &got, &reference,
                    "{} with plan {} diverged bitwise", path, plan.describe()
                );
            }
        }
    }

    /// Same contract on random 2-D stencils.
    #[test]
    fn jit_tier_bit_identical_on_random_2d_stencils(
        terms in prop::collection::vec(term2(), 1..6),
        n in 0usize..10,
    ) {
        use flang_stencil::exec::{ExecPath, ExecPlan};
        let source = program_2d(&terms, n);
        let opts = CompileOptions {
            target: Target::StencilCpu,
            verify_each_pass: false,
            ..Default::default()
        };
        let mut compiled = Compiler::compile(&source, &opts).unwrap();
        let reference: Vec<u64> = compiled
            .run()
            .expect("default run")
            .array("r")
            .expect("r array")
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let plans = [
            ExecPlan::default(),
            ExecPlan { tiles: vec![3, 3], unroll: 4, slabs: 1, ..ExecPlan::default() },
            ExecPlan { tiles: vec![1 << 20, 1 << 20], unroll: 4, ..ExecPlan::default() },
        ];
        for path in [ExecPath::Jit, ExecPath::FusedVm, ExecPath::GenericVm] {
            for plan in &plans {
                let got = run_forced(&mut compiled, path, plan, "r");
                prop_assert_eq!(
                    &got, &reference,
                    "{} with plan {} diverged bitwise", path, plan.describe()
                );
            }
        }
    }

    /// Same contract on random 3-D stencils (smaller extents: the sweep
    /// is cubic in n and runs nine tier×plan combinations per case).
    #[test]
    fn jit_tier_bit_identical_on_random_3d_stencils(
        terms in prop::collection::vec(term3(), 1..5),
        n in 0usize..6,
    ) {
        use flang_stencil::exec::{ExecPath, ExecPlan};
        let source = program_3d(&terms, n);
        let opts = CompileOptions {
            target: Target::StencilCpu,
            verify_each_pass: false,
            ..Default::default()
        };
        let mut compiled = Compiler::compile(&source, &opts).unwrap();
        let reference: Vec<u64> = compiled
            .run()
            .expect("default run")
            .array("r")
            .expect("r array")
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let plans = [
            ExecPlan::default(),
            ExecPlan { tiles: vec![2, 2, 2], unroll: 2, slabs: 1, ..ExecPlan::default() },
            ExecPlan { tiles: vec![1 << 20, 1 << 20, 1 << 20], unroll: 4, ..ExecPlan::default() },
        ];
        for path in [ExecPath::Jit, ExecPath::FusedVm, ExecPath::GenericVm] {
            for plan in &plans {
                let got = run_forced(&mut compiled, path, plan, "r");
                prop_assert_eq!(
                    &got, &reference,
                    "{} with plan {} diverged bitwise", path, plan.describe()
                );
            }
        }
    }

    /// The swap-guarded Gauss–Seidel double-buffer — compute sweep plus
    /// copy-back inside an outer time loop — stays bit-identical across
    /// the jit and both VM tiers at tiny extents.
    #[test]
    fn jit_tier_bit_identical_on_swap_guarded_gs(
        n in 1usize..6,
        iters in 1usize..4,
    ) {
        use flang_stencil::exec::{ExecPath, ExecPlan};
        let source = gauss_seidel::fortran_source(n, iters);
        let opts = CompileOptions {
            target: Target::StencilCpu,
            verify_each_pass: false,
            ..Default::default()
        };
        let mut compiled = Compiler::compile(&source, &opts).unwrap();
        let reference: Vec<u64> = compiled
            .run()
            .expect("default run")
            .array("u")
            .expect("u array")
            .iter()
            .map(|v| v.to_bits())
            .collect();
        for path in [ExecPath::Jit, ExecPath::FusedVm, ExecPath::GenericVm] {
            let got = run_forced(&mut compiled, path, &ExecPlan::default(), "u");
            prop_assert_eq!(&got, &reference, "{} diverged bitwise on GS", path);
        }
    }
}

proptest! {
    // Distributed fault-injection runs are much heavier than the pure
    // in-process tiers above; a handful of cases still sweeps both
    // workloads, all grid shapes and several worker counts across runs.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The two distributed substrates — thread-per-rank and the
    /// work-stealing cooperative scheduler — must be **bit**-identical on
    /// both paper workloads, across 1-D/2-D/3-D process grids, under an
    /// adversarial fault plan (drops + duplicates + corruption + delays +
    /// a rank crash) and arbitrary worker counts. The resilient transport
    /// masks every fault, so results cannot depend on which substrate
    /// multiplexed the rank bodies or which faults fired.
    #[test]
    fn coop_and_thread_substrates_bit_identical_under_faults(
        grid_idx in 0usize..4,
        use_gs in any::<bool>(),
        seed in any::<u64>(),
        workers in 1usize..4,
    ) {
        let grids: [&[i64]; 4] = [&[2], &[2, 2], &[2, 2, 2], &[4, 2]];
        let grid = grids[grid_idx].to_vec();
        let (source, arrays): (String, Vec<&str>) = if use_gs {
            (gauss_seidel::fortran_source(8, 2), vec!["u"])
        } else {
            (pw_advection::fortran_source(8), vec!["su", "sv", "sw"])
        };
        let plan = FaultPlan {
            drop_prob: 0.08,
            dup_prob: 0.05,
            corrupt_prob: 0.04,
            delay_prob: 0.03,
            max_delay_ms: 1,
            ..FaultPlan::none(seed)
        }
        .with_crash(1, 1);
        let mut runs: Vec<Vec<Vec<f64>>> = Vec::new();
        for mode in [DistMode::Threads, DistMode::Coop] {
            let opts = CompileOptions::for_target(Target::StencilDistributed {
                grid: grid.clone(),
            });
            let mut compiled = Compiler::compile(&source, &opts).unwrap();
            compiled.dist_options.mode = mode;
            compiled.dist_options.workers = workers;
            let exec = compiled.run_with_faults(plan.clone()).expect("faulted run");
            let d = exec.report.distributed.as_ref().expect("distributed report");
            prop_assert!(
                d.dispatches > 0,
                "{mode:?} grid={grid:?}: rank bodies must actually run"
            );
            prop_assert_eq!(
                d.scheduler, Some(mode),
                "report must attest the substrate that ran"
            );
            runs.push(
                arrays
                    .iter()
                    .map(|a| exec.array(a).expect("array").to_vec())
                    .collect(),
            );
        }
        for (name, (threaded, coop)) in
            arrays.iter().zip(runs[0].iter().zip(runs[1].iter()))
        {
            prop_assert_eq!(threaded.len(), coop.len());
            prop_assert!(
                threaded
                    .iter()
                    .zip(coop.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "{} grid={:?} workers={}: coop diverged from thread-per-rank",
                name, grid, workers
            );
        }
    }
}
