program p
  implicit none
  integer :: i
  real(kind=8) :: a(8)
  do i = 1, 8
    a(i) = c(i) * q
  end do
  x = 1.0
end program p
