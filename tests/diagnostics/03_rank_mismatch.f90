program p
  implicit none
  integer :: i
  real(kind=8) :: a(10, 10)
  do i = 1, 10
    a(i) = 2.0
  end do
end program p
