program p
  implicit none
  real(kind=8) :: (10)
  integer i j
end program p
