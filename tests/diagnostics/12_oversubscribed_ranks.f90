! compile: target=distributed(16) strict
! The stencil interior has 7 cells but the process grid asks for 16 ranks
! along the decomposed dimension: more ranks than cells on a halo-carrying
! dimension means most ranks would idle while the rest cannot hold a full
! halo, so `stencil-to-dmp` rejects the oversubscription (E0506).
program oversubscribed
  implicit none
  integer, parameter :: n = 7
  real(kind=8) :: a(0:n+1), r(0:n+1)
  integer :: i
  do i = 0, n+1
    a(i) = 0.125d0 * i
    r(i) = 0.0d0
  end do
  do i = 1, n
    r(i) = 0.5d0 * (a(i-1) + a(i+1))
  end do
end program oversubscribed
