program p
  implicit none
  real(kind=8) :: x
  x = sqrt(1.0, 2.0)
end program p
