! compile: target=distributed(3) strict
! The stencil interior has 7 cells but the process grid asks for 3 ranks
! along the decomposed dimension: a naive block partition would leave a
! silent remainder, so `stencil-to-dmp` rejects the decomposition (E0505).
program indivisible
  implicit none
  integer, parameter :: n = 7
  real(kind=8) :: a(0:n+1), r(0:n+1)
  integer :: i
  do i = 0, n+1
    a(i) = 0.125d0 * i
    r(i) = 0.0d0
  end do
  do i = 1, n
    r(i) = 0.5d0 * (a(i-1) + a(i+1))
  end do
end program indivisible
