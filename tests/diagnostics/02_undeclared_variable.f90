program p
  implicit none
  integer :: i
  real(kind=8) :: a(10)
  do i = 1, 10
    a(i) = b(i) + 1.0
  end do
end program p
