program p
  implicit none
  integer :: i
  integer :: i
  real(kind=8) :: a(4)
  a(1) = 1.0
end program p
