program p
  implicit none
  real(kind=8) :: x
  x = 1.0e
end program p
