program p
  implicit none
  real(kind=8) :: a(4)
  allocate(a(10))
  deallocate(a)
end program p
