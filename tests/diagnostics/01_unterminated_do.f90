program p
  implicit none
  integer :: i
  real(kind=8) :: a(10)
  do i = 1, 10
    a(i) = 1.0
end program p
