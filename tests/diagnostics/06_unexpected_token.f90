program p
  implicit none
  integer :: i
  i = = 3
end program p
